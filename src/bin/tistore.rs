//! `tistore` — an interactive shell over the temporal-importance file
//! system (`tifs`), with a simulated clock.
//!
//! ```text
//! $ cargo run --bin tistore -- --capacity 1GiB
//! tistore> mkdir /videos
//! tistore> create /videos/trip.mp4 200MiB twostep:1.0:30d:30d
//! tistore> stat /videos/trip.mp4
//! tistore> advance 45d
//! tistore> density
//! tistore> advise 100MiB
//! tistore> quit
//! ```
//!
//! Reads commands from stdin (or from a file via `--script`), so it
//! doubles as a scriptable driver for demos and smoke tests.

use std::io::{BufRead, Write};

use temporal_reclaim::core::{Advisor, Forecast};
use temporal_reclaim::tifs::{EntryKind, TiFs};
use temporal_reclaim::{ByteSize, Importance, ImportanceCurve, SimDuration, SimTime};

fn main() -> std::process::ExitCode {
    let mut capacity = ByteSize::from_gib(1);
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--capacity" => {
                let Some(value) = args.next() else {
                    eprintln!("--capacity needs a value (e.g. 80GiB)");
                    return std::process::ExitCode::FAILURE;
                };
                match parse_size(&value) {
                    Ok(size) => capacity = size,
                    Err(e) => {
                        eprintln!("{e}");
                        return std::process::ExitCode::FAILURE;
                    }
                }
            }
            "--script" => script = args.next(),
            "--help" | "-h" => {
                println!("usage: tistore [--capacity SIZE] [--script FILE]");
                print_help();
                return std::process::ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return std::process::ExitCode::FAILURE;
            }
        }
    }

    let mut session = Session::new(capacity);
    let interactive = script.is_none();
    let result = match script {
        Some(path) => match std::fs::File::open(&path) {
            Ok(file) => session.run(std::io::BufReader::new(file), false),
            Err(e) => {
                eprintln!("cannot open script {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        },
        None => {
            println!("tistore: {capacity} temporal-importance store. Type 'help'.");
            session.run(std::io::stdin().lock(), true)
        }
    };
    if result || interactive {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

struct Session {
    fs: TiFs,
    now: SimTime,
}

impl Session {
    fn new(capacity: ByteSize) -> Self {
        Session {
            fs: TiFs::new(capacity),
            now: SimTime::ZERO,
        }
    }

    /// Runs the command loop; returns true if every command succeeded.
    fn run<R: BufRead>(&mut self, reader: R, prompt: bool) -> bool {
        let mut all_ok = true;
        if prompt {
            print_prompt();
        }
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if !line.is_empty() && !line.starts_with('#') {
                match self.execute(line) {
                    Ok(Outcome::Continue) => {}
                    Ok(Outcome::Quit) => break,
                    Err(message) => {
                        println!("error: {message}");
                        all_ok = false;
                    }
                }
            }
            if prompt {
                print_prompt();
            }
        }
        all_ok
    }

    fn execute(&mut self, line: &str) -> Result<Outcome, String> {
        let mut parts = line.split_whitespace();
        let command = parts.next().expect("non-empty line");
        let args: Vec<&str> = parts.collect();
        match (command, args.as_slice()) {
            ("help", _) => print_help(),
            ("quit" | "exit", _) => return Ok(Outcome::Quit),
            ("now", []) => println!("{} (day {})", self.now, self.now.as_days()),
            ("advance", [span]) => {
                let span = parse_duration(span)?;
                self.now += span;
                println!("advanced to {} (day {})", self.now, self.now.as_days());
            }
            ("mkdir", [path]) => {
                self.fs
                    .mkdir_all(path, self.now)
                    .map_err(|e| e.to_string())?;
            }
            ("create", [path, size, curve]) => {
                let size = parse_size(size)?;
                let curve = parse_curve(curve)?;
                let data = vec![0u8; size.as_bytes() as usize];
                self.fs
                    .create(path, data, curve, self.now)
                    .map_err(|e| e.to_string())?;
                println!("created {path} ({size})");
            }
            ("ls", [path]) => {
                for entry in self.fs.list(path, self.now).map_err(|e| e.to_string())? {
                    let marker = match entry.kind {
                        EntryKind::Directory => "/",
                        EntryKind::File => "",
                    };
                    println!("{}{marker}", entry.name);
                }
            }
            ("stat", [path]) => {
                let stat = self.fs.stat(path, self.now).map_err(|e| e.to_string())?;
                println!(
                    "{path}: {} importance {} created day {} expires {}",
                    stat.size,
                    stat.importance,
                    stat.created.as_days(),
                    stat.expires
                        .map(|t| format!("day {}", t.as_days()))
                        .unwrap_or_else(|| "never".to_string()),
                );
            }
            ("rm", [path]) => {
                self.fs.remove(path, self.now).map_err(|e| e.to_string())?;
            }
            ("rmdir", [path]) => {
                self.fs.rmdir(path, self.now).map_err(|e| e.to_string())?;
            }
            ("rejuvenate", [path, curve]) => {
                let curve = parse_curve(curve)?;
                self.fs
                    .rejuvenate(path, curve, self.now)
                    .map_err(|e| e.to_string())?;
            }
            ("demote", [path, curve]) => {
                let curve = parse_curve(curve)?;
                self.fs
                    .demote(path, curve, self.now)
                    .map_err(|e| e.to_string())?;
            }
            ("sweep", []) => {
                let n = self.fs.reclaim_expired(self.now);
                println!("reclaimed {n} expired file(s)");
            }
            ("density", []) => {
                println!(
                    "density {:.4}  used {} / {}",
                    self.fs.density(self.now),
                    self.fs.used(),
                    self.fs.capacity(),
                );
            }
            ("advise", [size]) => {
                let size = parse_size(size)?;
                let advisor = Advisor::from_snapshot(self.fs.unit().density_snapshot(self.now));
                let threshold = advisor.admission_threshold_for(size);
                println!("a {size} file needs importance > {threshold}");
                let probe = ImportanceCurve::two_step(
                    Importance::FULL,
                    SimDuration::from_days(15),
                    SimDuration::from_days(15),
                );
                if let Forecast::Admitted {
                    expected_survival: Some(age),
                } = advisor.forecast(&probe, size)
                {
                    println!(
                        "a full-importance 15d+15d annotation would survive ~{}",
                        age
                    );
                }
            }
            _ => {
                return Err(format!(
                    "unknown or malformed command '{line}' (try 'help')"
                ))
            }
        }
        Ok(Outcome::Continue)
    }
}

enum Outcome {
    Continue,
    Quit,
}

fn print_prompt() {
    print!("tistore> ");
    let _ = std::io::stdout().flush();
}

fn print_help() {
    println!(
        "commands:\n\
         \x20 mkdir <path>                     create directories\n\
         \x20 create <path> <size> <curve>     write-once annotated file\n\
         \x20 ls <path> | stat <path>          inspect the namespace\n\
         \x20 rm <path> | rmdir <path>         remove entries\n\
         \x20 rejuvenate <path> <curve>        raise an annotation\n\
         \x20 demote <path> <curve>            trigger-demote an annotation\n\
         \x20 sweep                            reclaim expired files\n\
         \x20 density | advise <size>          storage feedback\n\
         \x20 now | advance <duration>         simulated clock\n\
         \x20 help | quit\n\
         sizes: 10KiB 5MiB 2GiB    durations: 90m 12h 30d\n\
         curves: persistent | ephemeral | fixed:<p>:<dur> | twostep:<p>:<persist>:<wane>"
    );
}

/// Parses `"200MiB"`-style sizes.
fn parse_size(text: &str) -> Result<ByteSize, String> {
    let (digits, unit) = split_number(text)?;
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("invalid size '{text}'"))?;
    match unit {
        "B" | "" => Ok(ByteSize::from_bytes(value)),
        "KiB" | "K" => Ok(ByteSize::from_kib(value)),
        "MiB" | "M" => Ok(ByteSize::from_mib(value)),
        "GiB" | "G" => Ok(ByteSize::from_gib(value)),
        "TiB" | "T" => Ok(ByteSize::from_tib(value)),
        other => Err(format!("unknown size unit '{other}'")),
    }
}

/// Parses `"30d"` / `"12h"` / `"90m"`-style durations.
fn parse_duration(text: &str) -> Result<SimDuration, String> {
    let (digits, unit) = split_number(text)?;
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("invalid duration '{text}'"))?;
    match unit {
        "m" | "min" => Ok(SimDuration::from_minutes(value)),
        "h" => Ok(SimDuration::from_hours(value)),
        "d" => Ok(SimDuration::from_days(value)),
        "y" => Ok(SimDuration::from_days(value * 365)),
        other => Err(format!("unknown duration unit '{other}' (use m/h/d/y)")),
    }
}

/// Parses curve specs: `persistent`, `ephemeral`, `fixed:<p>:<dur>`,
/// `twostep:<p>:<persist>:<wane>`.
fn parse_curve(text: &str) -> Result<ImportanceCurve, String> {
    let parts: Vec<&str> = text.split(':').collect();
    match parts.as_slice() {
        ["persistent"] => Ok(ImportanceCurve::Persistent),
        ["ephemeral"] => Ok(ImportanceCurve::Ephemeral),
        ["fixed", p, expiry] => Ok(ImportanceCurve::Fixed {
            importance: parse_importance(p)?,
            expiry: parse_duration(expiry)?,
        }),
        ["twostep", p, persist, wane] => Ok(ImportanceCurve::two_step(
            parse_importance(p)?,
            parse_duration(persist)?,
            parse_duration(wane)?,
        )),
        _ => Err(format!(
            "invalid curve '{text}' (persistent | ephemeral | fixed:p:dur | twostep:p:persist:wane)"
        )),
    }
}

fn parse_importance(text: &str) -> Result<Importance, String> {
    let value: f64 = text
        .parse()
        .map_err(|_| format!("invalid importance '{text}'"))?;
    Importance::new(value).map_err(|e| e.to_string())
}

fn split_number(text: &str) -> Result<(&str, &str), String> {
    let end = text
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(text.len());
    if end == 0 {
        return Err(format!("expected a number in '{text}'"));
    }
    Ok((&text[..end], &text[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sizes() {
        assert_eq!(parse_size("10MiB").unwrap(), ByteSize::from_mib(10));
        assert_eq!(parse_size("2G").unwrap(), ByteSize::from_gib(2));
        assert_eq!(parse_size("5").unwrap(), ByteSize::from_bytes(5));
        assert!(parse_size("MiB").is_err());
        assert!(parse_size("10XB").is_err());
    }

    #[test]
    fn parses_durations() {
        assert_eq!(parse_duration("30d").unwrap(), SimDuration::from_days(30));
        assert_eq!(parse_duration("12h").unwrap(), SimDuration::from_hours(12));
        assert_eq!(parse_duration("1y").unwrap(), SimDuration::from_days(365));
        assert!(parse_duration("30w").is_err());
    }

    #[test]
    fn parses_curves() {
        assert_eq!(
            parse_curve("persistent").unwrap(),
            ImportanceCurve::Persistent
        );
        assert_eq!(
            parse_curve("ephemeral").unwrap(),
            ImportanceCurve::Ephemeral
        );
        match parse_curve("twostep:0.5:15d:15d").unwrap() {
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            } => {
                assert_eq!(importance.value(), 0.5);
                assert_eq!(persist, SimDuration::from_days(15));
                assert_eq!(wane, SimDuration::from_days(15));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_curve("fixed:1.5:10d").is_err());
        assert!(parse_curve("bogus").is_err());
    }

    #[test]
    fn session_executes_a_script() {
        let mut session = Session::new(ByteSize::from_mib(10));
        let script = "\
            mkdir /videos\n\
            # a comment\n\
            create /videos/a.mp4 2MiB twostep:1.0:30d:30d\n\
            stat /videos/a.mp4\n\
            advance 45d\n\
            density\n\
            sweep\n\
            ls /videos\n";
        assert!(session.run(script.as_bytes(), false));
        assert_eq!(session.now, SimTime::from_days(45));
    }

    #[test]
    fn session_reports_errors_without_stopping() {
        let mut session = Session::new(ByteSize::from_mib(1));
        let script = "create /missing-dir/file 1MiB persistent\nmkdir /ok\n";
        // First command fails (no parent), second succeeds.
        assert!(!session.run(script.as_bytes(), false));
        assert!(session.fs.list("/ok", session.now).is_ok());
    }

    #[test]
    fn full_store_error_is_reported() {
        let mut session = Session::new(ByteSize::from_mib(2));
        let ok = session.run(
            "create /a 2MiB persistent\ncreate /b 1MiB persistent\n".as_bytes(),
            false,
        );
        assert!(!ok, "second create must fail (store full)");
    }
}
