//! Umbrella crate for the temporal-importance storage reclamation
//! reproduction (Chandra, Gehani, Yu — ICDCS 2007).
//!
//! Re-exports the workspace's public API so examples and downstream users
//! need a single dependency:
//!
//! * [`core`](temporal_importance) — importance curves, the preemptive
//!   reclamation engine, the storage importance density metric.
//! * [`workload`] — the paper's workload generators.
//! * [`besteffs`] — the simulated distributed store with §5.3 placement.
//! * [`analysis`] — CDFs, time series, the Palimpsest time-constant
//!   estimator.
//! * [`experiments`] — drivers regenerating every paper table and figure.
//! * [`obs`] — the zero-cost observability layer (metrics, event traces,
//!   per-phase reports); compiled out entirely by the `obs-off` feature.
//! * [`serve`](tempimpd) — `tempimpd`, the sharded concurrent serving
//!   layer speaking the [`StoreApi`](temporal_importance::protocol)
//!   request/response protocol.
//! * [`durable`] — the append-only segment-log backend
//!   where reclamation is compaction; crash recovery replays the log.
//! * [`sim`](sim_core) — simulated time, byte sizes, event queues.
//!
//! Most programs only need the [`tempimp`] prelude:
//!
//! ```
//! use temporal_reclaim::tempimp::*;
//!
//! let mut unit = StorageUnit::builder(ByteSize::from_gib(1)).build();
//! let curve = ImportanceCurve::two_step(
//!     Importance::FULL,
//!     SimDuration::from_days(15),
//!     SimDuration::from_days(15),
//! );
//! let spec = ObjectSpec::new(ObjectId::new(0), ByteSize::from_mib(700), curve);
//! unit.store(spec, SimTime::ZERO)?;
//! # Ok::<(), Error>(())
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use analysis;
pub use besteffs;
pub use experiments;
pub use obs;
pub use sim_core as sim;
pub use tempimp_durable as durable;
pub use tempimpd as serve;
pub use temporal_importance as core;
pub use tifs;
pub use workload;

pub use sim_core::{ByteSize, SimDuration, SimTime};
pub use temporal_importance::{
    EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectIdGen, ObjectSpec, StorageUnit,
};

pub mod tempimp {
    //! The curated prelude: one `use` for the types almost every program
    //! needs, spanning the engine, the distributed store, and the
    //! observability layer.
    //!
    //! ```
    //! use temporal_reclaim::tempimp::*;
    //! ```

    pub use besteffs::{Besteffs, ClusterBuilder, Directory, PlacementConfig};
    pub use obs::{MetricsRegistry, Obs, Report, Snapshot, TraceSink};
    pub use sim_core::{rng, ByteSize, SimDuration, SimTime};
    pub use tempimp_durable::{DurableConfig, DurableUnit, RetentionPolicy};
    pub use tempimpd::{RequestTrace, ServeClient, Tempimpd};
    pub use temporal_importance::protocol::{
        DensityInfo, HealthSnapshot, ObjectInfo, Request, RequestId, Response, ShardHealth,
        ShardRouter, StoreApi, StoreStats, VerbKind, VerbLatency,
    };
    pub use temporal_importance::{
        Admission, Error, EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectIdGen,
        ObjectSpec, StorageUnit, StorageUnitBuilder,
    };
}
