//! Umbrella crate for the temporal-importance storage reclamation
//! reproduction (Chandra, Gehani, Yu — ICDCS 2007).
//!
//! Re-exports the workspace's public API so examples and downstream users
//! need a single dependency:
//!
//! * [`core`](temporal_importance) — importance curves, the preemptive
//!   reclamation engine, the storage importance density metric.
//! * [`workload`] — the paper's workload generators.
//! * [`besteffs`] — the simulated distributed store with §5.3 placement.
//! * [`analysis`] — CDFs, time series, the Palimpsest time-constant
//!   estimator.
//! * [`experiments`] — drivers regenerating every paper table and figure.
//! * [`sim`](sim_core) — simulated time, byte sizes, event queues.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use analysis;
pub use besteffs;
pub use experiments;
pub use sim_core as sim;
pub use temporal_importance as core;
pub use tifs;
pub use workload;

pub use sim_core::{ByteSize, SimDuration, SimTime};
pub use temporal_importance::{
    EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectIdGen, ObjectSpec, StorageUnit,
};
