//! The §5.2 scenario: a single instructor's lecture archive on one
//! desktop disk, with term-aware lifetimes from Table 1 and
//! half-importance student uploads.
//!
//! Run with: `cargo run --release --example lecture_capture`

use temporal_reclaim::experiments::lecture::{self, LectureRunConfig};
use temporal_reclaim::workload::{CLASS_STUDENT, CLASS_UNIVERSITY};

fn main() {
    println!("§5.2 lecture capture for a single instructor (5 simulated years)\n");
    for capacity_gib in [80u64, 120] {
        let result = lecture::run(LectureRunConfig::paper(11, capacity_gib));
        let uni = result
            .mean_lifetime_with_rejections(CLASS_UNIVERSITY)
            .unwrap_or(0.0);
        let student = result
            .mean_lifetime_with_rejections(CLASS_STUDENT)
            .unwrap_or(0.0);
        let density = result.density.summary().expect("density sampled");
        println!("{capacity_gib} GiB local storage:");
        println!("  university objects: mean lifetime {uni:>6.1} days");
        println!(
            "  student objects:    mean lifetime {student:>6.1} days ({} rejected outright)",
            result.rejections_for(CLASS_STUDENT)
        );
        println!(
            "  importance density: mean {:.3}, peak {:.3}",
            density.mean, density.max
        );
        let uni_imp = result.reclamation_importance_series(CLASS_UNIVERSITY);
        if let Some(s) = uni_imp.summary() {
            println!(
                "  university importance at reclamation: mean {:.2}, max {:.2}",
                s.mean, s.max
            );
        }
        println!();
    }
    println!(
        "More storage lifts the student (50% importance) class from starvation\n\
         without touching a single annotation — the paper's scalability claim."
    );
}
