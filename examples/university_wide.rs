//! The §5.3 scenario: the whole university's lecture capture spread over
//! a Besteffs cluster with random-walk placement.
//!
//! Run with: `cargo run --release --example university_wide`
//! (add `-- --full` for the paper's full 2,000-node scale; slower)

use temporal_reclaim::experiments::university::{self, UniversityRunConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1 } else { 20 };
    println!("§5.3 university-wide capture on Besteffs (scale 1/{scale}, 2 simulated years)\n");
    for capacity_gib in [80u64, 120] {
        let cfg = UniversityRunConfig::paper(13, capacity_gib, scale);
        let result = university::run(cfg);
        println!(
            "{} nodes x {capacity_gib} GiB ({:.1} TB capacity), demand {:.1} TB (pressure {:.2}):",
            result.config.nodes,
            result.capacity_bytes as f64 / 1e12,
            result.offered_bytes as f64 / 1e12,
            result.pressure()
        );
        println!(
            "  university cameras: {:>5.1}% of objects stored",
            100.0 * result.university.acceptance()
        );
        println!(
            "  student cameras:    {:>5.1}% of objects stored",
            100.0 * result.student.acceptance()
        );
        println!(
            "  placement: {:.1} probes per placed object, {:.1}% direct stores",
            result.mean_probes,
            100.0 * result.cluster_stats.direct_stores as f64
                / result.cluster_stats.placed.max(1) as f64
        );
        println!(
            "  final cluster importance density: {:.3}\n",
            result.density.values().last().copied().unwrap_or(0.0)
        );
    }
    println!(
        "Student cameras keep their fixed 50%-importance annotation; only the\n\
         available storage changes — and their acceptance rises with it."
    );
}
