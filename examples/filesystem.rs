//! The §6 user-level file-system prototype: a namespace whose free space
//! is managed entirely by temporal importance.
//!
//! Run with: `cargo run --example filesystem`

use temporal_reclaim::tifs::TiFs;
use temporal_reclaim::{ByteSize, Importance, ImportanceCurve, SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fs = TiFs::new(ByteSize::from_mib(4));
    let now = SimTime::ZERO;

    fs.mkdir_all("/lectures/os", now)?;
    fs.mkdir_all("/cache", now)?;

    // Lecture videos get the Table-1-style annotation...
    let lecture = ImportanceCurve::two_step(
        Importance::FULL,
        SimDuration::from_days(120),
        SimDuration::from_days(730),
    );
    fs.create(
        "/lectures/os/l01.mp4",
        vec![1; 1 << 20],
        lecture.clone(),
        now,
    )?;
    fs.create(
        "/lectures/os/l02.mp4",
        vec![2; 1 << 20],
        lecture.clone(),
        now,
    )?;

    // ...while downloads land in /cache as ephemeral data.
    fs.create(
        "/cache/page.html",
        vec![3; 1 << 21],
        ImportanceCurve::Ephemeral,
        now,
    )?;
    println!(
        "day 0: {} used of {}, density {:.3}",
        fs.used(),
        fs.capacity(),
        fs.density(now)
    );

    // A third lecture needs room; the cache gives way automatically.
    fs.create("/lectures/os/l03.mp4", vec![4; 1 << 21], lecture, now)?;
    println!("day 0: stored l03.mp4 — cache contents were reclaimed for it");
    println!(
        "  /cache now lists {} entries",
        fs.list("/cache", now)?.len()
    );

    // Two years on, lecture 1 has waned; stat shows it.
    let later = SimTime::from_days(500);
    let stat = fs.stat("/lectures/os/l01.mp4", later)?;
    println!(
        "day 500: l01.mp4 importance {}, expires at {:?}",
        stat.importance,
        stat.expires.map(|t| t.as_days())
    );

    // The user can still rescue it with a rejuvenation.
    fs.rejuvenate(
        "/lectures/os/l01.mp4",
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(365)),
        later,
    )?;
    println!(
        "day 500: rejuvenated — importance back to {}",
        fs.stat("/lectures/os/l01.mp4", later)?.importance
    );
    Ok(())
}
