//! Reproduces the §5.1 policy comparison interactively: the same ramped
//! workload against the no-importance, temporal-importance and Palimpsest
//! policies on an 80 GiB disk.
//!
//! Run with: `cargo run --release --example policy_comparison`

use temporal_reclaim::experiments::single_class::{self, PolicyChoice, SingleClassConfig};

fn main() {
    let seed = 7;
    let days = 365;
    println!("§5.1 single-application-class comparison, 80 GiB, {days} days\n");
    println!(
        "{:<22} {:>9} {:>10} {:>11} {:>14}",
        "policy", "accepted", "rejected", "evictions", "mean life (d)"
    );

    for policy in PolicyChoice::ALL {
        let mut cfg = SingleClassConfig::paper(seed, 80, policy);
        cfg.days = days;
        let result = single_class::run(cfg);
        let lifetimes = result.lifetime_series();
        let mean_life = lifetimes
            .summary()
            .map(|s| format!("{:.1}", s.mean))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22} {:>9} {:>10} {:>11} {:>14}",
            policy.label(),
            result.stats.stores_accepted,
            result.stats.rejections_full,
            result.stats.evictions_preempted,
            mean_life,
        );
    }

    println!(
        "\nReading the table the paper's way (Fig. 3 & 4):\n\
         * no-importance gives accepted objects their full 30 days but rejects the most;\n\
         * temporal-importance trades the waning 15 days for far fewer rejections;\n\
         * palimpsest never rejects but also never honors importance."
    );
}
