//! Reproduces the §5.1 policy comparison interactively: the same ramped
//! workload against the no-importance, temporal-importance and Palimpsest
//! policies on an 80 GiB disk — first through the paper's experiment
//! driver, then replayed through the [`StoreApi`] protocol so the same
//! generic loop runs against the in-process engine and the sharded
//! `tempimpd` service.
//!
//! Run with: `cargo run --release --example policy_comparison`

use temporal_reclaim::experiments::single_class::{self, PolicyChoice, SingleClassConfig};
use temporal_reclaim::serve::Tempimpd;
use temporal_reclaim::tempimp::*;
use temporal_reclaim::workload::ramp::RampedArrivals;

/// The protocol-generic driver: every store decision flows through
/// [`StoreApi::put`], so the identical code exercises a [`StorageUnit`]
/// on this thread or a fleet of shard workers behind ingest queues.
fn run_protocol<S: StoreApi>(
    store: &mut S,
    policy: PolicyChoice,
    days: u64,
    seed: u64,
) -> StoreStats {
    let horizon = SimTime::from_days(days);
    let curve = policy.curve();
    let mut ids = ObjectIdGen::new();
    let mut last = SimTime::ZERO;
    for arrival in RampedArrivals::paper(seed) {
        if arrival.at >= horizon {
            break;
        }
        last = arrival.at;
        match store.put(ids.next_id(), arrival.size, curve.clone(), arrival.at) {
            Ok(_) | Err(Error::Store(_)) => {} // accepted / engine-refused: both are data
            Err(e) => panic!("transport error in workload: {e}"),
        }
    }
    store.store_stats(last).expect("stats after a clean run")
}

fn main() {
    let seed = 7;
    let days = 365;
    println!("§5.1 single-application-class comparison, 80 GiB, {days} days\n");
    println!(
        "{:<22} {:>9} {:>10} {:>11} {:>14}",
        "policy", "accepted", "rejected", "evictions", "mean life (d)"
    );

    for policy in PolicyChoice::ALL {
        let mut cfg = SingleClassConfig::paper(seed, 80, policy);
        cfg.days = days;
        let result = single_class::run(cfg);
        let lifetimes = result.lifetime_series();
        let mean_life = lifetimes
            .summary()
            .map(|s| format!("{:.1}", s.mean))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22} {:>9} {:>10} {:>11} {:>14}",
            policy.label(),
            result.stats.stores_accepted,
            result.stats.rejections_full,
            result.stats.evictions_preempted,
            mean_life,
        );
    }

    println!(
        "\nReading the table the paper's way (Fig. 3 & 4):\n\
         * no-importance gives accepted objects their full 30 days but rejects the most;\n\
         * temporal-importance trades the waning 15 days for far fewer rejections;\n\
         * palimpsest never rejects but also never honors importance."
    );

    // The same comparison through the protocol. One generic loop; two
    // implementations. The sharded rows split the 80 GiB over 4 workers
    // whose cadenced expiry sweeps reclaim dead bytes *between* stores,
    // so reclamation shifts from store-time preemption to sweeps — the
    // preempted/expired split moves, while accepted/rejected stay close.
    let proto_days = 180;
    println!(
        "\nsame workload via StoreApi ({proto_days} days): in-process unit vs tempimpd (4 shards)\n"
    );
    println!(
        "{:<22} {:<18} {:>9} {:>10} {:>11} {:>9}",
        "policy", "store", "accepted", "rejected", "preempted", "expired"
    );
    for policy in PolicyChoice::ALL {
        let mut unit = StorageUnit::builder(ByteSize::from_gib(80))
            .policy(policy.eviction_policy())
            .build();
        let stats = run_protocol(&mut unit, policy, proto_days, seed);
        println!(
            "{:<22} {:<18} {:>9} {:>10} {:>11} {:>9}",
            policy.label(),
            "StorageUnit",
            stats.unit.stores_accepted,
            stats.unit.rejections_full,
            stats.unit.evictions_preempted,
            stats.unit.evictions_expired
        );

        let service = Tempimpd::builder()
            .shards(4)
            .shard_capacity(ByteSize::from_gib(20))
            .policy(policy.eviction_policy())
            .spawn();
        let mut client = service.client();
        let stats = run_protocol(&mut client, policy, proto_days, seed);
        drop(client);
        service.shutdown();
        println!(
            "{:<22} {:<18} {:>9} {:>10} {:>11} {:>9}",
            policy.label(),
            "tempimpd 4x20GiB",
            stats.unit.stores_accepted,
            stats.unit.rejections_full,
            stats.unit.evictions_preempted,
            stats.unit.evictions_expired
        );
    }
}
