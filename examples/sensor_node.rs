//! The §6 sensor scenario end to end: raw captures at full importance,
//! trigger-driven demotion after processing and acknowledgment, and a
//! three-day uplink outage absorbed without losing a single unprocessed
//! capture.
//!
//! Run with: `cargo run --release --example sensor_node`

use temporal_reclaim::experiments::sensor::{self, SensorRunConfig};
use temporal_reclaim::{SimDuration, SimTime};

fn main() {
    println!("§6 sensor node: 4 sensors, 2 GiB storage, 14 simulated days\n");

    for (label, outage) in [
        ("steady uplink", None),
        (
            "3-day uplink outage from day 5",
            Some((SimTime::from_days(5), SimDuration::from_days(3))),
        ),
    ] {
        let result = sensor::run(SensorRunConfig {
            outage,
            ..SensorRunConfig::default()
        });
        let peak_pending = result
            .pending_summaries
            .values()
            .iter()
            .copied()
            .fold(0.0, f64::max);
        println!("{label}:");
        println!(
            "  captures {}  summaries {}  acked {}",
            result.captures, result.summaries, result.acked
        );
        println!(
            "  unprocessed captures lost: {}   unacked summaries lost: {}",
            result.raw_lost_unprocessed, result.summaries_lost_unacked
        );
        println!(
            "  retention buffer (pending summaries): peak {peak_pending:.0}, mean {:.1}",
            result.pending_summaries.summary().expect("sampled").mean
        );
        println!(
            "  storage importance density: mean {:.3}\n",
            result.density.summary().expect("sampled").mean
        );
    }

    println!(
        "Demand is ~3x the disk, yet nothing in flight is ever lost: only data\n\
         whose trigger fired (processed / acknowledged) becomes preemptible."
    );
}
