//! Multi-user fairness (§1) plus the annotation advisor (§5.1.2):
//! importance-weighted budgets stop greedy users from monopolizing the
//! store, and the advisor tells each user what annotation will actually
//! survive.
//!
//! Run with: `cargo run --example fair_shares`

use temporal_reclaim::core::{
    Advisor, FairStore, FairStoreError, Forecast, Importance, ImportanceCurve, ObjectIdGen,
    ObjectSpec, PrincipalId, StorageUnit,
};
use temporal_reclaim::{ByteSize, SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unit = StorageUnit::new(ByteSize::from_gib(4));
    let mut store = FairStore::new(unit, ByteSize::from_gib(1));
    let mut ids = ObjectIdGen::new();

    let greedy = PrincipalId::new(1);
    let honest = PrincipalId::new(2);

    // The greedy user annotates everything at importance 1.0; the honest
    // user admits their media is only half-important. Same budget. Objects
    // expire after a day, so the disk cycles and steady-state throughput
    // is governed by each user's weighted budget.
    for round in 0..240 {
        let at = SimTime::from_hours(round);
        store.sweep_expired(at);
        for (who, importance) in [(greedy, 1.0), (honest, 0.5)] {
            let spec = ObjectSpec::new(
                ids.next_id(),
                ByteSize::from_mib(64),
                ImportanceCurve::Fixed {
                    importance: Importance::new_clamped(importance),
                    expiry: SimDuration::from_days(1),
                },
            );
            match store.store(who, spec, at) {
                Ok(_) => {}
                // Quota refusals and engine fullness are both expected
                // once the disk saturates.
                Err(FairStoreError::QuotaExceeded { .. }) => {}
                Err(FairStoreError::Store(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    for (label, who) in [("greedy (1.0)", greedy), ("honest (0.5)", honest)] {
        let usage = store.usage(who);
        println!(
            "{label}: {} objects stored, {} refused by quota, {:.0} MiB weighted charge",
            usage.accepted,
            usage.quota_refusals,
            usage.charged as f64 / (1024.0 * 1024.0),
        );
    }
    println!();

    // Now the advisor closes the loop on a *saturated* disk: what should
    // a newcomer request to actually survive?
    let mut busy = StorageUnit::new(ByteSize::from_gib(2));
    for i in 0..32 {
        busy.store(
            ObjectSpec::new(
                ids.next_id(),
                ByteSize::from_mib(64),
                ImportanceCurve::Fixed {
                    importance: Importance::new_clamped(0.5),
                    expiry: SimDuration::from_days(30),
                },
            ),
            SimTime::from_minutes(i),
        )?;
    }
    let advisor = Advisor::from_snapshot(busy.density_snapshot(SimTime::from_days(10)));
    let size = ByteSize::from_mib(256);
    println!(
        "advisor: a {size} object currently needs importance > {}",
        advisor.admission_threshold_for(size)
    );
    let curve = ImportanceCurve::two_step(
        Importance::new_clamped(0.8),
        SimDuration::from_days(10),
        SimDuration::from_days(10),
    );
    match advisor.forecast(&curve, size) {
        Forecast::Admitted { expected_survival } => println!(
            "advisor: a 0.8-plateau two-step annotation is admitted, expected survival {}",
            expected_survival
                .map(|d| d.to_string())
                .unwrap_or_else(|| "full lifetime".into())
        ),
        Forecast::Rejected { threshold } => {
            println!("advisor: rejected — must exceed importance {threshold}")
        }
        _ => {}
    }
    if let Some(plateau) = advisor.min_plateau_for(
        size,
        SimDuration::from_days(10),
        SimDuration::from_days(10),
        SimDuration::from_days(12),
    ) {
        println!("advisor: to survive 12 days, request a plateau of at least {plateau}");
    }
    Ok(())
}
