//! Quickstart: annotate objects with temporal importance and watch the
//! store reclaim space by itself.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use temporal_reclaim::tempimp::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10 GiB storage unit using the paper's preemptive policy, with a
    // metrics registry attached so we can see what the engine did.
    let metrics = Arc::new(MetricsRegistry::new());
    let mut unit = StorageUnit::builder(ByteSize::from_gib(10))
        .observer(Obs::attached(metrics.clone()))
        .build();
    let mut ids = ObjectIdGen::new();

    // The paper's §5.1 two-step annotation: "the object is definitely
    // important for 15 days, might be important for another 15 days and
    // probably not after 30 days".
    let two_step = ImportanceCurve::two_step(
        Importance::FULL,
        SimDuration::from_days(15),
        SimDuration::from_days(15),
    );

    // Day 0: fill the disk with annotated objects.
    println!("day 0: storing 10 x 1 GiB objects with two-step lifetimes");
    for _ in 0..10 {
        let spec = ObjectSpec::new(ids.next_id(), ByteSize::from_gib(1), two_step.clone());
        unit.store(spec, SimTime::ZERO)?;
    }
    println!(
        "  used {} of {}, importance density {:.3}",
        unit.used(),
        unit.capacity(),
        unit.importance_density(SimTime::ZERO)
    );

    // Day 10: the disk is full of full-importance data — a new object of
    // equal importance is refused. The error tells the creator exactly
    // which importance level blocks them.
    let day10 = SimTime::from_days(10);
    let refused = ObjectSpec::new(ids.next_id(), ByteSize::from_gib(1), two_step.clone());
    match unit.store(refused, day10) {
        Err(e) => println!("day 10: store refused as expected: {e}"),
        Ok(_) => unreachable!("the disk is full of full-importance data"),
    }

    // Day 20: the stored objects are half-way through their wane
    // (importance ~0.67), so a fresh full-importance object preempts the
    // least important one automatically.
    let day20 = SimTime::from_days(20);
    println!(
        "day 20: importance density has decayed to {:.3}",
        unit.importance_density(day20)
    );
    let fresh = ObjectSpec::new(ids.next_id(), ByteSize::from_gib(1), two_step);
    let outcome = unit.store(fresh, day20)?;
    println!(
        "  stored by preempting {} object(s); highest preempted importance {}",
        outcome.evicted.len(),
        outcome
            .highest_preempted
            .map(|i| i.to_string())
            .unwrap_or_else(|| "none".into())
    );
    for victim in &outcome.evicted {
        println!(
            "  evicted {} after {} (importance at eviction {})",
            victim.id,
            victim.lifetime_achieved(),
            victim.importance_at_eviction
        );
    }

    // The storage importance density is the feedback signal: it tells
    // creators which importance levels the storage is currently full for.
    let snapshot = unit.density_snapshot(day20);
    println!(
        "  density {:.3}; lowest stored importance {}",
        snapshot.density,
        snapshot
            .min_stored_importance()
            .map(|i| i.to_string())
            .unwrap_or_else(|| "n/a".into())
    );

    // Everything the engine did, straight from the observability layer
    // (compile with `--features obs-off` and this report is empty, at
    // zero runtime cost).
    println!("\n{}", Report::new("quickstart", metrics.snapshot()));
    Ok(())
}
