//! Quickstart: annotate objects with temporal importance and watch the
//! store reclaim space by itself — through the [`StoreApi`] protocol,
//! so the exact same code runs against the in-process engine and the
//! sharded `tempimpd` service.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use temporal_reclaim::serve::Tempimpd;
use temporal_reclaim::tempimp::*;

/// The whole demo is generic over [`StoreApi`]: `put` to store with an
/// annotation, `advise` to probe admission, `density_info` for the §5.2
/// feedback signal, `store_stats` for the lifetime counters. Everything
/// below works identically whether `store` is a [`StorageUnit`] on this
/// thread or a fleet of shard workers behind channels.
fn demo<S: StoreApi>(store: &mut S, ids: &mut ObjectIdGen) -> Result<(), Error> {
    // The paper's §5.1 two-step annotation: "the object is definitely
    // important for 15 days, might be important for another 15 days and
    // probably not after 30 days".
    let two_step = ImportanceCurve::two_step(
        Importance::FULL,
        SimDuration::from_days(15),
        SimDuration::from_days(15),
    );

    // Day 0: fill the disk with annotated objects.
    println!("day 0: storing 10 x 1 GiB objects with two-step lifetimes");
    let mut last = ids.next_id();
    store.put(last, ByteSize::from_gib(1), two_step.clone(), SimTime::ZERO)?;
    for _ in 1..10 {
        last = ids.next_id();
        store.put(last, ByteSize::from_gib(1), two_step.clone(), SimTime::ZERO)?;
    }
    let density = store.density_info(SimTime::ZERO)?;
    println!(
        "  used {} of {}, importance density {:.3}",
        density.used, density.capacity, density.density
    );

    // Day 10: the disk is full of full-importance data — a new object of
    // equal importance is refused, and the admission probe says so
    // *before* paying for the transfer. The error tells the creator
    // exactly which importance level blocks them.
    let day10 = SimTime::from_days(10);
    let probe = ids.next_id();
    match store.advise(probe, ByteSize::from_gib(1), Importance::FULL, day10)? {
        Admission::Full { blocking } => println!(
            "day 10: advise says full (blocking importance {})",
            blocking
                .map(|i| i.to_string())
                .unwrap_or_else(|| "n/a".into())
        ),
        other => println!("day 10: advise answered {other:?}"),
    }
    match store.put(probe, ByteSize::from_gib(1), two_step.clone(), day10) {
        Err(e) => println!("  store refused as expected: {e}"),
        Ok(_) => unreachable!("the disk is full of full-importance data"),
    }

    // Day 20: the stored objects are half-way through their wane
    // (importance ~0.67), so a fresh full-importance object preempts the
    // least important one automatically.
    let day20 = SimTime::from_days(20);
    println!(
        "day 20: importance density has decayed to {:.3}",
        store.density_info(day20)?.density
    );
    let outcome = store.put(ids.next_id(), ByteSize::from_gib(1), two_step, day20)?;
    println!(
        "  stored by preempting {} object(s); highest preempted importance {}",
        outcome.evicted.len(),
        outcome
            .highest_preempted
            .map(|i| i.to_string())
            .unwrap_or_else(|| "none".into())
    );
    for victim in &outcome.evicted {
        println!(
            "  evicted {} after {} (importance at eviction {})",
            victim.id,
            victim.lifetime_achieved(),
            victim.importance_at_eviction
        );
    }

    // The survivors are still addressable, with their importance
    // evaluated at the asking time.
    if let Some(info) = store.get_info(last, day20)? {
        println!(
            "  {} stored day 0 is still resident at importance {}",
            info.id, info.importance
        );
    }

    // Aggregate lifetime counters, identically shaped for one unit or a
    // whole fleet.
    let stats = store.store_stats(day20)?;
    println!(
        "  totals: {} accepted, {} rejected full, {} preempted",
        stats.unit.stores_accepted, stats.unit.rejections_full, stats.unit.evictions_preempted
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // First, the in-process engine: a 10 GiB storage unit using the
    // paper's preemptive policy, with a metrics registry attached so we
    // can see what it did.
    let metrics = Arc::new(MetricsRegistry::new());
    let mut unit = StorageUnit::builder(ByteSize::from_gib(10))
        .observer(Obs::attached(metrics.clone()))
        .build();
    let mut ids = ObjectIdGen::new();
    println!("=== in-process StorageUnit ===");
    demo(&mut unit, &mut ids)?;

    // Now the *same function* against tempimpd, the sharded concurrent
    // service: one shard here so the capacity narrative stays identical,
    // but every request now crosses an ingest queue to a worker thread
    // that owns the engine. See README.md for the multi-shard setup.
    println!("\n=== tempimpd, same code over the wire ===");
    let service = Tempimpd::builder()
        .shards(1)
        .shard_capacity(ByteSize::from_gib(10))
        .spawn();
    let mut client = service.client();
    let mut ids = ObjectIdGen::new();
    demo(&mut client, &mut ids)?;
    drop(client);
    service.shutdown();

    // Everything the engine did, straight from the observability layer
    // (compile with `--features obs-off` and this report is empty, at
    // zero runtime cost).
    println!("\n{}", Report::new("quickstart", metrics.snapshot()));
    Ok(())
}
