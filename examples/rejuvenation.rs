//! The §3/§6 "active intervention" scenario: a road-recorded video is
//! annotated as important until a backup completes, then demoted by a
//! trigger so the storage can reclaim it.
//!
//! Run with: `cargo run --example rejuvenation`

use temporal_reclaim::tempimp::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut unit = StorageUnit::new(ByteSize::from_gib(4));
    let video = ObjectId::new(1);

    // "Video objects captured on the road are important until the user can
    // return home and successfully create a backup copy" (§3). The upload
    // application annotates with high importance and a conservative expiry.
    let on_the_road = ImportanceCurve::fixed_lifetime(SimDuration::from_days(30));
    unit.store(
        ObjectSpec::new(video, ByteSize::from_gib(2), on_the_road),
        SimTime::ZERO,
    )?;
    println!(
        "day 0: road video stored at importance {}",
        unit.get(video).unwrap().current_importance(SimTime::ZERO)
    );

    // Day 20: the trip ran long — the user extends the annotation. The
    // raise-only `rejuvenate` API restarts the curve.
    let day20 = SimTime::from_days(20);
    unit.rejuvenate(
        video,
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
        day20,
    )?;
    println!(
        "day 20: rejuvenated; now expires {} days later than originally",
        20
    );

    // Lowering via rejuvenate is refused — decay must come from the curve
    // or an explicit trigger.
    let err = unit
        .rejuvenate(video, ImportanceCurve::Ephemeral, day20)
        .unwrap_err();
    println!("day 20: lowering via rejuvenate refused: {err}");

    // Day 25: the backup application reports success and fires the §6
    // trigger: reannotate demotes the local copy to cache-like importance.
    let day25 = SimTime::from_days(25);
    unit.reannotate(video, ImportanceCurve::Ephemeral, day25)?;
    println!(
        "day 25: backup complete — demoted to importance {}",
        unit.get(video).unwrap().current_importance(day25)
    );

    // Now any incoming object reclaims that space automatically.
    let fresh = ObjectSpec::new(
        ObjectId::new(2),
        ByteSize::from_gib(3),
        ImportanceCurve::two_step(
            Importance::FULL,
            SimDuration::from_days(15),
            SimDuration::from_days(15),
        ),
    );
    let outcome = unit.store(fresh, day25)?;
    println!(
        "day 25: new capture stored; reclaimed {} old object(s) including the backed-up video: {}",
        outcome.evicted.len(),
        outcome.evicted.iter().any(|e| e.id == video)
    );
    Ok(())
}
