//! Periodic-tick helpers for sampling loops and schedule generators.
//!
//! Churn models and experiment drivers all need the same two shapes of
//! time arithmetic: "every `period` from `start` until `horizon`" and
//! "the next `period` boundary at or after `at`". Centralizing them keeps
//! the arithmetic (and its inclusive/exclusive conventions) consistent
//! across the workspace.

use crate::{SimDuration, SimTime};

/// An iterator over `start, start + period, start + 2·period, …` up to and
/// including `until`.
///
/// # Examples
///
/// ```
/// use sim_core::schedule::ticks;
/// use sim_core::{SimDuration, SimTime};
///
/// let sampled: Vec<u64> = ticks(SimTime::ZERO, SimDuration::from_days(7), SimTime::from_days(21))
///     .map(|t| t.as_days())
///     .collect();
/// assert_eq!(sampled, vec![0, 7, 14, 21]);
/// ```
///
/// # Panics
///
/// Panics if `period` is zero (the iterator would never advance).
pub fn ticks(start: SimTime, period: SimDuration, until: SimTime) -> Ticks {
    assert!(period > SimDuration::ZERO, "tick period must be positive");
    Ticks {
        next: start,
        period,
        until,
    }
}

/// The iterator returned by [`ticks`].
#[derive(Debug, Clone)]
pub struct Ticks {
    next: SimTime,
    period: SimDuration,
    until: SimTime,
}

impl Iterator for Ticks {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.next > self.until {
            return None;
        }
        let at = self.next;
        self.next += self.period;
        Some(at)
    }
}

/// The earliest `period` boundary (counted from the epoch) at or after
/// `at`. Useful for aligning an event stream onto a sampling grid.
///
/// # Examples
///
/// ```
/// use sim_core::schedule::align_up;
/// use sim_core::{SimDuration, SimTime};
///
/// let day = SimDuration::DAY;
/// assert_eq!(align_up(SimTime::from_hours(1), day), SimTime::from_days(1));
/// assert_eq!(align_up(SimTime::from_days(2), day), SimTime::from_days(2));
/// ```
///
/// # Panics
///
/// Panics if `period` is zero.
pub fn align_up(at: SimTime, period: SimDuration) -> SimTime {
    assert!(
        period > SimDuration::ZERO,
        "alignment period must be positive"
    );
    let p = period.as_minutes();
    let m = at.as_minutes();
    SimTime::from_minutes(m.div_ceil(p) * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_cover_inclusive_horizon() {
        let all: Vec<SimTime> = ticks(
            SimTime::from_days(1),
            SimDuration::from_days(2),
            SimTime::from_days(7),
        )
        .collect();
        assert_eq!(
            all,
            vec![
                SimTime::from_days(1),
                SimTime::from_days(3),
                SimTime::from_days(5),
                SimTime::from_days(7),
            ]
        );
    }

    #[test]
    fn ticks_past_horizon_are_empty() {
        let mut it = ticks(
            SimTime::from_days(10),
            SimDuration::DAY,
            SimTime::from_days(9),
        );
        assert_eq!(it.next(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = ticks(SimTime::ZERO, SimDuration::ZERO, SimTime::from_days(1));
    }

    #[test]
    fn align_up_lands_on_boundaries() {
        assert_eq!(align_up(SimTime::ZERO, SimDuration::DAY), SimTime::ZERO);
        assert_eq!(
            align_up(SimTime::from_minutes(61), SimDuration::HOUR),
            SimTime::from_hours(2)
        );
    }
}
