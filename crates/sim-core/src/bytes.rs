//! Byte quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;
const GIB: u64 = 1024 * MIB;
const TIB: u64 = 1024 * GIB;

/// A non-negative quantity of bytes.
///
/// The paper quotes capacities and rates in GB (80 GB / 120 GB disks,
/// 0.5 GB/hr arrivals); we interpret these as binary gigabytes (GiB) —
/// the distinction does not affect any qualitative result.
///
/// # Examples
///
/// ```
/// use sim_core::ByteSize;
///
/// let disk = ByteSize::from_gib(80);
/// let object = ByteSize::from_mib(450);
/// assert!(disk > object);
/// assert_eq!(ByteSize::from_gib(1), ByteSize::from_mib(1024));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size of `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size of `kib` binary kilobytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * KIB)
    }

    /// Creates a size of `mib` binary megabytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * MIB)
    }

    /// Creates a size of `gib` binary gigabytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * GIB)
    }

    /// Creates a size of `tib` binary terabytes.
    pub const fn from_tib(tib: u64) -> Self {
        ByteSize(tib * TIB)
    }

    /// The size in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size in fractional GiB.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// The size in fractional MiB.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// True if this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub const fn checked_sub(self, rhs: ByteSize) -> Option<ByteSize> {
        match self.0.checked_sub(rhs.0) {
            Some(b) => Some(ByteSize(b)),
            None => None,
        }
    }

    /// The ratio `self / other` as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: ByteSize) -> f64 {
        assert!(!other.is_zero(), "division by zero-byte size");
        self.0 as f64 / other.0 as f64
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;

    /// # Panics
    ///
    /// Panics on underflow; use [`ByteSize::saturating_sub`] otherwise.
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(
            self.0
                .checked_sub(rhs.0)
                .expect("ByteSize subtraction underflow"),
        )
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TIB {
            write!(f, "{:.2} TiB", b as f64 / TIB as f64)
        } else if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_are_consistent() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1), ByteSize::from_kib(1024));
        assert_eq!(ByteSize::from_gib(1), ByteSize::from_mib(1024));
        assert_eq!(ByteSize::from_tib(1), ByteSize::from_gib(1024));
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: ByteSize = [ByteSize::from_mib(1), ByteSize::from_mib(3)]
            .into_iter()
            .sum();
        assert_eq!(total, ByteSize::from_mib(4));
        assert_eq!(total - ByteSize::from_mib(1), ByteSize::from_mib(3));
        assert_eq!(
            ByteSize::from_mib(1).saturating_sub(ByteSize::from_mib(2)),
            ByteSize::ZERO
        );
        assert_eq!(
            ByteSize::from_mib(1).checked_sub(ByteSize::from_mib(2)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = ByteSize::from_mib(1) - ByteSize::from_mib(2);
    }

    #[test]
    fn fractional_accessors() {
        assert_eq!(ByteSize::from_gib(2).as_gib_f64(), 2.0);
        assert_eq!(ByteSize::from_mib(512).as_gib_f64(), 0.5);
        assert_eq!(ByteSize::from_gib(80).ratio(ByteSize::from_gib(40)), 2.0);
    }

    #[test]
    fn display_picks_a_sensible_unit() {
        assert_eq!(ByteSize::from_bytes(100).to_string(), "100 B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.00 MiB");
        assert_eq!(ByteSize::from_gib(80).to_string(), "80.00 GiB");
        assert_eq!(ByteSize::from_tib(58).to_string(), "58.00 TiB");
    }
}
