//! A stable time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of events ordered by their scheduled [`SimTime`].
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO). This stability matters for reproducibility: the paper's
/// experiments depend on deterministic replay, and an unstable heap would
/// reorder same-minute arrivals between runs.
///
/// # Examples
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_minutes(5), 'b');
/// q.push(SimTime::from_minutes(5), 'c');
/// q.push(SimTime::from_minutes(1), 'a');
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` for delivery at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The time of the earliest scheduled event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes the earliest event only if it is scheduled at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_minutes(30), 3);
        q.push(SimTime::from_minutes(10), 1);
        q.push(SimTime::from_minutes(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_minutes(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_minutes(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_minutes(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_minute_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_minutes(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_minutes(10), "early");
        q.push(SimTime::from_minutes(20), "late");
        assert_eq!(q.pop_due(SimTime::from_minutes(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_minutes(15)),
            Some((SimTime::from_minutes(10), "early"))
        );
        assert_eq!(q.pop_due(SimTime::from_minutes(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u8> = (0..5u8)
            .map(|i| (SimTime::from_minutes(u64::from(i)), i))
            .collect();
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert!(!q.is_empty());
    }
}
