//! Discrete-event simulation substrate used by the temporal-importance
//! storage reclamation reproduction.
//!
//! The paper (Chandra, Gehani, Yu — ICDCS 2007, §4.3) evaluates its storage
//! abstraction with a minute-granularity simulator run over five to ten
//! simulated years. This crate provides the foundations every other crate in
//! the workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — minute-granularity simulated time with
//!   integer arithmetic (no floating-point drift over a decade of minutes),
//! * [`ByteSize`] — byte quantities with GB/MB/KB constructors and display,
//! * [`EventQueue`] — a stable priority queue of timestamped events
//!   (ties break in insertion order, which keeps runs deterministic),
//! * [`Simulation`] — a minimal driver loop around an [`EventQueue`],
//! * [`rng`] — seeded RNG constructors so every experiment is reproducible.
//!
//! # Examples
//!
//! ```
//! use sim_core::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_days(2), "later");
//! queue.push(SimTime::from_hours(1), "sooner");
//!
//! let (at, what) = queue.pop().expect("queue is non-empty");
//! assert_eq!(what, "sooner");
//! assert_eq!(at, SimTime::ZERO + SimDuration::from_hours(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bytes;
mod queue;
mod time;

pub mod driver;
pub mod fx;
pub mod observe;
pub mod rng;
pub mod schedule;

pub use bytes::ByteSize;
pub use driver::Simulation;
pub use observe::{Obs, Observer, Span};
pub use queue::EventQueue;
pub use time::{ShardClock, SimDuration, SimTime};

#[cfg(test)]
mod manifest_guard {
    /// `sim-core` is the workspace's dependency-free foundation: the
    /// observability layer was deliberately designed as a trait in
    /// `observe` so that no metrics implementation leaks down here. This
    /// guard fails the build the moment someone adds a dependency, the
    /// same way a `cargo deny` bans list would.
    #[test]
    fn dependency_set_is_frozen() {
        let manifest = include_str!("../Cargo.toml");
        let deps: Vec<&str> = manifest
            .lines()
            .skip_while(|l| l.trim() != "[dependencies]")
            .skip(1)
            .take_while(|l| !l.trim().starts_with('['))
            .filter_map(|l| l.split_once(['.', ' ', '=']).map(|(name, _)| name.trim()))
            .filter(|name| !name.is_empty() && !name.starts_with('#'))
            .collect();
        assert_eq!(
            deps,
            ["rand", "serde"],
            "sim-core must stay dependency-free beyond the vendored rand/serde; \
             put new functionality in a crate that depends on sim-core instead"
        );
    }
}
