//! Discrete-event simulation substrate used by the temporal-importance
//! storage reclamation reproduction.
//!
//! The paper (Chandra, Gehani, Yu — ICDCS 2007, §4.3) evaluates its storage
//! abstraction with a minute-granularity simulator run over five to ten
//! simulated years. This crate provides the foundations every other crate in
//! the workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — minute-granularity simulated time with
//!   integer arithmetic (no floating-point drift over a decade of minutes),
//! * [`ByteSize`] — byte quantities with GB/MB/KB constructors and display,
//! * [`EventQueue`] — a stable priority queue of timestamped events
//!   (ties break in insertion order, which keeps runs deterministic),
//! * [`Simulation`] — a minimal driver loop around an [`EventQueue`],
//! * [`rng`] — seeded RNG constructors so every experiment is reproducible.
//!
//! # Examples
//!
//! ```
//! use sim_core::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_days(2), "later");
//! queue.push(SimTime::from_hours(1), "sooner");
//!
//! let (at, what) = queue.pop().expect("queue is non-empty");
//! assert_eq!(what, "sooner");
//! assert_eq!(at, SimTime::ZERO + SimDuration::from_hours(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bytes;
mod queue;
mod time;

pub mod driver;
pub mod rng;
pub mod schedule;

pub use bytes::ByteSize;
pub use driver::Simulation;
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
