//! Minute-granularity simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

const MINUTES_PER_HOUR: u64 = 60;
const MINUTES_PER_DAY: u64 = 24 * MINUTES_PER_HOUR;
const MINUTES_PER_YEAR: u64 = 365 * MINUTES_PER_DAY;

/// An instant in simulated time, measured in whole minutes since the
/// simulation epoch (the moment the simulated system was switched on).
///
/// The paper's simulator operates "on a minute granularity" (§4.3); a `u64`
/// minute counter covers ~3.5 × 10¹³ years, so overflow is not a practical
/// concern and arithmetic here panics on overflow rather than saturating.
///
/// # Examples
///
/// ```
/// use sim_core::{SimDuration, SimTime};
///
/// let t = SimTime::from_days(30);
/// assert_eq!(t.as_minutes(), 30 * 24 * 60);
/// assert_eq!(t + SimDuration::from_hours(1), SimTime::from_minutes(30 * 24 * 60 + 60));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time, measured in whole minutes.
///
/// # Examples
///
/// ```
/// use sim_core::SimDuration;
///
/// let d = SimDuration::from_days(2) + SimDuration::from_hours(3);
/// assert_eq!(d.as_hours(), 51);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch: minute zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time `minutes` minutes after the epoch.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimTime(minutes)
    }

    /// Creates a time `hours` hours after the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * MINUTES_PER_HOUR)
    }

    /// Creates a time `days` days after the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * MINUTES_PER_DAY)
    }

    /// Minutes elapsed since the epoch.
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Whole hours elapsed since the epoch (truncating).
    pub const fn as_hours(self) -> u64 {
        self.0 / MINUTES_PER_HOUR
    }

    /// Whole days elapsed since the epoch (truncating).
    pub const fn as_days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Fractional days elapsed since the epoch.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }

    /// The day-of-year (0-based, `0..365`) this instant falls on, treating
    /// every simulated year as exactly 365 days. The paper's academic
    /// calendar (Table 1) is expressed in day-of-year terms.
    pub const fn day_of_year(self) -> u64 {
        (self.0 % MINUTES_PER_YEAR) / MINUTES_PER_DAY
    }

    /// The 0-based simulated year this instant falls in (365-day years).
    pub const fn year(self) -> u64 {
        self.0 / MINUTES_PER_YEAR
    }

    /// The duration elapsed since `earlier`, or `None` if `earlier` is in
    /// this instant's future.
    pub const fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(earlier.0) {
            Some(m) => Some(SimDuration(m)),
            None => None,
        }
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// One simulated minute.
    pub const MINUTE: SimDuration = SimDuration(1);

    /// One simulated hour.
    pub const HOUR: SimDuration = SimDuration(MINUTES_PER_HOUR);

    /// One simulated day.
    pub const DAY: SimDuration = SimDuration(MINUTES_PER_DAY);

    /// One simulated week.
    pub const WEEK: SimDuration = SimDuration(7 * MINUTES_PER_DAY);

    /// One simulated (365-day) year.
    pub const YEAR: SimDuration = SimDuration(MINUTES_PER_YEAR);

    /// Creates a duration of `minutes` minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimDuration(minutes)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * MINUTES_PER_HOUR)
    }

    /// Creates a duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * MINUTES_PER_DAY)
    }

    /// Length in minutes.
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Length in whole hours (truncating).
    pub const fn as_hours(self) -> u64 {
        self.0 / MINUTES_PER_HOUR
    }

    /// Length in whole days (truncating).
    pub const fn as_days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Length in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }

    /// Length in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_HOUR as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies this duration by an integer factor.
    pub const fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }

    /// The ratio `self / other` as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "division by zero-length duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can happen.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics on underflow; use [`SimDuration::saturating_sub`] otherwise.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.as_days();
        let rem = self.0 % MINUTES_PER_DAY;
        write!(f, "d{days}+{:02}:{:02}", rem / 60, rem % 60)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            return write!(f, "0m");
        }
        let days = self.as_days();
        let hours = (self.0 % MINUTES_PER_DAY) / MINUTES_PER_HOUR;
        let minutes = self.0 % MINUTES_PER_HOUR;
        let mut wrote = false;
        if days > 0 {
            write!(f, "{days}d")?;
            wrote = true;
        }
        if hours > 0 {
            write!(f, "{hours}h")?;
            wrote = true;
        }
        if minutes > 0 || !wrote {
            write!(f, "{minutes}m")?;
        }
        Ok(())
    }
}

/// A shard-local monotonic clock.
///
/// A sharded serving layer gives each shard its own notion of "now":
/// requests carry the client's timestamp, but clients race, so a shard can
/// observe timestamps out of order while the reclamation engine requires
/// time to only move forward. `ShardClock` resolves this by clamping:
/// [`observe`](ShardClock::observe) returns the later of the request's
/// timestamp and everything the shard has already seen, making the
/// effective time sequence a pure function of per-shard arrival order —
/// the property the differential replay tests rely on.
///
/// # Examples
///
/// ```
/// use sim_core::{ShardClock, SimTime};
///
/// let mut clock = ShardClock::new();
/// assert_eq!(clock.observe(SimTime::from_days(2)), SimTime::from_days(2));
/// // A straggler from a slower client does not move time backwards.
/// assert_eq!(clock.observe(SimTime::from_days(1)), SimTime::from_days(2));
/// assert_eq!(clock.now(), SimTime::from_days(2));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardClock {
    now: SimTime,
}

impl ShardClock {
    /// A clock starting at the simulation epoch.
    pub const fn new() -> Self {
        ShardClock { now: SimTime::ZERO }
    }

    /// The latest instant this clock has observed.
    pub const fn now(&self) -> SimTime {
        self.now
    }

    /// Folds a request timestamp into the clock and returns the effective
    /// (monotonically non-decreasing) instant for processing it.
    pub fn observe(&mut self, at: SimTime) -> SimTime {
        if at > self.now {
            self.now = at;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_clock_is_monotone_over_racing_timestamps() {
        let mut clock = ShardClock::new();
        let stamps = [5u64, 3, 9, 9, 2, 14, 10];
        let mut previous = SimTime::ZERO;
        for &m in &stamps {
            let effective = clock.observe(SimTime::from_minutes(m));
            assert!(effective >= previous, "clock went backwards");
            assert!(effective >= SimTime::from_minutes(m));
            previous = effective;
        }
        assert_eq!(clock.now(), SimTime::from_minutes(14));
    }

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_hours(2), SimTime::from_minutes(120));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimDuration::from_days(7), SimDuration::WEEK);
        assert_eq!(SimDuration::from_days(365), SimDuration::YEAR);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let start = SimTime::from_days(10);
        let later = start + SimDuration::from_hours(36);
        assert_eq!(later - start, SimDuration::from_hours(36));
        assert_eq!(later - SimDuration::from_hours(36), start);
    }

    #[test]
    fn saturating_since_clamps_future_reference() {
        let early = SimTime::from_days(1);
        let late = SimTime::from_days(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::DAY);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_days(1) - SimTime::from_days(2);
    }

    #[test]
    fn day_of_year_wraps_at_365_days() {
        let t = SimTime::from_days(365 + 40);
        assert_eq!(t.day_of_year(), 40);
        assert_eq!(t.year(), 1);
        assert_eq!(SimTime::from_days(364).day_of_year(), 364);
        assert_eq!(SimTime::from_days(365).day_of_year(), 0);
    }

    #[test]
    fn truncating_accessors() {
        let d = SimDuration::from_minutes(MINUTES_PER_DAY + 61);
        assert_eq!(d.as_days(), 1);
        assert_eq!(d.as_hours(), 25);
        assert_eq!(d.as_minutes(), MINUTES_PER_DAY + 61);
    }

    #[test]
    fn ratio_and_mul() {
        assert_eq!(SimDuration::DAY.ratio(SimDuration::HOUR), 24.0);
        assert_eq!(SimDuration::HOUR.mul(24), SimDuration::DAY);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn ratio_by_zero_panics() {
        let _ = SimDuration::DAY.ratio(SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::ZERO.to_string(), "0m");
        assert_eq!(SimDuration::from_minutes(5).to_string(), "5m");
        assert_eq!(
            (SimDuration::from_days(2) + SimDuration::from_hours(3)).to_string(),
            "2d3h"
        );
        assert_eq!(SimTime::from_minutes(90).to_string(), "d0+01:30");
    }

    #[test]
    fn ordering_is_chronological() {
        let mut times = vec![SimTime::from_days(3), SimTime::ZERO, SimTime::from_hours(5)];
        times.sort();
        assert_eq!(
            times,
            vec![SimTime::ZERO, SimTime::from_hours(5), SimTime::from_days(3)]
        );
    }
}
