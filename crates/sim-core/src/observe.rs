//! Zero-cost observability hooks for the simulation substrate.
//!
//! Every layer of the workspace (engine, cluster, experiments) wants the
//! same thing from instrumentation: named counters, high-watermark gauges,
//! magnitude histograms, and a structured event stream keyed by simulated
//! time — never wall-clock, so traces stay byte-reproducible. This module
//! defines the [`Observer`] trait those layers emit into and the cheap
//! [`Obs`] handle they hold, without pulling any metrics implementation
//! into `sim-core` (the concrete registry and trace sinks live in the
//! `obs` crate, which depends on this one — not the other way round).
//!
//! # Zero cost when disabled
//!
//! With the `obs-off` cargo feature enabled, [`Obs`] compiles down to a
//! unit struct and every emission method to an empty inline body, so
//! instrumented hot paths carry no branch, no load, and no extra struct
//! bytes. Downstream crates forward the feature (`obs-off =
//! ["sim-core/obs-off"]`) rather than sprinkling their own `cfg`s: this
//! module is the only place in the workspace that mentions the feature.
//!
//! # Determinism contract
//!
//! Observers must never feed back into simulation state: implementations
//! only aggregate. Emission sites must never consult an RNG or branch on
//! whether an observer is attached — results with and without observation
//! are byte-identical by construction.
//!
//! # Examples
//!
//! ```
//! use sim_core::observe::{Obs, Observer};
//! use sim_core::SimTime;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! #[derive(Debug, Default)]
//! struct CountStores(AtomicU64);
//!
//! impl Observer for CountStores {
//!     fn counter(&self, name: &'static str, delta: u64) {
//!         if name == "engine.stores" {
//!             self.0.fetch_add(delta, Ordering::Relaxed);
//!         }
//!     }
//!     fn gauge(&self, _name: &'static str, _value: u64) {}
//!     fn record(&self, _name: &'static str, _value: u64) {}
//!     fn event(&self, _at: SimTime, _kind: &'static str, _fields: &[(&'static str, u64)]) {}
//! }
//!
//! let sink = Arc::new(CountStores::default());
//! let obs = Obs::attached(sink.clone());
//! obs.counter("engine.stores", 2);
//! # #[cfg(not(feature = "obs-off"))]
//! assert_eq!(sink.0.load(Ordering::Relaxed), 2);
//! ```

use std::fmt;
use std::sync::Arc;

use crate::SimTime;

/// A sink for instrumentation emitted by simulation components.
///
/// All methods take `&self`: observers are shared (usually behind an
/// [`Arc`]) between components and, in the parallel cluster sweeps,
/// between threads. Implementations must therefore be internally
/// synchronized, and — to keep multi-threaded runs deterministic — should
/// aggregate only commutatively (sums, maxima, bucket counts).
pub trait Observer: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64);

    /// Reports an instantaneous level for the named gauge. Aggregators
    /// should keep the high watermark: maxima are order-independent, so
    /// gauges stay deterministic even when threads race.
    fn gauge(&self, name: &'static str, value: u64);

    /// Records one sample into the named magnitude histogram.
    fn record(&self, name: &'static str, value: u64);

    /// Emits a structured trace event at simulated instant `at`.
    ///
    /// Field values are plain `u64`s (counts, byte sizes, raw ids,
    /// minutes) precisely so serialized traces cannot pick up
    /// float-formatting differences between build profiles.
    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]);
}

#[cfg(not(feature = "obs-off"))]
static GLOBAL: std::sync::OnceLock<Arc<dyn Observer>> = std::sync::OnceLock::new();

/// Installs the process-wide default observer picked up by [`Obs::global`].
///
/// Components constructed through the builder APIs observe into the global
/// sink unless given an explicit observer, so a binary (like `repro`)
/// instruments every unit and cluster it creates with one call at startup.
/// Follows the `log::set_logger` model: first install wins. Returns
/// `false` if an observer was already installed — or always, under the
/// `obs-off` feature, where the global slot does not exist.
pub fn set_global_observer(observer: Arc<dyn Observer>) -> bool {
    #[cfg(not(feature = "obs-off"))]
    {
        GLOBAL.set(observer).is_ok()
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = observer;
        false
    }
}

/// A cheap, cloneable handle to an optional [`Observer`].
///
/// This is what instrumented components store and call. A handle is either
/// attached to a sink or silent; every emission method is a no-op on a
/// silent handle, and under the `obs-off` feature the handle holds no data
/// at all and the methods compile to nothing.
#[derive(Clone, Default)]
pub struct Obs {
    #[cfg(not(feature = "obs-off"))]
    inner: Option<Arc<dyn Observer>>,
}

impl Obs {
    /// A silent handle: every emission is a no-op.
    pub fn none() -> Obs {
        Obs::default()
    }

    /// A handle attached to `observer`. Under `obs-off` the observer is
    /// dropped and the handle is silent.
    pub fn attached(observer: Arc<dyn Observer>) -> Obs {
        #[cfg(not(feature = "obs-off"))]
        {
            Obs {
                inner: Some(observer),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = observer;
            Obs {}
        }
    }

    /// A handle attached to the observer registered with
    /// [`set_global_observer`], or a silent handle if none is installed.
    /// Captures the global at call time: components built before the
    /// install stay silent.
    pub fn global() -> Obs {
        #[cfg(not(feature = "obs-off"))]
        {
            Obs {
                inner: GLOBAL.get().cloned(),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            Obs {}
        }
    }

    /// True if emissions reach an observer.
    pub fn is_enabled(&self) -> bool {
        self.sink().is_some()
    }

    #[inline]
    fn sink(&self) -> Option<&Arc<dyn Observer>> {
        #[cfg(not(feature = "obs-off"))]
        {
            self.inner.as_ref()
        }
        #[cfg(feature = "obs-off")]
        {
            None
        }
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(sink) = self.sink() {
            sink.counter(name, delta);
        }
    }

    /// Reports a level for the named high-watermark gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(sink) = self.sink() {
            sink.gauge(name, value);
        }
    }

    /// Records one sample into the named histogram.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(sink) = self.sink() {
            sink.record(name, value);
        }
    }

    /// Emits a structured trace event keyed by simulated time.
    #[inline]
    pub fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        if let Some(sink) = self.sink() {
            sink.event(at, kind, fields);
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Mutex<Vec<String>>,
    }

    impl Observer for Recorder {
        fn counter(&self, name: &'static str, delta: u64) {
            self.seen.lock().unwrap().push(format!("c {name} {delta}"));
        }
        fn gauge(&self, name: &'static str, value: u64) {
            self.seen.lock().unwrap().push(format!("g {name} {value}"));
        }
        fn record(&self, name: &'static str, value: u64) {
            self.seen.lock().unwrap().push(format!("h {name} {value}"));
        }
        fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
            self.seen
                .lock()
                .unwrap()
                .push(format!("e {kind}@{} {fields:?}", at.as_minutes()));
        }
    }

    #[test]
    fn silent_handles_swallow_everything() {
        let obs = Obs::none();
        assert!(!obs.is_enabled());
        obs.counter("a", 1);
        obs.gauge("b", 2);
        obs.record("c", 3);
        obs.event(SimTime::ZERO, "d", &[("x", 4)]);
    }

    #[test]
    fn attached_handles_forward_in_order() {
        let recorder = Arc::new(Recorder::default());
        let obs = Obs::attached(recorder.clone());
        obs.counter("a", 1);
        obs.gauge("b", 2);
        obs.record("c", 3);
        obs.event(SimTime::from_minutes(7), "store", &[("victims", 2)]);

        let seen = recorder.seen.lock().unwrap();
        #[cfg(not(feature = "obs-off"))]
        {
            assert!(obs.is_enabled());
            assert_eq!(
                *seen,
                vec![
                    "c a 1".to_string(),
                    "g b 2".to_string(),
                    "h c 3".to_string(),
                    "e store@7 [(\"victims\", 2)]".to_string(),
                ]
            );
        }
        #[cfg(feature = "obs-off")]
        {
            assert!(!obs.is_enabled());
            assert!(seen.is_empty());
        }
    }

    #[test]
    fn clones_share_the_sink() {
        let recorder = Arc::new(Recorder::default());
        let obs = Obs::attached(recorder.clone());
        let copy = obs.clone();
        copy.counter("shared", 5);
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(recorder.seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn debug_shows_enablement_not_contents() {
        let text = format!("{:?}", Obs::none());
        assert!(text.contains("enabled: false"), "{text}");
    }
}
