//! Zero-cost observability hooks for the simulation substrate.
//!
//! Every layer of the workspace (engine, cluster, experiments) wants the
//! same thing from instrumentation: named counters, high-watermark gauges,
//! magnitude histograms, and a structured event stream keyed by simulated
//! time — never wall-clock, so traces stay byte-reproducible. This module
//! defines the [`Observer`] trait those layers emit into and the cheap
//! [`Obs`] handle they hold, without pulling any metrics implementation
//! into `sim-core` (the concrete registry and trace sinks live in the
//! `obs` crate, which depends on this one — not the other way round).
//!
//! # Zero cost when disabled
//!
//! With the `obs-off` cargo feature enabled, [`Obs`] compiles down to a
//! unit struct and every emission method to an empty inline body, so
//! instrumented hot paths carry no branch, no load, and no extra struct
//! bytes. Downstream crates forward the feature (`obs-off =
//! ["sim-core/obs-off"]`) rather than sprinkling their own `cfg`s: this
//! module is the only place in the workspace that mentions the feature.
//!
//! # Determinism contract
//!
//! Observers must never feed back into simulation state: implementations
//! only aggregate. Emission sites must never consult an RNG or branch on
//! whether an observer is attached — results with and without observation
//! are byte-identical by construction.
//!
//! # Examples
//!
//! ```
//! use sim_core::observe::{Obs, Observer};
//! use sim_core::SimTime;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! #[derive(Debug, Default)]
//! struct CountStores(AtomicU64);
//!
//! impl Observer for CountStores {
//!     fn counter(&self, name: &'static str, delta: u64) {
//!         if name == "engine.stores" {
//!             self.0.fetch_add(delta, Ordering::Relaxed);
//!         }
//!     }
//!     fn gauge(&self, _name: &'static str, _value: u64) {}
//!     fn record(&self, _name: &'static str, _value: u64) {}
//!     fn event(&self, _at: SimTime, _kind: &'static str, _fields: &[(&'static str, u64)]) {}
//! }
//!
//! let sink = Arc::new(CountStores::default());
//! let obs = Obs::attached(sink.clone());
//! obs.counter("engine.stores", 2);
//! # #[cfg(not(feature = "obs-off"))]
//! assert_eq!(sink.0.load(Ordering::Relaxed), 2);
//! ```

use std::fmt;
use std::sync::Arc;

use crate::SimTime;

/// A sink for instrumentation emitted by simulation components.
///
/// All methods take `&self`: observers are shared (usually behind an
/// [`Arc`]) between components and, in the parallel cluster sweeps,
/// between threads. Implementations must therefore be internally
/// synchronized, and — to keep multi-threaded runs deterministic — should
/// aggregate only commutatively (sums, maxima, bucket counts).
pub trait Observer: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64);

    /// Reports an instantaneous level for the named gauge. Aggregators
    /// should keep the high watermark: maxima are order-independent, so
    /// gauges stay deterministic even when threads race.
    fn gauge(&self, name: &'static str, value: u64);

    /// Records one sample into the named magnitude histogram.
    fn record(&self, name: &'static str, value: u64);

    /// Emits a structured trace event at simulated instant `at`.
    ///
    /// Field values are plain `u64`s (counts, byte sizes, raw ids,
    /// minutes) precisely so serialized traces cannot pick up
    /// float-formatting differences between build profiles.
    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]);

    /// Reports one completed phase span: `wall_nanos` of wall-clock time
    /// over which the simulated clock progressed `sim_minutes` minutes.
    ///
    /// Spans are the one deliberately *non-reproducible* signal — they
    /// measure the host, not the simulation — so they must never reach a
    /// byte-stable artifact. The default implementation routes the
    /// wall-clock duration into the magnitude histogram under the span's
    /// name and drops the correlation, which is exactly right for sinks
    /// like trace files that ignore [`Observer::record`].
    fn span(&self, name: &'static str, wall_nanos: u64, sim_minutes: u64) {
        let _ = sim_minutes;
        self.record(name, wall_nanos);
    }
}

#[cfg(not(feature = "obs-off"))]
static GLOBAL: std::sync::OnceLock<Arc<dyn Observer>> = std::sync::OnceLock::new();

/// Installs the process-wide default observer picked up by [`Obs::global`].
///
/// Components constructed through the builder APIs observe into the global
/// sink unless given an explicit observer, so a binary (like `repro`)
/// instruments every unit and cluster it creates with one call at startup.
/// Follows the `log::set_logger` model: first install wins. Returns
/// `false` if an observer was already installed — or always, under the
/// `obs-off` feature, where the global slot does not exist.
pub fn set_global_observer(observer: Arc<dyn Observer>) -> bool {
    #[cfg(not(feature = "obs-off"))]
    {
        GLOBAL.set(observer).is_ok()
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = observer;
        false
    }
}

/// A cheap, cloneable handle to an optional [`Observer`].
///
/// This is what instrumented components store and call. A handle is either
/// attached to a sink or silent; every emission method is a no-op on a
/// silent handle, and under the `obs-off` feature the handle holds no data
/// at all and the methods compile to nothing.
#[derive(Clone, Default)]
pub struct Obs {
    #[cfg(not(feature = "obs-off"))]
    inner: Option<Arc<dyn Observer>>,
}

impl Obs {
    /// A silent handle: every emission is a no-op.
    pub fn none() -> Obs {
        Obs::default()
    }

    /// A handle attached to `observer`. Under `obs-off` the observer is
    /// dropped and the handle is silent.
    pub fn attached(observer: Arc<dyn Observer>) -> Obs {
        #[cfg(not(feature = "obs-off"))]
        {
            Obs {
                inner: Some(observer),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = observer;
            Obs {}
        }
    }

    /// A handle attached to the observer registered with
    /// [`set_global_observer`], or a silent handle if none is installed.
    /// Captures the global at call time: components built before the
    /// install stay silent.
    pub fn global() -> Obs {
        #[cfg(not(feature = "obs-off"))]
        {
            Obs {
                inner: GLOBAL.get().cloned(),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            Obs {}
        }
    }

    /// True if emissions reach an observer.
    pub fn is_enabled(&self) -> bool {
        self.sink().is_some()
    }

    #[inline]
    fn sink(&self) -> Option<&Arc<dyn Observer>> {
        #[cfg(not(feature = "obs-off"))]
        {
            self.inner.as_ref()
        }
        #[cfg(feature = "obs-off")]
        {
            None
        }
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(sink) = self.sink() {
            sink.counter(name, delta);
        }
    }

    /// Reports a level for the named high-watermark gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(sink) = self.sink() {
            sink.gauge(name, value);
        }
    }

    /// Records one sample into the named histogram.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(sink) = self.sink() {
            sink.record(name, value);
        }
    }

    /// Emits a structured trace event keyed by simulated time.
    #[inline]
    pub fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        if let Some(sink) = self.sink() {
            sink.event(at, kind, fields);
        }
    }

    /// Opens a wall-clock phase span that reports to this handle's sink
    /// when dropped (see [`Observer::span`]).
    ///
    /// The returned guard measures wall time from this call to its drop.
    /// Call [`Span::sim_to`] at convenient points inside the phase to
    /// correlate the measurement with simulated-time progress. On a silent
    /// handle (and always under `obs-off`) the guard is inert: no clock is
    /// read and nothing is emitted.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        #[cfg(not(feature = "obs-off"))]
        {
            Span {
                state: self.inner.clone().map(|sink| SpanState {
                    sink,
                    name,
                    started: std::time::Instant::now(),
                    sim_first: None,
                    sim_last: None,
                }),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = name;
            Span {}
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(not(feature = "obs-off"))]
struct SpanState {
    sink: Arc<dyn Observer>,
    name: &'static str,
    started: std::time::Instant,
    sim_first: Option<SimTime>,
    sim_last: Option<SimTime>,
}

/// A wall-clock phase measurement opened by [`Obs::span`], reported via
/// [`Observer::span`] when dropped.
///
/// Wall time is measured between construction and drop; simulated-time
/// progress is whatever interval the [`sim_to`](Span::sim_to) calls
/// covered (zero if never called). Under the `obs-off` feature the guard
/// is a unit struct and every method compiles to nothing.
#[must_use = "a span measures until dropped; binding it to _ drops it immediately"]
#[derive(Default)]
pub struct Span {
    #[cfg(not(feature = "obs-off"))]
    state: Option<SpanState>,
}

impl Span {
    /// An inert span that never reports (what a silent handle returns).
    pub fn none() -> Span {
        Span::default()
    }

    /// Marks that the phase has advanced the simulated clock to `now`.
    ///
    /// The first call anchors the start of the covered interval, the last
    /// call its end; the reported progress is the difference. Calls are
    /// cheap (two field stores), so sampling loops can call this per
    /// iteration.
    #[inline]
    pub fn sim_to(&mut self, now: SimTime) {
        #[cfg(not(feature = "obs-off"))]
        if let Some(state) = self.state.as_mut() {
            if state.sim_first.is_none() {
                state.sim_first = Some(now);
            }
            state.sim_last = Some(now);
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = now;
        }
    }

    /// True if dropping this span will report to a sink.
    pub fn is_enabled(&self) -> bool {
        #[cfg(not(feature = "obs-off"))]
        {
            self.state.is_some()
        }
        #[cfg(feature = "obs-off")]
        {
            false
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        if let Some(state) = self.state.take() {
            let wall_nanos = u64::try_from(state.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let sim_minutes = match (state.sim_first, state.sim_last) {
                (Some(first), Some(last)) => last.saturating_since(first).as_minutes(),
                _ => 0,
            };
            state.sink.span(state.name, wall_nanos, sim_minutes);
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Mutex<Vec<String>>,
    }

    impl Observer for Recorder {
        fn counter(&self, name: &'static str, delta: u64) {
            self.seen.lock().unwrap().push(format!("c {name} {delta}"));
        }
        fn gauge(&self, name: &'static str, value: u64) {
            self.seen.lock().unwrap().push(format!("g {name} {value}"));
        }
        fn record(&self, name: &'static str, value: u64) {
            self.seen.lock().unwrap().push(format!("h {name} {value}"));
        }
        fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
            self.seen
                .lock()
                .unwrap()
                .push(format!("e {kind}@{} {fields:?}", at.as_minutes()));
        }
    }

    #[test]
    fn silent_handles_swallow_everything() {
        let obs = Obs::none();
        assert!(!obs.is_enabled());
        obs.counter("a", 1);
        obs.gauge("b", 2);
        obs.record("c", 3);
        obs.event(SimTime::ZERO, "d", &[("x", 4)]);
    }

    #[test]
    fn attached_handles_forward_in_order() {
        let recorder = Arc::new(Recorder::default());
        let obs = Obs::attached(recorder.clone());
        obs.counter("a", 1);
        obs.gauge("b", 2);
        obs.record("c", 3);
        obs.event(SimTime::from_minutes(7), "store", &[("victims", 2)]);

        let seen = recorder.seen.lock().unwrap();
        #[cfg(not(feature = "obs-off"))]
        {
            assert!(obs.is_enabled());
            assert_eq!(
                *seen,
                vec![
                    "c a 1".to_string(),
                    "g b 2".to_string(),
                    "h c 3".to_string(),
                    "e store@7 [(\"victims\", 2)]".to_string(),
                ]
            );
        }
        #[cfg(feature = "obs-off")]
        {
            assert!(!obs.is_enabled());
            assert!(seen.is_empty());
        }
    }

    #[test]
    fn clones_share_the_sink() {
        let recorder = Arc::new(Recorder::default());
        let obs = Obs::attached(recorder.clone());
        let copy = obs.clone();
        copy.counter("shared", 5);
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(recorder.seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn debug_shows_enablement_not_contents() {
        let text = format!("{:?}", Obs::none());
        assert!(text.contains("enabled: false"), "{text}");
    }

    #[test]
    fn spans_report_on_drop_with_sim_progress() {
        let recorder = Arc::new(Recorder::default());
        let obs = Obs::attached(recorder.clone());
        {
            let mut span = obs.span("phase.test");
            span.sim_to(SimTime::from_minutes(10));
            span.sim_to(SimTime::from_minutes(25));
        }
        let seen = recorder.seen.lock().unwrap();
        #[cfg(not(feature = "obs-off"))]
        {
            // The default Observer::span routes wall nanos into record();
            // the Recorder logs it as a histogram sample.
            assert_eq!(seen.len(), 1);
            assert!(seen[0].starts_with("h phase.test "), "{:?}", seen[0]);
        }
        #[cfg(feature = "obs-off")]
        assert!(seen.is_empty());
    }

    #[test]
    fn span_overrides_see_the_correlated_progress() {
        #[derive(Debug, Default)]
        struct SpanCatcher {
            seen: Mutex<Vec<(String, u64)>>,
        }
        impl Observer for SpanCatcher {
            fn counter(&self, _: &'static str, _: u64) {}
            fn gauge(&self, _: &'static str, _: u64) {}
            fn record(&self, _: &'static str, _: u64) {}
            fn event(&self, _: SimTime, _: &'static str, _: &[(&'static str, u64)]) {}
            fn span(&self, name: &'static str, _wall_nanos: u64, sim_minutes: u64) {
                self.seen.lock().unwrap().push((name.into(), sim_minutes));
            }
        }
        let catcher = Arc::new(SpanCatcher::default());
        let obs = Obs::attached(catcher.clone());
        {
            let mut span = obs.span("phase.caught");
            span.sim_to(SimTime::from_days(1));
            span.sim_to(SimTime::from_days(3));
        }
        {
            // No sim_to calls: progress reports as zero.
            let _span = obs.span("phase.idle");
        }
        let seen = catcher.seen.lock().unwrap();
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(
            *seen,
            vec![
                ("phase.caught".to_string(), 2 * 24 * 60),
                ("phase.idle".to_string(), 0),
            ]
        );
        #[cfg(feature = "obs-off")]
        assert!(seen.is_empty());
    }

    #[test]
    fn silent_spans_are_inert() {
        let mut span = Obs::none().span("phase.silent");
        assert!(!span.is_enabled());
        span.sim_to(SimTime::from_days(2));
        drop(span);
        let none = Span::none();
        assert!(!none.is_enabled());
        assert!(format!("{none:?}").contains("enabled: false"));
    }
}
