//! A minimal discrete-event simulation driver.

use crate::observe::Obs;
use crate::{EventQueue, SimTime};

/// Drives an [`EventQueue`] forward, tracking the current simulated clock.
///
/// The driver enforces the fundamental discrete-event invariant: time never
/// moves backwards. Handlers may schedule new events at or after the current
/// instant.
///
/// # Examples
///
/// ```
/// use sim_core::{Simulation, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// enum Event { Tick }
///
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::from_minutes(1), Event::Tick);
///
/// let mut ticks = 0;
/// sim.run(|sim, _at, Event::Tick| {
///     ticks += 1;
///     if ticks < 3 {
///         sim.schedule_after(SimDuration::MINUTE, Event::Tick);
///     }
/// });
/// assert_eq!(ticks, 3);
/// assert_eq!(sim.now(), SimTime::from_minutes(3));
/// ```
#[derive(Debug, Clone)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    obs: Obs,
}

impl<E> Simulation<E> {
    /// Creates a simulation starting at the epoch with no pending events.
    /// Observes into the global observer (if one is installed); use
    /// [`set_observer`](Simulation::set_observer) to redirect.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            obs: Obs::global(),
        }
    }

    /// Redirects this driver's instrumentation to `obs`.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock (causality violation).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {now}",
            now = self.now
        );
        self.queue.push(at, event);
        self.obs
            .gauge("sim.pending_events", self.queue.len() as u64);
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: crate::SimDuration, event: E) {
        let at = self.now + delay;
        self.queue.push(at, event);
        self.obs
            .gauge("sim.pending_events", self.queue.len() as u64);
    }

    /// Runs until the queue drains, invoking `handler` for each event.
    ///
    /// The handler receives the simulation (to schedule follow-up events),
    /// the event's scheduled time, and the event itself.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulation<E>, SimTime, E),
    {
        let mut span = self.obs.span("span.sim.run");
        while let Some((at, event)) = self.queue.pop() {
            self.now = at;
            span.sim_to(at);
            self.obs.counter("sim.events_dispatched", 1);
            handler(self, at, event);
        }
    }

    /// Runs events scheduled up to and including `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Simulation<E>, SimTime, E),
    {
        let mut span = self.obs.span("span.sim.run_until");
        while let Some((at, event)) = self.queue.pop_due(deadline) {
            self.now = at;
            span.sim_to(at);
            self.obs.counter("sim.events_dispatched", 1);
            handler(self, at, event);
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
    }

    #[test]
    fn run_drains_in_order_and_advances_clock() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_minutes(10), Ev::B);
        sim.schedule(SimTime::from_minutes(5), Ev::A);
        let mut seen = Vec::new();
        sim.run(|_, at, ev| seen.push((at.as_minutes(), ev)));
        assert_eq!(seen, vec![(5, Ev::A), (10, Ev::B)]);
        assert_eq!(sim.now(), SimTime::from_minutes(10));
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run(|sim, _, n| {
            count += 1;
            if n < 4 {
                sim.schedule_after(SimDuration::HOUR, n + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(sim.now(), SimTime::from_hours(4));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_minutes(5), Ev::A);
        sim.schedule(SimTime::from_minutes(50), Ev::B);
        let mut seen = 0;
        sim.run_until(SimTime::from_minutes(10), |_, _, _| seen += 1);
        assert_eq!(seen, 1);
        assert_eq!(sim.now(), SimTime::from_minutes(10));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_minutes(10), Ev::A);
        sim.run(|sim, _, _| {
            sim.schedule(SimTime::from_minutes(1), Ev::B);
        });
    }
}
