//! A fast, deterministic hasher for small fixed-size keys.
//!
//! The reclamation engine's hot paths key hash maps by object ids and
//! curve-shape fingerprints — tiny keys hashed millions of times per
//! simulated decade. `std`'s default SipHash is DoS-resistant but costs
//! tens of nanoseconds per key; these structures are never fed untrusted
//! input, so the workspace uses the much cheaper multiply-rotate hash
//! known as FxHash (originally from the Firefox/rustc codebases).
//!
//! The hash is fully deterministic (no per-process seed), which also keeps
//! map iteration order stable across runs — a property the repository's
//! byte-identical reproduction contract depends on wherever a map feeds an
//! ordered output.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A [`HashMap`] keyed by the [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A [`HashSet`] keyed by the [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: for each input word,
/// `state = (rotl(state, 5) ^ word) · SEED`.
///
/// # Examples
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use sim_core::fx::FxHasher;
///
/// let mut a = FxHasher::default();
/// 42u64.hash(&mut a);
/// let mut b = FxHasher::default();
/// 42u64.hash(&mut b);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_word(v as u64);
        self.add_word((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add_word(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add_word(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add_word(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add_word(v as usize as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of(value: impl Hash) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(7u64), hash_of(7u64));
        assert_eq!(hash_of("breakpoint"), hash_of("breakpoint"));
        assert_ne!(hash_of(7u64), hash_of(8u64));
    }

    #[test]
    fn byte_stream_equals_word_stream_for_whole_words() {
        let mut by_bytes = FxHasher::default();
        by_bytes.write(&42u64.to_le_bytes());
        let mut by_word = FxHasher::default();
        by_word.write_u64(42);
        assert_eq!(by_bytes.finish(), by_word.finish());
    }

    #[test]
    fn partial_tail_bytes_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghijk"); // 8 + 3 bytes
        let mut b = FxHasher::default();
        b.write(b"abcdefghijk");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"abcdefghij");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn maps_and_sets_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FxHashSet<u32> = FxHashSet::default();
        set.insert(9);
        assert!(set.contains(&9));
        assert_eq!(hash_of(0u64), 0, "empty-state hash of zero word is zero");
    }

    #[test]
    fn all_write_widths_fold_into_state() {
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_u128(5);
        h.write_usize(6);
        h.write_i8(-1);
        h.write_i16(-2);
        h.write_i32(-3);
        h.write_i64(-4);
        h.write_isize(-5);
        assert_ne!(h.finish(), 0);
    }
}
