//! Deterministic random number generation helpers.
//!
//! Every stochastic component in the reproduction draws from an explicitly
//! seeded [`StdRng`]. Experiments derive per-component streams from a single
//! experiment seed with [`derive_seed`], so adding a new consumer of
//! randomness never perturbs existing streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = sim_core::rng::seeded(42);
/// let mut b = sim_core::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from an experiment seed and a stream
/// label, using the SplitMix64 finalizer for avalanche.
///
/// Two distinct `(seed, stream)` pairs yield uncorrelated generators, so
/// e.g. the arrival-size stream and the placement-walk stream of one
/// experiment never share state.
///
/// # Examples
///
/// ```
/// let sizes = sim_core::rng::derive_seed(7, "sizes");
/// let walks = sim_core::rng::derive_seed(7, "walks");
/// assert_ne!(sizes, walks);
/// ```
pub fn derive_seed(seed: u64, stream: &str) -> u64 {
    let mut z = seed ^ fnv1a(stream.as_bytes());
    // SplitMix64 finalizer.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG for a named stream of an experiment seed.
pub fn stream(seed: u64, label: &str) -> StdRng {
    seeded(derive_seed(seed, label))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_reproducible() {
        let xs: Vec<u32> = (0..8).map(|_| 0).collect::<Vec<_>>();
        let mut a = seeded(123);
        let mut b = seeded(123);
        let va: Vec<u32> = xs.iter().map(|_| a.gen()).collect();
        let vb: Vec<u32> = xs.iter().map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_independent() {
        assert_ne!(derive_seed(9, "a"), derive_seed(9, "b"));
        assert_ne!(derive_seed(9, "a"), derive_seed(10, "a"));
        // Stable across calls.
        assert_eq!(derive_seed(9, "a"), derive_seed(9, "a"));
    }

    #[test]
    fn stream_rngs_are_reproducible() {
        let mut a = stream(5, "arrivals");
        let mut b = stream(5, "arrivals");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
