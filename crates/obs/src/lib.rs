//! Deterministic observability for the temporal-importance workspace.
//!
//! The paper's central idea is a *feedback signal* — creators watch storage
//! importance density to predict how long their annotations will survive
//! (§5.2). This crate gives the reproduction the same kind of live signal
//! about itself: counters and histograms over the engine's hot paths, a
//! structured event trace keyed by simulated time, and per-phase report
//! summaries for the `repro` binary — all without perturbing a single
//! simulated outcome.
//!
//! Three pieces:
//!
//! * [`MetricsRegistry`] — a thread-safe registry of named counters,
//!   high-watermark gauges, and log₂-bucketed magnitude histograms. It
//!   implements [`Observer`], so it plugs straight into any component
//!   built with an observer hook.
//! * [`TraceSink`] — captures [`Observer::event`]s as JSONL keyed by
//!   [`SimTime`] minutes. Values are integers only, so a trace is
//!   byte-identical across runs and across build profiles.
//! * [`Snapshot`] / [`Report`] — a point-in-time copy of the registry,
//!   subtractable for per-phase deltas and renderable as an aligned,
//!   deterministic text block.
//!
//! The emission side lives in [`sim_core::observe`]; compile it out with
//! the `obs-off` cargo feature (forwarded through every instrumented
//! crate) and instrumented code carries zero overhead.
//!
//! # Examples
//!
//! ```
//! use obs::MetricsRegistry;
//! use sim_core::Obs;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let obs = Obs::attached(registry.clone());
//! obs.counter("engine.stores", 3);
//! obs.record("engine.plan_victims", 2);
//!
//! let snapshot = registry.snapshot();
//! # #[cfg(not(feature = "obs-off"))]
//! assert_eq!(snapshot.counters["engine.stores"], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod registry;
mod report;
mod series;
mod stack;
mod trace;
pub mod tracefile;

pub use registry::{Histogram, MetricsRegistry};
pub use report::{HistogramSummary, Report, Snapshot, SpanSummary};
pub use series::SeriesRecorder;
pub use stack::ObsStack;
pub use trace::{Fanout, TraceSink};

use std::sync::Arc;

// Re-exported so downstream users get the whole observability surface from
// one crate: the hooks (sim-core) plus the sinks (here).
pub use sim_core::observe::{set_global_observer, Obs, Observer, Span};

/// Creates a [`MetricsRegistry`], installs it as the process-wide global
/// observer, and hands it back for snapshotting.
///
/// Returns `None` when the global slot is already taken (first install
/// wins, like `log::set_logger`) or when the `obs-off` feature compiled
/// observation out — callers can treat `None` as "no reports this run".
pub fn install_global_registry() -> Option<Arc<MetricsRegistry>> {
    let registry = Arc::new(MetricsRegistry::new());
    set_global_observer(registry.clone()).then_some(registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_returns_at_most_one_registry() {
        // The global slot is per-process, so this test exercises both the
        // first-install and already-taken paths in whatever order the
        // harness runs things.
        let first = install_global_registry();
        let second = install_global_registry();
        if cfg!(feature = "obs-off") {
            assert!(first.is_none());
        } else {
            assert!(first.is_some() || second.is_none());
        }
        assert!(second.is_none(), "second install must not win");
    }
}
