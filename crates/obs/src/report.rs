//! Point-in-time metric snapshots and renderable per-phase reports.

use std::collections::BTreeMap;
use std::fmt;

/// A compact copy of one histogram's aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (zero when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Bucket-resolution median.
    pub p50: u64,
    /// Bucket-resolution 99th percentile.
    pub p99: u64,
}

/// Aggregates for one named phase span: how many times the phase ran, the
/// total wall-clock time it consumed, and how much simulated time it
/// covered while doing so.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Spans reported under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans (saturating).
    pub wall_nanos: u64,
    /// Total simulated minutes those spans covered (saturating).
    pub sim_minutes: u64,
}

impl SpanSummary {
    /// Simulated minutes advanced per wall-clock millisecond — the
    /// "simulation speed" of the phase. Zero when no wall time was
    /// measured.
    pub fn sim_minutes_per_wall_ms(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.sim_minutes as f64 / (self.wall_nanos as f64 / 1e6)
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], suitable for diffing
/// against an earlier snapshot and rendering as a [`Report`].
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// High-watermark gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Trace-event counts by kind.
    pub events: BTreeMap<String, u64>,
    /// Phase-span aggregates by name.
    pub spans: BTreeMap<String, SpanSummary>,
}

impl Snapshot {
    /// The change since `baseline`: counters and event counts subtract;
    /// histogram counts and sums subtract while min/max/quantiles stay
    /// cumulative (bucket contents are not carried in a snapshot); gauges
    /// stay at their cumulative high watermark. Entries that did not move
    /// are dropped, so a phase report shows only what the phase touched.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let diff = |current: &BTreeMap<String, u64>, base: &BTreeMap<String, u64>| {
            current
                .iter()
                .filter_map(|(name, &value)| {
                    let moved = value - base.get(name).copied().unwrap_or(0);
                    (moved > 0).then(|| (name.clone(), moved))
                })
                .collect()
        };
        Snapshot {
            counters: diff(&self.counters, &baseline.counters),
            events: diff(&self.events, &baseline.events),
            gauges: self
                .gauges
                .iter()
                .filter(|(name, &value)| value > baseline.gauges.get(*name).copied().unwrap_or(0))
                .map(|(name, &value)| (name.clone(), value))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(name, summary)| {
                    let base = baseline.histograms.get(name);
                    let moved = summary.count - base.map_or(0, |b| b.count);
                    (moved > 0).then(|| {
                        let mut phase = *summary;
                        phase.count = moved;
                        phase.sum -= base.map_or(0, |b| b.sum);
                        (name.clone(), phase)
                    })
                })
                .collect(),
            spans: self
                .spans
                .iter()
                .filter_map(|(name, summary)| {
                    let base = baseline.spans.get(name).copied().unwrap_or_default();
                    let moved = summary.count - base.count;
                    (moved > 0).then(|| {
                        (
                            name.clone(),
                            SpanSummary {
                                count: moved,
                                wall_nanos: summary.wall_nanos - base.wall_nanos,
                                sim_minutes: summary.sim_minutes - base.sim_minutes,
                            },
                        )
                    })
                })
                .collect(),
        }
    }

    /// True if nothing was observed (or nothing moved, for a delta).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.spans.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are mangled to the Prometheus alphabet (`.` and `-`
    /// become `_`) and prefixed with `tempimp_`. Counters render as
    /// `counter`, gauges as `gauge`, histograms as `summary` (bucket-
    /// resolution p50/p99 plus `_sum`/`_count`), trace-event totals as one
    /// labeled counter family, and spans as paired wall-nanos/sim-minutes
    /// counter families. Iteration order is the snapshot's `BTreeMap`
    /// order, so the text is deterministic for a given snapshot.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {value}");
        }
        for (name, value) in &self.gauges {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE {metric} gauge");
            let _ = writeln!(out, "{metric} {value}");
        }
        for (name, h) in &self.histograms {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE {metric} summary");
            let _ = writeln!(out, "{metric}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{metric}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{metric}_sum {}", h.sum);
            let _ = writeln!(out, "{metric}_count {}", h.count);
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "# TYPE tempimp_events_total counter");
            for (kind, value) in &self.events {
                let _ = writeln!(out, "tempimp_events_total{{kind=\"{kind}\"}} {value}");
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "# TYPE tempimp_span_wall_nanos_total counter");
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "tempimp_span_wall_nanos_total{{span=\"{name}\"}} {}",
                    s.wall_nanos
                );
            }
            let _ = writeln!(out, "# TYPE tempimp_span_sim_minutes_total counter");
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "tempimp_span_sim_minutes_total{{span=\"{name}\"}} {}",
                    s.sim_minutes
                );
            }
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus metric-name alphabet.
pub(crate) fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("tempimp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A titled snapshot rendered as an aligned, deterministic text block —
/// what `repro` prints to stderr after each experiment phase.
///
/// # Examples
///
/// ```
/// use obs::{MetricsRegistry, Report};
/// use sim_core::observe::Observer;
///
/// let registry = MetricsRegistry::new();
/// registry.counter("engine.stores", 12);
/// let report = Report::new("fig2", registry.snapshot());
/// let text = report.to_string();
/// assert!(text.contains("obs[fig2]"));
/// assert!(text.contains("engine.stores"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    title: String,
    snapshot: Snapshot,
}

impl Report {
    /// A report titled `title` over `snapshot` (typically a phase delta).
    pub fn new(title: impl Into<String>, snapshot: Snapshot) -> Self {
        Report {
            title: title.into(),
            snapshot,
        }
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.snapshot.is_empty() {
            return writeln!(f, "obs[{}] nothing observed", self.title);
        }
        writeln!(f, "obs[{}]", self.title)?;
        for (name, value) in &self.snapshot.counters {
            writeln!(f, "  counter    {name:<34} {value:>14}")?;
        }
        for (name, value) in &self.snapshot.gauges {
            writeln!(f, "  gauge(max) {name:<34} {value:>14}")?;
        }
        for (name, h) in &self.snapshot.histograms {
            writeln!(
                f,
                "  histogram  {name:<34} {count:>14}  sum {sum}  min {min}  p50 {p50}  p99 {p99}  max {max}",
                count = h.count,
                sum = h.sum,
                min = h.min,
                p50 = h.p50,
                p99 = h.p99,
                max = h.max,
            )?;
        }
        for (name, value) in &self.snapshot.events {
            writeln!(f, "  events     {name:<34} {value:>14}")?;
        }
        for (name, s) in &self.snapshot.spans {
            writeln!(
                f,
                "  span       {name:<34} {count:>14}  wall_ms {wall}  sim_min {sim}",
                count = s.count,
                wall = s.wall_nanos / 1_000_000,
                sim = s.sim_minutes,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use sim_core::observe::Observer;
    use sim_core::SimTime;

    #[test]
    fn delta_keeps_only_what_moved() {
        let registry = MetricsRegistry::new();
        registry.counter("stable", 5);
        registry.counter("moving", 1);
        registry.gauge("level", 10);
        registry.record("sizes", 4);
        registry.event(SimTime::ZERO, "tick", &[]);
        let before = registry.snapshot();

        registry.counter("moving", 2);
        registry.gauge("level", 3); // below the watermark: no movement
        registry.record("sizes", 8);
        registry.event(SimTime::ZERO, "tick", &[]);
        let delta = registry.snapshot().delta(&before);

        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.counters["moving"], 2);
        assert!(delta.gauges.is_empty(), "unmoved watermark dropped");
        assert_eq!(delta.events["tick"], 1);
        let h = delta.histograms["sizes"];
        assert_eq!((h.count, h.sum), (1, 8));
        assert_eq!((h.min, h.max), (4, 8), "min/max stay cumulative");
        assert!(!delta.is_empty());
        assert!(delta.delta(&delta).is_empty());
    }

    #[test]
    fn reports_render_deterministically() {
        let registry = MetricsRegistry::new();
        registry.counter("b.second", 2);
        registry.counter("a.first", 1);
        registry.gauge("depth", 9);
        registry.record("hops", 3);
        let report = Report::new("phase", registry.snapshot());
        let text = report.to_string();
        let again = Report::new("phase", registry.snapshot()).to_string();
        assert_eq!(text, again);
        let a = text.find("a.first").unwrap();
        let b = text.find("b.second").unwrap();
        assert!(a < b, "counters render in name order:\n{text}");
        assert!(report.snapshot().counters.contains_key("a.first"));
    }

    #[test]
    fn empty_reports_say_so() {
        let report = Report::new("idle", Snapshot::default());
        assert_eq!(report.to_string(), "obs[idle] nothing observed\n");
    }

    #[test]
    fn delta_survives_u64_edge_values() {
        let registry = MetricsRegistry::new();
        // Counter pinned at the top of the range: the baseline diff is an
        // exact subtraction, not a wrap.
        registry.counter("edge.max", u64::MAX - 1);
        registry.record("edge.h", 0);
        registry.record("edge.h", u64::MAX);
        let before = registry.snapshot();

        registry.counter("edge.max", 1);
        registry.record("edge.h", u64::MAX); // sum saturates at u64::MAX
        registry.record("edge.h", 1);
        let after = registry.snapshot();
        let delta = after.delta(&before);

        assert_eq!(delta.counters["edge.max"], 1);
        let h = delta.histograms["edge.h"];
        assert_eq!(h.count, 2);
        // Both sums saturated at u64::MAX, so the phase sum collapses to
        // zero — saturation trades accuracy at the extreme for no panic.
        assert_eq!(h.sum, 0);
        assert_eq!((h.min, h.max), (0, u64::MAX), "min/max stay cumulative");

        // Zero- and one-valued metrics at the other edge.
        let registry = MetricsRegistry::new();
        registry.counter("edge.zero", 0);
        registry.gauge("edge.gauge", 0);
        let before = registry.snapshot();
        registry.counter("edge.zero", 1);
        registry.gauge("edge.gauge", 1);
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counters["edge.zero"], 1);
        assert_eq!(delta.gauges["edge.gauge"], 1);
        // An all-zero phase produces an empty delta even though the names
        // exist in both snapshots.
        let idle = registry.snapshot().delta(&registry.snapshot());
        assert!(idle.is_empty());
    }

    #[test]
    fn delta_histograms_at_bucket_edges() {
        let registry = MetricsRegistry::new();
        for edge in [1u64, 2, 4, (1 << 20) - 1, 1 << 20] {
            registry.record("edges", edge);
        }
        let before = registry.snapshot();
        registry.record("edges", 3);
        let delta = registry.snapshot().delta(&before);
        let h = delta.histograms["edges"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 3);
    }

    #[test]
    fn span_deltas_subtract_all_three_aggregates() {
        let registry = MetricsRegistry::new();
        registry.span("phase.a", 1_000, 60);
        let before = registry.snapshot();
        registry.span("phase.a", 2_000, 120);
        registry.span("phase.b", 500, 0);
        let delta = registry.snapshot().delta(&before);

        let a = delta.spans["phase.a"];
        assert_eq!((a.count, a.wall_nanos, a.sim_minutes), (1, 2_000, 120));
        let b = delta.spans["phase.b"];
        assert_eq!((b.count, b.wall_nanos, b.sim_minutes), (1, 500, 0));
        assert!(!delta.is_empty());
        assert!(delta.delta(&delta).is_empty());
        // Spans double-report into the histogram under the same name.
        assert_eq!(delta.histograms["phase.a"].count, 1);
        let text = Report::new("spans", delta).to_string();
        assert!(text.contains("span       phase.a"), "{text}");
        assert!(text.contains("sim_min 120"), "{text}");
    }

    #[test]
    fn span_summary_speed_is_well_defined() {
        let zero = SpanSummary::default();
        assert_eq!(zero.sim_minutes_per_wall_ms(), 0.0);
        let s = SpanSummary {
            count: 1,
            wall_nanos: 2_000_000, // 2 ms
            sim_minutes: 10,
        };
        assert!((s.sim_minutes_per_wall_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_mangled() {
        let registry = MetricsRegistry::new();
        registry.counter("engine.stores", 3);
        registry.gauge("engine.breakpoint_queue", 7);
        registry.record("engine.plan_victims", 2);
        registry.event(SimTime::ZERO, "engine.store", &[("id", 1)]);
        registry.span("span.experiment.fig2", 5_000, 60);
        let snapshot = registry.snapshot();
        let text = snapshot.render_prometheus();
        assert_eq!(text, snapshot.render_prometheus());

        assert!(
            text.contains("# TYPE tempimp_engine_stores counter"),
            "{text}"
        );
        assert!(text.contains("tempimp_engine_stores 3"), "{text}");
        assert!(text.contains("# TYPE tempimp_engine_breakpoint_queue gauge"));
        assert!(text.contains("tempimp_engine_plan_victims{quantile=\"0.5\"} 2"));
        assert!(text.contains("tempimp_engine_plan_victims_count 1"));
        assert!(text.contains("tempimp_events_total{kind=\"engine.store\"} 1"));
        assert!(text.contains("tempimp_span_wall_nanos_total{span=\"span.experiment.fig2\"} 5000"));
        assert!(text.contains("tempimp_span_sim_minutes_total{span=\"span.experiment.fig2\"} 60"));
        // Every non-comment line is `name{labels} value` over the
        // restricted alphabet.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in {line:?}"
            );
        }
        assert_eq!(Snapshot::default().render_prometheus(), "");
    }
}
