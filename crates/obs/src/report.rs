//! Point-in-time metric snapshots and renderable per-phase reports.

use std::collections::BTreeMap;
use std::fmt;

/// A compact copy of one histogram's aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (zero when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Bucket-resolution median.
    pub p50: u64,
    /// Bucket-resolution 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of a [`MetricsRegistry`], suitable for diffing
/// against an earlier snapshot and rendering as a [`Report`].
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// High-watermark gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Trace-event counts by kind.
    pub events: BTreeMap<String, u64>,
}

impl Snapshot {
    /// The change since `baseline`: counters and event counts subtract;
    /// histogram counts and sums subtract while min/max/quantiles stay
    /// cumulative (bucket contents are not carried in a snapshot); gauges
    /// stay at their cumulative high watermark. Entries that did not move
    /// are dropped, so a phase report shows only what the phase touched.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let diff = |current: &BTreeMap<String, u64>, base: &BTreeMap<String, u64>| {
            current
                .iter()
                .filter_map(|(name, &value)| {
                    let moved = value - base.get(name).copied().unwrap_or(0);
                    (moved > 0).then(|| (name.clone(), moved))
                })
                .collect()
        };
        Snapshot {
            counters: diff(&self.counters, &baseline.counters),
            events: diff(&self.events, &baseline.events),
            gauges: self
                .gauges
                .iter()
                .filter(|(name, &value)| value > baseline.gauges.get(*name).copied().unwrap_or(0))
                .map(|(name, &value)| (name.clone(), value))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(name, summary)| {
                    let base = baseline.histograms.get(name);
                    let moved = summary.count - base.map_or(0, |b| b.count);
                    (moved > 0).then(|| {
                        let mut phase = *summary;
                        phase.count = moved;
                        phase.sum -= base.map_or(0, |b| b.sum);
                        (name.clone(), phase)
                    })
                })
                .collect(),
        }
    }

    /// True if nothing was observed (or nothing moved, for a delta).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }
}

/// A titled snapshot rendered as an aligned, deterministic text block —
/// what `repro` prints to stderr after each experiment phase.
///
/// # Examples
///
/// ```
/// use obs::{MetricsRegistry, Report};
/// use sim_core::observe::Observer;
///
/// let registry = MetricsRegistry::new();
/// registry.counter("engine.stores", 12);
/// let report = Report::new("fig2", registry.snapshot());
/// let text = report.to_string();
/// assert!(text.contains("obs[fig2]"));
/// assert!(text.contains("engine.stores"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    title: String,
    snapshot: Snapshot,
}

impl Report {
    /// A report titled `title` over `snapshot` (typically a phase delta).
    pub fn new(title: impl Into<String>, snapshot: Snapshot) -> Self {
        Report {
            title: title.into(),
            snapshot,
        }
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.snapshot.is_empty() {
            return writeln!(f, "obs[{}] nothing observed", self.title);
        }
        writeln!(f, "obs[{}]", self.title)?;
        for (name, value) in &self.snapshot.counters {
            writeln!(f, "  counter    {name:<34} {value:>14}")?;
        }
        for (name, value) in &self.snapshot.gauges {
            writeln!(f, "  gauge(max) {name:<34} {value:>14}")?;
        }
        for (name, h) in &self.snapshot.histograms {
            writeln!(
                f,
                "  histogram  {name:<34} {count:>14}  sum {sum}  min {min}  p50 {p50}  p99 {p99}  max {max}",
                count = h.count,
                sum = h.sum,
                min = h.min,
                p50 = h.p50,
                p99 = h.p99,
                max = h.max,
            )?;
        }
        for (name, value) in &self.snapshot.events {
            writeln!(f, "  events     {name:<34} {value:>14}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use sim_core::observe::Observer;
    use sim_core::SimTime;

    #[test]
    fn delta_keeps_only_what_moved() {
        let registry = MetricsRegistry::new();
        registry.counter("stable", 5);
        registry.counter("moving", 1);
        registry.gauge("level", 10);
        registry.record("sizes", 4);
        registry.event(SimTime::ZERO, "tick", &[]);
        let before = registry.snapshot();

        registry.counter("moving", 2);
        registry.gauge("level", 3); // below the watermark: no movement
        registry.record("sizes", 8);
        registry.event(SimTime::ZERO, "tick", &[]);
        let delta = registry.snapshot().delta(&before);

        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.counters["moving"], 2);
        assert!(delta.gauges.is_empty(), "unmoved watermark dropped");
        assert_eq!(delta.events["tick"], 1);
        let h = delta.histograms["sizes"];
        assert_eq!((h.count, h.sum), (1, 8));
        assert_eq!((h.min, h.max), (4, 8), "min/max stay cumulative");
        assert!(!delta.is_empty());
        assert!(delta.delta(&delta).is_empty());
    }

    #[test]
    fn reports_render_deterministically() {
        let registry = MetricsRegistry::new();
        registry.counter("b.second", 2);
        registry.counter("a.first", 1);
        registry.gauge("depth", 9);
        registry.record("hops", 3);
        let report = Report::new("phase", registry.snapshot());
        let text = report.to_string();
        let again = Report::new("phase", registry.snapshot()).to_string();
        assert_eq!(text, again);
        let a = text.find("a.first").unwrap();
        let b = text.find("b.second").unwrap();
        assert!(a < b, "counters render in name order:\n{text}");
        assert!(report.snapshot().counters.contains_key("a.first"));
    }

    #[test]
    fn empty_reports_say_so() {
        let report = Report::new("idle", Snapshot::default());
        assert_eq!(report.to_string(), "obs[idle] nothing observed\n");
    }
}
