//! The single-lock composite observer.
//!
//! A full observability setup — totals, time series, and an event trace —
//! built from the individual sinks costs one mutex acquisition *per sink
//! per signal*: a [`Fanout`] over [`MetricsRegistry`], [`SeriesRecorder`],
//! and [`TraceSink`] takes three locks for every emission, plus a dynamic
//! dispatch each. On the engine's store path (~6 signals per store) that
//! synchronization overhead alone dwarfs the 20% instrumentation budget
//! the CI gate enforces.
//!
//! [`ObsStack`] embeds the same three cores behind **one** mutex: each
//! signal takes a single uncontended lock and updates all three roles in
//! place. The read-side APIs of the individual sinks are mirrored here, so
//! swapping a `Fanout` for an `ObsStack` changes only construction.
//!
//! [`Fanout`]: crate::Fanout
//! [`MetricsRegistry`]: crate::MetricsRegistry
//! [`SeriesRecorder`]: crate::SeriesRecorder
//! [`TraceSink`]: crate::TraceSink

use std::sync::{Mutex, MutexGuard, PoisonError};

use sim_core::observe::Observer;
use sim_core::{SimDuration, SimTime};

use crate::registry::RegistryCore;
use crate::report::{Snapshot, SpanSummary};
use crate::series::SeriesCore;
use crate::trace::TraceCore;
use crate::Histogram;

#[derive(Debug)]
struct StackCore {
    registry: RegistryCore,
    series: SeriesCore,
    trace: TraceCore,
}

/// Registry + series recorder + trace sink behind a single lock.
///
/// Implements [`Observer`], so it attaches anywhere the individual sinks
/// do; every emission updates all three roles with one mutex acquisition.
/// The instrumented benchmarks use it as the "fully observed"
/// configuration the obs-overhead CI gate measures.
///
/// # Examples
///
/// ```
/// use obs::ObsStack;
/// use sim_core::{Obs, SimDuration, SimTime};
/// use std::sync::Arc;
///
/// let stack = Arc::new(ObsStack::new(SimDuration::DAY));
/// stack.track_counter("engine.stores");
/// let obs = Obs::attached(stack.clone());
/// obs.counter("engine.stores", 2);
/// obs.event(SimTime::from_minutes(5), "engine.store", &[("id", 7)]);
/// # #[cfg(not(feature = "obs-off"))]
/// assert_eq!(stack.counter_value("engine.stores"), 2);
/// # #[cfg(not(feature = "obs-off"))]
/// assert_eq!(
///     stack.to_jsonl(),
///     "{\"t\":5,\"kind\":\"engine.store\",\"fields\":{\"id\":7}}\n"
/// );
/// ```
#[derive(Debug)]
pub struct ObsStack {
    inner: Mutex<StackCore>,
    cadence: SimDuration,
}

fn locked(mutex: &Mutex<StackCore>) -> MutexGuard<'_, StackCore> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ObsStack {
    /// A stack whose series role samples scalars every `cadence`, with the
    /// default per-series capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn new(cadence: SimDuration) -> Self {
        ObsStack::with_capacity(cadence, 1024)
    }

    /// A stack with an explicit per-series point capacity (minimum 4).
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn with_capacity(cadence: SimDuration, capacity: usize) -> Self {
        ObsStack {
            inner: Mutex::new(StackCore {
                registry: RegistryCore::default(),
                series: SeriesCore::new(cadence, capacity),
                trace: TraceCore::default(),
            }),
            cadence,
        }
    }

    /// The series role's scalar sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Registers a counter for time-series sampling (see
    /// [`SeriesRecorder::track_counter`](crate::SeriesRecorder::track_counter)).
    pub fn track_counter(&self, name: &'static str) {
        locked(&self.inner).series.track_counter(name);
    }

    /// Registers a gauge for time-series sampling (see
    /// [`SeriesRecorder::track_gauge`](crate::SeriesRecorder::track_gauge)).
    pub fn track_gauge(&self, name: &'static str) {
        locked(&self.inner).series.track_gauge(name);
    }

    /// Registers an event kind for time-series capture (see
    /// [`SeriesRecorder::track_events`](crate::SeriesRecorder::track_events)).
    pub fn track_events(
        &self,
        kind: &'static str,
        value_field: &'static str,
        label_fields: &[&'static str],
    ) {
        locked(&self.inner)
            .series
            .track_events(kind, value_field, label_fields);
    }

    /// Advances the series sampling clock to `at` (see
    /// [`SeriesRecorder::advance_to`](crate::SeriesRecorder::advance_to)).
    pub fn advance_to(&self, at: SimTime) {
        locked(&self.inner).series.advance_to(at);
    }

    /// The registry role's current counter total (0 if never written).
    pub fn counter_value(&self, name: &str) -> u64 {
        locked(&self.inner).registry.counter_value(name)
    }

    /// The registry role's current gauge high watermark (0 if never
    /// written).
    pub fn gauge_value(&self, name: &str) -> u64 {
        locked(&self.inner).registry.gauge_value(name)
    }

    /// A copy of the registry role's histogram for `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        locked(&self.inner).registry.histogram(name)
    }

    /// How many events of `kind` the registry role has counted.
    pub fn event_count(&self, kind: &str) -> u64 {
        locked(&self.inner).registry.event_count(kind)
    }

    /// The registry role's accumulated span totals for `name`.
    pub fn span_summary(&self, name: &str) -> SpanSummary {
        locked(&self.inner).registry.span_summary(name)
    }

    /// A point-in-time [`Snapshot`] of the registry role.
    pub fn snapshot(&self) -> Snapshot {
        locked(&self.inner).registry.snapshot()
    }

    /// Names of every captured series, in lexicographic order.
    pub fn series_names(&self) -> Vec<String> {
        locked(&self.inner).series.names()
    }

    /// The captured points of a series, time-ordered.
    pub fn series(&self, name: &str) -> Option<Vec<(SimTime, u64)>> {
        locked(&self.inner).series.samples(name)
    }

    /// The captured trace as one JSONL string (same byte format as
    /// [`TraceSink::to_jsonl`](crate::TraceSink::to_jsonl)).
    pub fn to_jsonl(&self) -> String {
        locked(&self.inner).trace.render()
    }

    /// Drains the captured trace, returning it and leaving the stack's
    /// trace role empty.
    pub fn take_jsonl(&self) -> String {
        locked(&self.inner).trace.drain()
    }

    /// Number of trace events captured.
    pub fn trace_len(&self) -> usize {
        locked(&self.inner).trace.len()
    }

    /// Bounds the trace role to a flight-recorder window of at most
    /// `max_events` (minimum 1): when the window fills it is dropped and
    /// capture restarts in the same buffers, so arbitrarily long
    /// instrumented runs never grow the trace past the window. Reads
    /// ([`to_jsonl`], [`take_jsonl`]) see the current window. The default
    /// is unbounded, matching [`TraceSink`].
    ///
    /// [`to_jsonl`]: ObsStack::to_jsonl
    /// [`take_jsonl`]: ObsStack::take_jsonl
    /// [`TraceSink`]: crate::TraceSink
    pub fn limit_trace(&self, max_events: usize) {
        locked(&self.inner).trace.set_limit(max_events);
    }
}

impl Observer for ObsStack {
    fn counter(&self, name: &'static str, delta: u64) {
        let mut core = locked(&self.inner);
        core.registry.counter(name, delta);
        core.series.counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        let mut core = locked(&self.inner);
        core.registry.gauge(name, value);
        core.series.gauge(name, value);
    }

    fn record(&self, name: &'static str, value: u64) {
        locked(&self.inner).registry.record(name, value);
    }

    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        let mut core = locked(&self.inner);
        core.registry.event(kind);
        core.series.event(at, kind, fields);
        core.trace.push(at, kind, fields);
    }

    fn span(&self, name: &'static str, wall_nanos: u64, sim_minutes: u64) {
        locked(&self.inner)
            .registry
            .span(name, wall_nanos, sim_minutes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fanout, MetricsRegistry, SeriesRecorder, TraceSink};
    use std::sync::Arc;

    /// Feed identical emission streams to an ObsStack and to a Fanout over
    /// the three individual sinks; every read-side view must agree.
    #[test]
    fn stack_matches_a_fanout_of_the_individual_sinks() {
        let stack = ObsStack::new(SimDuration::from_minutes(10));
        let registry = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(SeriesRecorder::new(SimDuration::from_minutes(10)));
        let trace = Arc::new(TraceSink::new());
        let fanout = Fanout::new(vec![registry.clone(), recorder.clone(), trace.clone()]);

        stack.track_counter("c");
        recorder.track_counter("c");
        stack.track_events("e", "v", &[]);
        recorder.track_events("e", "v", &[]);

        for observer in [&stack as &dyn Observer, &fanout as &dyn Observer] {
            observer.counter("c", 3);
            observer.gauge("g", 9);
            observer.record("h", 4);
            observer.event(SimTime::from_minutes(25), "e", &[("v", 7)]);
            observer.span("s", 1_000, 5);
        }
        stack.advance_to(SimTime::from_minutes(30));
        recorder.advance_to(SimTime::from_minutes(30));

        assert_eq!(stack.counter_value("c"), registry.counter_value("c"));
        assert_eq!(stack.gauge_value("g"), registry.gauge_value("g"));
        assert_eq!(
            stack.histogram("h").map(|h| h.count()),
            registry.histogram("h").map(|h| h.count())
        );
        assert_eq!(stack.event_count("e"), registry.event_count("e"));
        assert_eq!(
            stack.span_summary("s").sim_minutes,
            registry.span_summary("s").sim_minutes
        );
        assert_eq!(stack.snapshot(), registry.snapshot());
        assert_eq!(stack.series_names(), recorder.names());
        assert_eq!(stack.series("c"), recorder.series("c"));
        assert_eq!(stack.series("e.v"), recorder.series("e.v"));
        assert_eq!(stack.to_jsonl(), trace.to_jsonl());
        assert_eq!(stack.trace_len(), trace.len());
    }

    #[test]
    fn trace_role_drains_like_a_sink() {
        let stack = ObsStack::new(SimDuration::DAY);
        stack.event(SimTime::ZERO, "a", &[]);
        assert_eq!(stack.trace_len(), 1);
        assert_eq!(
            stack.take_jsonl(),
            "{\"t\":0,\"kind\":\"a\",\"fields\":{}}\n"
        );
        assert_eq!(stack.trace_len(), 0);
        assert_eq!(stack.take_jsonl(), "");
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_cadence_is_rejected() {
        let _ = ObsStack::new(SimDuration::from_minutes(0));
    }

    #[test]
    fn flight_recorder_window_wraps_without_losing_totals() {
        let stack = ObsStack::new(SimDuration::DAY);
        stack.limit_trace(4);
        for i in 0..10 {
            stack.event(SimTime::from_minutes(i), "e", &[("i", i)]);
        }
        // The window restarts each time it fills (0..4, 4..8), so only
        // the live window survives: events 8 and 9.
        assert_eq!(stack.trace_len(), 2);
        assert_eq!(
            stack.to_jsonl(),
            "{\"t\":8,\"kind\":\"e\",\"fields\":{\"i\":8}}\n\
             {\"t\":9,\"kind\":\"e\",\"fields\":{\"i\":9}}\n"
        );
        // Aggregates are unaffected by the trace window.
        assert_eq!(stack.event_count("e"), 10);
    }
}
