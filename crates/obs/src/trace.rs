//! Structured event traces keyed by simulated time, plus observer fanout.

use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

use sim_core::observe::Observer;
use sim_core::SimTime;

/// Captures [`Observer::event`]s as JSON Lines keyed by [`SimTime`].
///
/// Each event becomes one line of the form
///
/// ```text
/// {"t":17,"kind":"engine.store","fields":{"id":42,"victims":1}}
/// ```
///
/// where `t` is the simulated instant in minutes. Every value is an
/// integer — the vendored `serde_json` is typed-only and floats format
/// differently across build profiles, so the sink renders by hand and the
/// byte stream is identical across runs, debug/release, and platforms, as
/// long as events arrive in a deterministic order (i.e. from one thread;
/// counters/gauges/histograms are the multi-thread-safe signals).
///
/// # Examples
///
/// ```
/// use obs::TraceSink;
/// use sim_core::{Obs, SimTime};
/// use std::sync::Arc;
///
/// let sink = Arc::new(TraceSink::new());
/// let obs = Obs::attached(sink.clone());
/// obs.event(SimTime::from_minutes(5), "engine.store", &[("id", 7)]);
/// # #[cfg(not(feature = "obs-off"))]
/// assert_eq!(
///     sink.to_jsonl(),
///     "{\"t\":5,\"kind\":\"engine.store\",\"fields\":{\"id\":7}}\n"
/// );
/// ```
#[derive(Debug, Default)]
pub struct TraceSink {
    lines: Mutex<TraceCore>,
}

/// The lock-free body of a [`TraceSink`]: capture is a structured append
/// (two `Vec` pushes — no formatting, no per-event allocation), and the
/// JSONL text is rendered on demand. [`TraceSink`] wraps it in a mutex;
/// the single-lock composite stack embeds it directly.
///
/// By default capture is unbounded (full-fidelity traces back the golden
/// file). [`set_limit`](TraceCore::set_limit) turns the core into a
/// flight recorder: when the window fills, it is dropped and capture
/// restarts in the same buffers — steady state never allocates, so
/// arbitrarily long instrumented runs keep a flat per-event cost.
#[derive(Debug)]
pub(crate) struct TraceCore {
    /// One `(t_minutes, kind, fields offset, fields len)` row per event.
    events: Vec<(u64, &'static str, usize, usize)>,
    /// Flat field storage shared by all captured events.
    fields: Vec<(&'static str, u64)>,
    /// Maximum retained events before the window restarts.
    limit: usize,
}

impl Default for TraceCore {
    fn default() -> Self {
        TraceCore {
            events: Vec::new(),
            fields: Vec::new(),
            limit: usize::MAX,
        }
    }
}

impl TraceCore {
    pub(crate) fn push(&mut self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        debug_assert!(
            !kind.contains(['"', '\\']) && fields.iter().all(|(k, _)| !k.contains(['"', '\\'])),
            "event kinds and field names are static identifiers; escaping is not supported"
        );
        if self.events.len() >= self.limit {
            // Flight-recorder wraparound: drop the filled window but keep
            // the buffer capacity, so the push below never reallocates.
            self.events.clear();
            self.fields.clear();
        }
        let start = self.fields.len();
        self.fields.extend_from_slice(fields);
        self.events
            .push((at.as_minutes(), kind, start, fields.len()));
    }

    pub(crate) fn set_limit(&mut self, limit: usize) {
        self.limit = limit.max(1);
    }

    pub(crate) fn render(&self) -> String {
        let mut text = String::with_capacity(self.events.len() * 48);
        for &(t, kind, start, len) in &self.events {
            write!(text, "{{\"t\":{t},\"kind\":\"{kind}\",\"fields\":{{").expect("write to String");
            for (i, (key, value)) in self.fields[start..start + len].iter().enumerate() {
                let comma = if i == 0 { "" } else { "," };
                write!(text, "{comma}\"{key}\":{value}").expect("write to String");
            }
            text.push_str("}}\n");
        }
        text
    }

    pub(crate) fn drain(&mut self) -> String {
        let text = self.render();
        self.events.clear();
        self.fields.clear();
        text
    }

    pub(crate) fn len(&self) -> usize {
        self.events.len()
    }
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// The captured trace as one JSONL string (rendered on demand; capture
    /// itself never formats).
    pub fn to_jsonl(&self) -> String {
        self.buf().render()
    }

    /// Drains the captured trace, returning it and leaving the sink empty.
    ///
    /// Long-running instrumented loops (benchmarks, the `repro` binary)
    /// use this to bound the sink's memory: take the accumulated events,
    /// write them out, and keep tracing into the same sink.
    pub fn take_jsonl(&self) -> String {
        self.buf().drain()
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.buf().len()
    }

    /// True if no events were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn buf(&self) -> std::sync::MutexGuard<'_, TraceCore> {
        self.lines.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Observer for TraceSink {
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: u64) {}
    fn record(&self, _name: &'static str, _value: u64) {}

    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        self.buf().push(at, kind, fields);
    }
}

/// Forwards every emission to each of a list of observers — e.g. a
/// [`MetricsRegistry`] for totals *and* a [`TraceSink`] for the event
/// stream, behind one handle.
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
pub struct Fanout {
    sinks: Vec<Arc<dyn Observer>>,
}

impl Fanout {
    /// A fanout over `sinks`, forwarded to in order.
    pub fn new(sinks: Vec<Arc<dyn Observer>>) -> Self {
        Fanout { sinks }
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Observer for Fanout {
    fn counter(&self, name: &'static str, delta: u64) {
        for sink in &self.sinks {
            sink.counter(name, delta);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        for sink in &self.sinks {
            sink.gauge(name, value);
        }
    }

    fn record(&self, name: &'static str, value: u64) {
        for sink in &self.sinks {
            sink.record(name, value);
        }
    }

    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        for sink in &self.sinks {
            sink.event(at, kind, fields);
        }
    }

    fn span(&self, name: &'static str, wall_nanos: u64, sim_minutes: u64) {
        for sink in &self.sinks {
            sink.span(name, wall_nanos, sim_minutes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn events_render_as_stable_jsonl() {
        let sink = TraceSink::new();
        sink.event(SimTime::from_minutes(3), "a", &[]);
        sink.event(SimTime::from_days(1), "b", &[("x", 1), ("y", 2)]);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(
            sink.to_jsonl(),
            "{\"t\":3,\"kind\":\"a\",\"fields\":{}}\n\
             {\"t\":1440,\"kind\":\"b\",\"fields\":{\"x\":1,\"y\":2}}\n"
        );
    }

    #[test]
    fn non_event_signals_are_ignored() {
        let sink = TraceSink::new();
        sink.counter("c", 1);
        sink.gauge("g", 2);
        sink.record("h", 3);
        assert!(sink.is_empty());
        assert_eq!(sink.to_jsonl(), "");
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(TraceSink::new());
        let fanout = Fanout::new(vec![registry.clone(), trace.clone()]);
        fanout.counter("c", 4);
        fanout.gauge("g", 9);
        fanout.record("h", 2);
        fanout.event(SimTime::ZERO, "e", &[("n", 1)]);
        fanout.span("s", 1_000, 5);

        assert_eq!(registry.counter_value("c"), 4);
        assert_eq!(registry.gauge_value("g"), 9);
        assert_eq!(registry.histogram("h").unwrap().count(), 1);
        assert_eq!(registry.event_count("e"), 1);
        assert_eq!(registry.span_summary("s").sim_minutes, 5);
        assert_eq!(trace.len(), 1, "spans never become trace lines");
        assert!(format!("{fanout:?}").contains("sinks: 2"));
    }

    #[test]
    fn take_drains_the_sink() {
        let sink = TraceSink::new();
        sink.event(SimTime::ZERO, "a", &[]);
        let first = sink.take_jsonl();
        assert_eq!(first, "{\"t\":0,\"kind\":\"a\",\"fields\":{}}\n");
        assert!(sink.is_empty());
        assert_eq!(sink.take_jsonl(), "");
        sink.event(SimTime::from_minutes(1), "b", &[]);
        assert_eq!(sink.len(), 1);
        assert!(sink.take_jsonl().contains("\"kind\":\"b\""));
    }
}
