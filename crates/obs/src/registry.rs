//! The metrics registry: counters, high-watermark gauges, log₂ histograms.

use std::sync::{Mutex, MutexGuard, PoisonError};

use sim_core::observe::Observer;
use sim_core::SimTime;

use crate::report::{HistogramSummary, Snapshot, SpanSummary};

/// A log₂-bucketed histogram of `u64` magnitudes.
///
/// Bucket 0 holds exactly the value `0`; bucket `i ≥ 1` holds the values
/// in `[2^(i-1), 2^i)`. Sixty-five buckets therefore cover the whole `u64`
/// range: victims-per-plan, walk hops, and reclaimed-byte magnitudes all
/// land in the low buckets, but nothing ever falls off the top.
///
/// # Examples
///
/// ```
/// use obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [0, 1, 2, 3, 4] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 10);
/// assert_eq!(h.bucket_count(2), 2); // 2 and 3 share the [2, 4) bucket
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of buckets: one for zero plus one per power of two.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; Histogram::BUCKETS],
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `(low, high)` value range of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Histogram::BUCKETS`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < Histogram::BUCKETS, "bucket {index} out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples recorded in bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Histogram::BUCKETS`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// The upper bound of the first bucket whose cumulative count reaches
    /// the quantile `q` (clamped to `[0, 1]`), tightened by the observed
    /// min/max. Zero when empty. Bucket-resolution, so at worst one power
    /// of two above the true quantile — plenty for order-of-magnitude
    /// reports, and exactly reproducible.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, high) = Self::bucket_range(i);
                return high.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Folds `other`'s samples into `self`. Merging is exact: the two
    /// bucket arrays add element-wise and count/sum/min/max combine, so
    /// per-thread histograms merged afterwards answer identically to one
    /// histogram that saw every sample (quantiles included — they only
    /// read buckets and the min/max clamp).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (bucket, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *bucket += n;
        }
    }

    /// A compact copy for [`Snapshot`]s.
    pub(crate) fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A thread-safe registry of named metrics, usable as an [`Observer`].
///
/// Aggregation is strictly commutative — counters add, gauges keep their
/// high watermark, histograms bucket-count — so totals are deterministic
/// even when the parallel cluster sweeps emit from several threads at
/// once. Names are `&'static str` by design: instrumentation sites name
/// their metrics statically, and the registry never allocates per event.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryCore>,
}

/// A tiny name-keyed table for `&'static str` metric names: a linear scan
/// with a pointer-equality fast path. Emission sites pass the same string
/// literal on every call, so the fat-pointer comparison short-circuits
/// without reading the name's bytes, and a process only ever uses a
/// handful of distinct names — the scan beats hashing the string on every
/// emission. The content-equality fallback keeps two call sites with
/// equal (but differently located) literals on one row.
#[derive(Debug, Default)]
struct NameTable<V> {
    entries: Vec<(&'static str, V)>,
}

impl<V: Default> NameTable<V> {
    fn entry(&mut self, name: &'static str) -> &mut V {
        let pos = self
            .entries
            .iter()
            .position(|&(k, _)| std::ptr::eq(k, name) || k == name);
        let pos = match pos {
            Some(pos) => pos,
            None => {
                self.entries.push((name, V::default()));
                self.entries.len() - 1
            }
        };
        &mut self.entries[pos].1
    }

    fn find(&self, name: &str) -> Option<&V> {
        self.entries
            .iter()
            .find(|&&(k, _)| k == name)
            .map(|(_, v)| v)
    }

    fn iter(&self) -> impl Iterator<Item = (&'static str, &V)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

/// The lock-free body of a [`MetricsRegistry`]: linear name tables with a
/// pointer-equality fast path (see [`NameTable`]) and deterministic,
/// sorted output produced at snapshot time instead of per emission.
/// [`MetricsRegistry`] wraps it in a mutex; the single-lock composite
/// stack embeds it directly.
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Default)]
pub(crate) struct RegistryCore {
    counters: NameTable<u64>,
    gauges: NameTable<u64>,
    histograms: NameTable<Histogram>,
    events: NameTable<u64>,
    spans: NameTable<SpanSummary>,
}

impl RegistryCore {
    pub(crate) fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name) += delta;
    }

    pub(crate) fn gauge(&mut self, name: &'static str, value: u64) {
        let slot = self.gauges.entry(name);
        *slot = (*slot).max(value);
    }

    pub(crate) fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).record(value);
    }

    pub(crate) fn event(&mut self, kind: &'static str) {
        *self.events.entry(kind) += 1;
    }

    pub(crate) fn span(&mut self, name: &'static str, wall_nanos: u64, sim_minutes: u64) {
        // Wall-clock distribution goes into the log₂ histogram like any
        // magnitude; the span table keeps the simulated-time correlation.
        self.record(name, wall_nanos);
        let summary = self.spans.entry(name);
        summary.count += 1;
        summary.wall_nanos = summary.wall_nanos.saturating_add(wall_nanos);
        summary.sim_minutes = summary.sim_minutes.saturating_add(sim_minutes);
    }

    pub(crate) fn counter_value(&self, name: &str) -> u64 {
        self.counters.find(name).copied().unwrap_or(0)
    }

    pub(crate) fn gauge_value(&self, name: &str) -> u64 {
        self.gauges.find(name).copied().unwrap_or(0)
    }

    pub(crate) fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.find(name).cloned()
    }

    pub(crate) fn event_count(&self, kind: &str) -> u64 {
        self.events.find(kind).copied().unwrap_or(0)
    }

    pub(crate) fn span_summary(&self, name: &str) -> SpanSummary {
        self.spans.find(name).copied().unwrap_or_default()
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        // Collecting into the snapshot's BTreeMaps restores the sorted,
        // deterministic order the insertion-ordered tables gave up.
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.to_string(), h.summarize()))
                .collect(),
            events: self
                .events
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
        }
    }
}

fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking emitter only ever leaves a metric partially bumped,
    // never structurally broken; keep counting.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Current value of a counter (zero if never bumped).
    pub fn counter_value(&self, name: &str) -> u64 {
        locked(&self.inner).counter_value(name)
    }

    /// High watermark of a gauge (zero if never set).
    pub fn gauge_value(&self, name: &str) -> u64 {
        locked(&self.inner).gauge_value(name)
    }

    /// A copy of a histogram, if any samples were recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        locked(&self.inner).histogram(name)
    }

    /// Number of trace events seen per kind (the registry counts events
    /// rather than buffering them — attach a [`TraceSink`] for bodies).
    ///
    /// [`TraceSink`]: crate::TraceSink
    pub fn event_count(&self, kind: &str) -> u64 {
        locked(&self.inner).event_count(kind)
    }

    /// Aggregates for a phase span (zero summary if never reported).
    pub fn span_summary(&self, name: &str) -> SpanSummary {
        locked(&self.inner).span_summary(name)
    }

    /// A point-in-time copy of every metric, deterministically ordered.
    pub fn snapshot(&self) -> Snapshot {
        locked(&self.inner).snapshot()
    }
}

impl Observer for MetricsRegistry {
    fn counter(&self, name: &'static str, delta: u64) {
        locked(&self.inner).counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        locked(&self.inner).gauge(name, value);
    }

    fn record(&self, name: &'static str, value: u64) {
        locked(&self.inner).record(name, value);
    }

    fn event(&self, _at: SimTime, kind: &'static str, _fields: &[(&'static str, u64)]) {
        locked(&self.inner).event(kind);
    }

    fn span(&self, name: &'static str, wall_nanos: u64, sim_minutes: u64) {
        locked(&self.inner).span(name, wall_nanos, sim_minutes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn merged_histograms_answer_like_one_that_saw_every_sample() {
        let samples_a = [0u64, 1, 7, 512, 4096];
        let samples_b = [3u64, 900, 1 << 40, u64::MAX];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in &samples_a {
            a.record(v);
            whole.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "quantile {q}");
        }
        // Merging an empty histogram changes nothing — in particular it
        // must not disturb the empty-min sentinel.
        let before = a.quantile(0.5);
        a.merge(&Histogram::new());
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.5), before);
        let mut empty = Histogram::new();
        empty.merge(&Histogram::new());
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn bucket_ranges_tile_the_u64_line() {
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(2), (2, 3));
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
        for i in 1..Histogram::BUCKETS {
            let (low, high) = Histogram::bucket_range(i);
            assert!(low <= high);
            assert_eq!(Histogram::bucket_index(low), i);
            assert_eq!(Histogram::bucket_index(high), i);
            if i > 1 {
                let (_, prev_high) = Histogram::bucket_range(i - 1);
                assert_eq!(low, prev_high + 1, "gap below bucket {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_range_rejects_out_of_range_indexes() {
        let _ = Histogram::bucket_range(Histogram::BUCKETS);
    }

    #[test]
    fn histogram_edge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(64), 2);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0, "empty min must not leak the sentinel");
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 lands in the [32, 64) bucket, clamped by max=100.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 63);
        assert_eq!(h.quantile(1.0), 100);
        // A single-sample histogram answers that sample for any q.
        let mut single = Histogram::new();
        single.record(42);
        assert_eq!(single.quantile(0.0), 42);
        assert_eq!(single.quantile(0.5), 42);
        assert_eq!(single.quantile(1.0), 42);
    }

    #[test]
    fn registry_aggregates_commutatively() {
        let registry = MetricsRegistry::new();
        registry.counter("c", 2);
        registry.counter("c", 3);
        registry.gauge("g", 7);
        registry.gauge("g", 4);
        registry.record("h", 5);
        registry.record("h", 9);
        registry.event(SimTime::ZERO, "store", &[("id", 1)]);
        registry.event(SimTime::from_minutes(1), "store", &[("id", 2)]);

        assert_eq!(registry.counter_value("c"), 5);
        assert_eq!(registry.gauge_value("g"), 7, "gauges keep the watermark");
        let h = registry.histogram("h").unwrap();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (2, 14, 5, 9));
        assert_eq!(registry.event_count("store"), 2);
        assert_eq!(registry.counter_value("absent"), 0);
        assert_eq!(registry.gauge_value("absent"), 0);
        assert!(registry.histogram("absent").is_none());
    }
}
