//! Reading, summarizing and diffing [`TraceSink`] JSONL traces.
//!
//! The sink's format is deliberately tiny — one object per line, integer
//! values only, fixed key order:
//!
//! ```text
//! {"t":43200,"kind":"engine.store","fields":{"id":1007,"size":3145728}}
//! ```
//!
//! so this module parses it with a hand-rolled scanner (the vendored
//! `serde_json` is typed-only) and builds the analysis the `tempimp-obs`
//! CLI and the golden-trace test share: per-kind statistics,
//! first-divergence location between two traces, per-series extraction,
//! and object-lifecycle reconstruction.
//!
//! [`TraceSink`]: crate::TraceSink

use std::collections::BTreeMap;
use std::fmt;

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant, in minutes.
    pub t: u64,
    /// Event kind (e.g. `engine.store`).
    pub kind: String,
    /// Integer fields, in serialized order.
    pub fields: Vec<(String, u64)>,
}

impl TraceEvent {
    /// The value of a field, if present.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}m {}", self.t, self.kind)?;
        for (key, value) in &self.fields {
            write!(f, " {key}={value}")?;
        }
        Ok(())
    }
}

/// Parses one JSONL trace line.
///
/// # Errors
///
/// Returns a description of the first malformed byte sequence. The parser
/// accepts exactly what [`TraceSink`](crate::TraceSink) emits: fixed key
/// order, integer values, no escapes, no whitespace.
pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut rest = line;
    rest = expect(rest, "{\"t\":")?;
    let (t, tail) = scan_u64(rest)?;
    rest = expect(tail, ",\"kind\":\"")?;
    let (kind, tail) = scan_string(rest)?;
    rest = expect(tail, ",\"fields\":{")?;
    let mut fields = Vec::new();
    if !rest.starts_with('}') {
        loop {
            rest = expect(rest, "\"")?;
            let (key, tail) = scan_string(rest)?;
            rest = expect(tail, ":")?;
            let (value, tail) = scan_u64(rest)?;
            rest = tail;
            fields.push((key, value));
            if let Some(tail) = rest.strip_prefix(',') {
                rest = tail;
            } else {
                break;
            }
        }
    }
    rest = expect(rest, "}}")?;
    if !rest.is_empty() {
        return Err(format!("trailing bytes `{}`", truncate(rest)));
    }
    Ok(TraceEvent { t, kind, fields })
}

fn expect<'a>(rest: &'a str, prefix: &str) -> Result<&'a str, String> {
    rest.strip_prefix(prefix)
        .ok_or_else(|| format!("expected `{prefix}` at `{}`", truncate(rest)))
}

/// Scans up to the closing quote (the sink forbids escapes in names).
fn scan_string(text: &str) -> Result<(String, &str), String> {
    let end = text
        .find('"')
        .ok_or_else(|| format!("unterminated string at `{}`", truncate(text)))?;
    Ok((text[..end].to_string(), &text[end + 1..]))
}

fn scan_u64(text: &str) -> Result<(u64, &str), String> {
    let digits = text.len() - text.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return Err(format!("expected an integer at `{}`", truncate(text)));
    }
    let value = text[..digits]
        .parse()
        .map_err(|_| format!("integer out of range at `{}`", truncate(text)))?;
    Ok((value, &text[digits..]))
}

fn truncate(text: &str) -> &str {
    &text[..text.len().min(40)]
}

/// Parses a whole JSONL trace. Empty lines are not tolerated: the sink
/// never writes them, so one signals corruption.
///
/// # Errors
///
/// Returns `(1-based line number, description)` for the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, (usize, String)> {
    text.lines()
        .enumerate()
        .map(|(index, line)| parse_line(line).map_err(|e| (index + 1, e)))
        .collect()
}

/// Per-kind aggregates of one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindStats {
    /// Events of this kind.
    pub count: u64,
    /// Simulated minute of the first occurrence.
    pub first_t: u64,
    /// Simulated minute of the last occurrence.
    pub last_t: u64,
}

/// Summarizes a parsed trace by kind, in kind order.
pub fn stats(events: &[TraceEvent]) -> BTreeMap<String, KindStats> {
    let mut out: BTreeMap<String, KindStats> = BTreeMap::new();
    for event in events {
        out.entry(event.kind.clone())
            .and_modify(|s| {
                s.count += 1;
                s.first_t = s.first_t.min(event.t);
                s.last_t = s.last_t.max(event.t);
            })
            .or_insert(KindStats {
                count: 1,
                first_t: event.t,
                last_t: event.t,
            });
    }
    out
}

/// Where two traces first differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Event `index` (0-based) differs; both raw lines are carried.
    Event {
        /// 0-based index of the diverging line.
        index: usize,
        /// The line in the left trace.
        left: String,
        /// The line in the right trace.
        right: String,
    },
    /// One trace is a strict prefix of the other.
    Length {
        /// Events in the left trace.
        left: usize,
        /// Events in the right trace.
        right: usize,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Event { index, left, right } => {
                writeln!(f, "event {index}: traces diverge")?;
                match (parse_line(left), parse_line(right)) {
                    (Ok(a), Ok(b)) => {
                        writeln!(f, "  left : {a}")?;
                        writeln!(f, "  right: {b}")?;
                        for change in describe_changes(&a, &b) {
                            writeln!(f, "  {change}")?;
                        }
                    }
                    _ => {
                        writeln!(f, "  left : {left}")?;
                        writeln!(f, "  right: {right}")?;
                    }
                }
                Ok(())
            }
            Divergence::Length { left, right } => writeln!(
                f,
                "traces agree for {} events, then lengths differ: left has {left}, right has {right}",
                left.min(right)
            ),
        }
    }
}

/// Field-level description of how two parsed events differ.
fn describe_changes(a: &TraceEvent, b: &TraceEvent) -> Vec<String> {
    let mut out = Vec::new();
    if a.t != b.t {
        out.push(format!("t moved {} -> {} minutes", a.t, b.t));
    }
    if a.kind != b.kind {
        out.push(format!("kind changed {} -> {}", a.kind, b.kind));
        return out;
    }
    for (key, left) in &a.fields {
        match b.field(key) {
            Some(right) if right != *left => {
                out.push(format!("{key} changed {left} -> {right}"));
            }
            None => out.push(format!("{key} removed (was {left})")),
            _ => {}
        }
    }
    for (key, right) in &b.fields {
        if a.field(key).is_none() {
            out.push(format!("{key} added ({right})"));
        }
    }
    out
}

/// Locates the first line where two JSONL traces differ, or `None` when
/// they are byte-identical.
pub fn first_divergence(left: &str, right: &str) -> Option<Divergence> {
    let mut a = left.lines();
    let mut b = right.lines();
    let mut index = 0;
    loop {
        match (a.next(), b.next()) {
            (Some(x), Some(y)) if x == y => index += 1,
            (Some(x), Some(y)) => {
                return Some(Divergence::Event {
                    index,
                    left: x.to_string(),
                    right: y.to_string(),
                });
            }
            (None, None) => return None,
            (x, y) => {
                return Some(Divergence::Length {
                    left: index + x.map_or(0, |_| 1) + a.count(),
                    right: index + y.map_or(0, |_| 1) + b.count(),
                });
            }
        }
    }
}

/// Extracts `(t, fields[field])` points from every `kind` event whose
/// fields match all of `filters` — the plottable series hiding in a trace.
pub fn extract_series(
    events: &[TraceEvent],
    kind: &str,
    field: &str,
    filters: &[(String, u64)],
) -> Vec<(u64, u64)> {
    events
        .iter()
        .filter(|e| e.kind == kind)
        .filter(|e| filters.iter().all(|(k, v)| e.field(k) == Some(*v)))
        .filter_map(|e| e.field(field).map(|value| (e.t, value)))
        .collect()
}

/// Every event mentioning object `id` (an `id` field), in trace order —
/// the raw material of a lifecycle reconstruction.
pub fn object_events(events: &[TraceEvent], id: u64) -> Vec<&TraceEvent> {
    events
        .iter()
        .filter(|e| e.field("id") == Some(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"t\":0,\"kind\":\"engine.store\",\"fields\":{\"id\":7,\"size\":1048576,\"victims\":0,\"freed\":0}}\n\
        {\"t\":1440,\"kind\":\"engine.breakpoint\",\"fields\":{\"id\":7,\"finalize\":0}}\n\
        {\"t\":2880,\"kind\":\"engine.evict\",\"fields\":{\"id\":7,\"size\":1048576,\"reason\":0,\"importance_ppm\":137000}}\n";

    #[test]
    fn parses_the_sink_format_exactly() {
        let events = parse_jsonl(SAMPLE).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].t, 0);
        assert_eq!(events[0].kind, "engine.store");
        assert_eq!(events[0].field("size"), Some(1_048_576));
        assert_eq!(events[0].field("absent"), None);
        assert_eq!(
            events[1].fields,
            vec![("id".into(), 7), ("finalize".into(), 0)]
        );
        assert_eq!(
            events[2].to_string(),
            "t=2880m engine.evict id=7 size=1048576 reason=0 importance_ppm=137000"
        );
        // Empty fields object round-trips too.
        let empty = parse_line("{\"t\":3,\"kind\":\"a\",\"fields\":{}}").unwrap();
        assert!(empty.fields.is_empty());
    }

    #[test]
    fn rejects_malformed_lines_with_positions() {
        for bad in [
            "",
            "{\"t\":x}",
            "{\"t\":1,\"kind\":\"a\",\"fields\":{}}trailing",
            "{\"t\":1,\"kind\":\"a\",\"fields\":{\"k\":}}",
            "{\"t\":99999999999999999999999,\"kind\":\"a\",\"fields\":{}}",
        ] {
            assert!(parse_line(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse_jsonl("{\"t\":1,\"kind\":\"a\",\"fields\":{}}\nnope\n").unwrap_err();
        assert_eq!(err.0, 2, "1-based line number");
    }

    #[test]
    fn stats_aggregate_per_kind() {
        let events = parse_jsonl(SAMPLE).unwrap();
        let s = stats(&events);
        assert_eq!(s.len(), 3);
        assert_eq!(s["engine.store"].count, 1);
        assert_eq!(
            (s["engine.evict"].first_t, s["engine.evict"].last_t),
            (2880, 2880)
        );
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        assert_eq!(first_divergence(SAMPLE, SAMPLE), None);
        assert_eq!(first_divergence("", ""), None);
    }

    #[test]
    fn divergence_names_the_changed_field() {
        let altered = SAMPLE.replace("\"victims\":0", "\"victims\":2");
        let d = first_divergence(SAMPLE, &altered).expect("must diverge");
        let text = d.to_string();
        assert!(text.contains("event 0"), "{text}");
        assert!(text.contains("victims changed 0 -> 2"), "{text}");

        let shorter: String = SAMPLE.lines().take(2).map(|l| format!("{l}\n")).collect();
        let d = first_divergence(SAMPLE, &shorter).expect("length diverges");
        assert_eq!(d, Divergence::Length { left: 3, right: 2 });
        assert!(d.to_string().contains("agree for 2 events"));
    }

    #[test]
    fn series_and_object_extraction() {
        let events = parse_jsonl(SAMPLE).unwrap();
        let series = extract_series(&events, "engine.evict", "importance_ppm", &[]);
        assert_eq!(series, vec![(2880, 137_000)]);
        let filtered = extract_series(
            &events,
            "engine.evict",
            "importance_ppm",
            &[("reason".to_string(), 1)],
        );
        assert!(filtered.is_empty());
        let life = object_events(&events, 7);
        assert_eq!(life.len(), 3);
        assert!(object_events(&events, 8).is_empty());
    }
}
