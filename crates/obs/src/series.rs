//! Bounded time-series capture over the observer seam.
//!
//! A [`SeriesRecorder`] turns the flat emission stream into named
//! trajectories keyed by [`SimTime`]: registered counters and gauges are
//! sampled on a fixed [`SimDuration`] cadence grid, and registered event
//! kinds contribute one point per event (optionally split into per-label
//! series, e.g. one density trajectory per cluster node). Buffers are
//! bounded: when a series reaches its capacity it halves itself by keeping
//! every other retained point and doubling its stride, so memory stays
//! O(capacity) over arbitrarily long runs while the first and the most
//! recent sample are always preserved.
//!
//! The recorder is a pure sink — like every [`Observer`] it only
//! aggregates, never feeds back — and its simulated clock is driven by the
//! event stream itself (or explicit [`advance_to`](SeriesRecorder::advance_to)
//! calls), so attaching one cannot perturb a run.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

use sim_core::observe::Observer;
use sim_core::{SimDuration, SimTime};

/// Default per-series point capacity.
const DEFAULT_CAPACITY: usize = 1024;

/// One bounded series buffer: a strided subsequence of everything pushed,
/// plus the most recent point, which is always retained.
#[derive(Debug, Clone)]
struct SeriesBuf {
    points: Vec<(u64, u64)>, // (minutes, value), time-ordered
    stride: u64,             // keep every stride-th incoming point
    skip: u64,               // countdown to the next kept point
    last: Option<(u64, u64)>,
}

impl SeriesBuf {
    fn new() -> Self {
        SeriesBuf {
            points: Vec::new(),
            stride: 1,
            skip: 0,
            last: None,
        }
    }

    fn push(&mut self, capacity: usize, t: u64, value: u64) {
        self.last = Some((t, value));
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        self.points.push((t, value));
        self.skip = self.stride - 1;
        if self.points.len() >= capacity {
            // Halve: retain even positions (position 0 — the first sample —
            // always survives) and double the stride.
            let mut position = 0usize;
            self.points.retain(|_| {
                let keep = position % 2 == 0;
                position += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    fn samples(&self) -> Vec<(SimTime, u64)> {
        let mut out: Vec<(SimTime, u64)> = self
            .points
            .iter()
            .map(|&(t, v)| (SimTime::from_minutes(t), v))
            .collect();
        if let Some((t, v)) = self.last {
            if self.points.last().is_none_or(|&(kept, _)| kept < t) {
                out.push((SimTime::from_minutes(t), v));
            }
        }
        out
    }
}

/// How one event kind maps onto series.
#[derive(Debug, Clone)]
struct EventSpec {
    value_field: &'static str,
    label_fields: Vec<&'static str>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Tracked counters: running totals, sampled on the cadence grid.
    counters: BTreeMap<&'static str, u64>,
    /// Tracked gauges: latest reported level (the trajectory, not the
    /// registry's high watermark), sampled on the cadence grid.
    gauges: BTreeMap<&'static str, u64>,
    /// Tracked event kinds.
    events: BTreeMap<&'static str, EventSpec>,
    /// Captured series by name.
    series: BTreeMap<String, SeriesBuf>,
    /// Next cadence-grid instant to sample scalars at (minutes).
    next_sample: u64,
    /// Latest simulated instant seen (minutes); the grid only moves
    /// forward.
    last_seen: u64,
}

/// Records named time series from the observer stream into bounded
/// buffers.
///
/// Register what to capture up front ([`track_counter`],
/// [`track_gauge`], [`track_events`]), attach the recorder — alone or
/// inside a [`Fanout`] — and read the trajectories back with
/// [`series`](SeriesRecorder::series) / [`to_csv`](SeriesRecorder::to_csv)
/// when the run completes. Under the `obs-off` feature nothing ever
/// reaches the recorder, so it simply stays empty.
///
/// [`track_counter`]: SeriesRecorder::track_counter
/// [`track_gauge`]: SeriesRecorder::track_gauge
/// [`track_events`]: SeriesRecorder::track_events
/// [`Fanout`]: crate::Fanout
///
/// # Examples
///
/// ```
/// use obs::SeriesRecorder;
/// use sim_core::{Obs, SimDuration, SimTime};
/// use std::sync::Arc;
///
/// let recorder = Arc::new(SeriesRecorder::new(SimDuration::DAY));
/// recorder.track_counter("engine.stores");
/// let obs = Obs::attached(recorder.clone());
///
/// obs.counter("engine.stores", 2);
/// obs.event(SimTime::from_days(2), "tick", &[]); // clock reaches day 2
/// # #[cfg(not(feature = "obs-off"))]
/// assert_eq!(
///     recorder.series("engine.stores").unwrap(),
///     vec![
///         (SimTime::ZERO, 2),
///         (SimTime::from_days(1), 2),
///         (SimTime::from_days(2), 2),
///     ],
/// );
/// ```
#[derive(Debug)]
pub struct SeriesRecorder {
    inner: Mutex<Inner>,
    cadence: SimDuration,
    capacity: usize,
}

fn locked(mutex: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SeriesRecorder {
    /// A recorder sampling scalars every `cadence`, with the default
    /// per-series capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn new(cadence: SimDuration) -> Self {
        SeriesRecorder::with_capacity(cadence, DEFAULT_CAPACITY)
    }

    /// A recorder with an explicit per-series point capacity (minimum 4).
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn with_capacity(cadence: SimDuration, capacity: usize) -> Self {
        assert!(
            cadence.as_minutes() > 0,
            "series cadence must be a positive duration"
        );
        SeriesRecorder {
            inner: Mutex::default(),
            cadence,
            capacity: capacity.max(4),
        }
    }

    /// The scalar sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Registers a counter to sample: the series tracks the running total
    /// of deltas seen since construction (or the last [`reset`]).
    ///
    /// [`reset`]: SeriesRecorder::reset
    pub fn track_counter(&self, name: &'static str) {
        locked(&self.inner).counters.entry(name).or_insert(0);
    }

    /// Registers a gauge to sample. Unlike the registry's high-watermark
    /// aggregation, the series keeps the *latest* reported level — the
    /// trajectory is the point of a series.
    pub fn track_gauge(&self, name: &'static str) {
        locked(&self.inner).gauges.entry(name).or_insert(0);
    }

    /// Registers an event kind to capture: every `kind` event contributes
    /// the point `(event time, fields[value_field])`. When `label_fields`
    /// is non-empty the stream splits into one series per observed label
    /// combination — e.g. labeling `cluster.node` by `node` yields one
    /// density trajectory per cluster node. Events missing `value_field`
    /// are ignored; missing label fields are omitted from the name.
    pub fn track_events(
        &self,
        kind: &'static str,
        value_field: &'static str,
        label_fields: &[&'static str],
    ) {
        locked(&self.inner).events.insert(
            kind,
            EventSpec {
                value_field,
                label_fields: label_fields.to_vec(),
            },
        );
    }

    /// Advances the sampling clock to `at`, recording scalar samples at
    /// every cadence-grid instant up to and including it. Event arrivals
    /// do this implicitly; call it directly at the end of a run so the
    /// grid covers the final stretch. Instants earlier than the latest one
    /// seen are ignored (the clock only moves forward — [`reset`] starts a
    /// new run).
    ///
    /// [`reset`]: SeriesRecorder::reset
    pub fn advance_to(&self, at: SimTime) {
        let mut inner = locked(&self.inner);
        self.advance_locked(&mut inner, at);
    }

    fn advance_locked(&self, inner: &mut Inner, at: SimTime) {
        let minutes = at.as_minutes();
        if minutes < inner.last_seen {
            return;
        }
        inner.last_seen = minutes;
        while inner.next_sample <= minutes {
            let t = inner.next_sample;
            let scalars: Vec<(String, u64)> = inner
                .counters
                .iter()
                .chain(inner.gauges.iter())
                .map(|(&name, &value)| (name.to_string(), value))
                .collect();
            for (name, value) in scalars {
                inner
                    .series
                    .entry(name)
                    .or_insert_with(SeriesBuf::new)
                    .push(self.capacity, t, value);
            }
            inner.next_sample = t + self.cadence.as_minutes();
        }
    }

    /// Names of every captured series, in lexicographic order.
    pub fn names(&self) -> Vec<String> {
        locked(&self.inner).series.keys().cloned().collect()
    }

    /// The captured points of a series, time-ordered.
    pub fn series(&self, name: &str) -> Option<Vec<(SimTime, u64)>> {
        locked(&self.inner).series.get(name).map(SeriesBuf::samples)
    }

    /// One series as a `t_minutes,value` CSV table.
    pub fn to_csv(&self, name: &str) -> Option<String> {
        self.series(name).map(|points| {
            let mut out = String::from("t_minutes,value\n");
            for (at, value) in points {
                let _ = writeln!(out, "{},{value}", at.as_minutes());
            }
            out
        })
    }

    /// Every captured series as `(name, csv)` pairs, in name order.
    pub fn dump_csvs(&self) -> Vec<(String, String)> {
        self.names()
            .into_iter()
            .map(|name| {
                let csv = self.to_csv(&name).expect("name listed by names()");
                (name, csv)
            })
            .collect()
    }

    /// Renders the latest value of every series as Prometheus gauges
    /// (`tempimp_series{series="<name>"} <value>`), deterministically
    /// ordered by series name.
    pub fn render_prometheus(&self) -> String {
        let inner = locked(&self.inner);
        if inner.series.is_empty() {
            return String::new();
        }
        let mut out = String::from("# TYPE tempimp_series gauge\n");
        for (name, buf) in &inner.series {
            if let Some((_, value)) = buf.last {
                let _ = writeln!(out, "tempimp_series{{series=\"{name}\"}} {value}");
            }
        }
        out
    }

    /// Drops all captured points and zeroes the scalar accumulators and
    /// the sampling clock, keeping the registrations. Call between
    /// back-to-back runs (e.g. per experiment in `repro`) so each run's
    /// series starts at `t = 0`.
    pub fn reset(&self) {
        let mut inner = locked(&self.inner);
        inner.series.clear();
        inner.next_sample = 0;
        inner.last_seen = 0;
        for value in inner.counters.values_mut() {
            *value = 0;
        }
        for value in inner.gauges.values_mut() {
            *value = 0;
        }
    }
}

impl Observer for SeriesRecorder {
    fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = locked(&self.inner);
        if let Some(value) = inner.counters.get_mut(name) {
            *value = value.saturating_add(delta);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        let mut inner = locked(&self.inner);
        if let Some(slot) = inner.gauges.get_mut(name) {
            *slot = value;
        }
    }

    fn record(&self, _name: &'static str, _value: u64) {}

    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        let mut inner = locked(&self.inner);
        self.advance_locked(&mut inner, at);
        let Some(spec) = inner.events.get(kind) else {
            return;
        };
        let lookup = |field: &str| fields.iter().find(|(k, _)| *k == field).map(|&(_, v)| v);
        let Some(value) = lookup(spec.value_field) else {
            return;
        };
        let mut name = format!("{kind}.{}", spec.value_field);
        let labels: Vec<String> = spec
            .label_fields
            .iter()
            .filter_map(|&field| lookup(field).map(|v| format!("{field}={v}")))
            .collect();
        if !labels.is_empty() {
            name.push('{');
            name.push_str(&labels.join(","));
            name.push('}');
        }
        inner
            .series
            .entry(name)
            .or_insert_with(SeriesBuf::new)
            .push(self.capacity, at.as_minutes(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes(points: &[(SimTime, u64)]) -> Vec<(u64, u64)> {
        points.iter().map(|&(t, v)| (t.as_minutes(), v)).collect()
    }

    #[test]
    fn scalars_sample_on_the_cadence_grid() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.track_gauge("g");
        recorder.counter("c", 5);
        recorder.gauge("g", 3);
        recorder.advance_to(SimTime::from_minutes(25));
        recorder.gauge("g", 1); // latest wins, unlike the registry
        recorder.counter("untracked", 99);
        recorder.advance_to(SimTime::from_minutes(30));

        assert_eq!(recorder.names(), vec!["c".to_string(), "g".to_string()]);
        assert_eq!(
            minutes(&recorder.series("c").unwrap()),
            vec![(0, 5), (10, 5), (20, 5), (30, 5)]
        );
        assert_eq!(
            minutes(&recorder.series("g").unwrap()),
            vec![(0, 3), (10, 3), (20, 3), (30, 1)]
        );
        assert!(recorder.series("untracked").is_none());
    }

    #[test]
    fn events_split_into_labeled_series() {
        let recorder = SeriesRecorder::new(SimDuration::DAY);
        recorder.track_events("cluster.node", "density_ppm", &["node"]);
        recorder.event(
            SimTime::from_days(1),
            "cluster.node",
            &[("node", 0), ("density_ppm", 500_000)],
        );
        recorder.event(
            SimTime::from_days(1),
            "cluster.node",
            &[("node", 1), ("density_ppm", 250_000)],
        );
        recorder.event(
            SimTime::from_days(2),
            "cluster.node",
            &[("node", 0), ("density_ppm", 750_000)],
        );
        // Value field missing: ignored.
        recorder.event(SimTime::from_days(2), "cluster.node", &[("node", 0)]);
        // Unregistered kind: ignored.
        recorder.event(SimTime::from_days(2), "other", &[("density_ppm", 1)]);

        assert_eq!(
            recorder.names(),
            vec![
                "cluster.node.density_ppm{node=0}".to_string(),
                "cluster.node.density_ppm{node=1}".to_string(),
            ]
        );
        assert_eq!(
            minutes(&recorder.series("cluster.node.density_ppm{node=0}").unwrap()),
            vec![(1440, 500_000), (2880, 750_000)]
        );
    }

    #[test]
    fn the_clock_only_moves_forward() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.advance_to(SimTime::from_minutes(20));
        recorder.advance_to(SimTime::from_minutes(5)); // ignored
        assert_eq!(
            minutes(&recorder.series("c").unwrap()),
            vec![(0, 0), (10, 0), (20, 0)]
        );
    }

    #[test]
    fn downsampling_bounds_memory_and_keeps_endpoints() {
        let recorder = SeriesRecorder::with_capacity(SimDuration::MINUTE, 8);
        recorder.track_counter("c");
        recorder.counter("c", 1);
        recorder.advance_to(SimTime::from_minutes(1000));
        let points = recorder.series("c").unwrap();
        assert!(points.len() <= 8, "{} points retained", points.len());
        assert_eq!(points.first().unwrap().0, SimTime::ZERO);
        assert_eq!(points.last().unwrap().0, SimTime::from_minutes(1000));
        let times: Vec<u64> = points.iter().map(|&(t, _)| t.as_minutes()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn csv_and_prometheus_renderings() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.counter("c", 2);
        recorder.advance_to(SimTime::from_minutes(10));
        assert_eq!(
            recorder.to_csv("c").unwrap(),
            "t_minutes,value\n0,2\n10,2\n"
        );
        assert!(recorder.to_csv("absent").is_none());
        let dumps = recorder.dump_csvs();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].0, "c");
        assert_eq!(
            recorder.render_prometheus(),
            "# TYPE tempimp_series gauge\ntempimp_series{series=\"c\"} 2\n"
        );
        assert_eq!(
            SeriesRecorder::new(SimDuration::DAY).render_prometheus(),
            ""
        );
    }

    #[test]
    fn reset_clears_data_but_keeps_registrations() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.counter("c", 7);
        recorder.advance_to(SimTime::from_minutes(50));
        recorder.reset();
        assert!(recorder.names().is_empty());
        recorder.counter("c", 1);
        recorder.advance_to(SimTime::ZERO);
        assert_eq!(minutes(&recorder.series("c").unwrap()), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_cadence_is_rejected() {
        let _ = SeriesRecorder::new(SimDuration::from_minutes(0));
    }
}
