//! Bounded time-series capture over the observer seam.
//!
//! A [`SeriesRecorder`] turns the flat emission stream into named
//! trajectories keyed by [`SimTime`]: registered counters and gauges are
//! sampled on a fixed [`SimDuration`] cadence grid, and registered event
//! kinds contribute one point per event (optionally split into per-label
//! series, e.g. one density trajectory per cluster node). Buffers are
//! bounded: when a series reaches its capacity it halves itself by keeping
//! every other retained point and doubling its stride, so memory stays
//! O(capacity) over arbitrarily long runs while the first and the most
//! recent sample are always preserved.
//!
//! The recorder is a pure sink — like every [`Observer`] it only
//! aggregates, never feeds back — and its simulated clock is driven by the
//! event stream itself (or explicit [`advance_to`](SeriesRecorder::advance_to)
//! calls), so attaching one cannot perturb a run.

use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

use sim_core::observe::Observer;
use sim_core::{SimDuration, SimTime};

/// Default per-series point capacity.
const DEFAULT_CAPACITY: usize = 1024;

/// One bounded series buffer: a strided subsequence of everything pushed,
/// plus the most recent point, which is always retained.
#[derive(Debug, Clone)]
struct SeriesBuf {
    points: Vec<(u64, u64)>, // (minutes, value), time-ordered
    stride: u64,             // keep every stride-th incoming point
    skip: u64,               // countdown to the next kept point
    last: Option<(u64, u64)>,
}

impl SeriesBuf {
    fn new() -> Self {
        SeriesBuf {
            points: Vec::new(),
            stride: 1,
            skip: 0,
            last: None,
        }
    }

    fn push(&mut self, capacity: usize, t: u64, value: u64) {
        self.last = Some((t, value));
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        self.points.push((t, value));
        self.skip = self.stride - 1;
        if self.points.len() >= capacity {
            // Halve: retain even positions (position 0 — the first sample —
            // always survives) and double the stride.
            let mut position = 0usize;
            self.points.retain(|_| {
                let keep = position % 2 == 0;
                position += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    fn samples(&self) -> Vec<(SimTime, u64)> {
        let mut out: Vec<(SimTime, u64)> = self
            .points
            .iter()
            .map(|&(t, v)| (SimTime::from_minutes(t), v))
            .collect();
        if let Some((t, v)) = self.last {
            if self.points.last().is_none_or(|&(kept, _)| kept < t) {
                out.push((SimTime::from_minutes(t), v));
            }
        }
        out
    }
}

/// A tracked scalar (counter or gauge): its running value plus a cached
/// index into the buffer table, so grid samples skip the name lookup.
#[derive(Debug, Clone)]
struct ScalarTrack {
    name: &'static str,
    value: u64,
    buf: Option<usize>,
}

/// How one event kind maps onto series. `base_name` is the precomputed
/// `kind.value_field` series name; for label-less specs `base_buf` caches
/// the buffer index so the per-event hot path is a direct vector index —
/// no allocation, no string formatting.
#[derive(Debug, Clone)]
struct EventTrack {
    kind: &'static str,
    value_field: &'static str,
    label_fields: Vec<&'static str>,
    base_name: String,
    base_buf: Option<usize>,
}

/// The lock-free body of a [`SeriesRecorder`]. Tracked names number a
/// handful per run, so registrations live in plain vectors scanned
/// linearly (mostly by pointer equality on static names) and captured
/// buffers in an append-only table addressed by cached index; name-sorted
/// views are produced at read time. [`SeriesRecorder`] wraps it in a
/// mutex; the single-lock composite stack embeds it directly.
#[derive(Debug)]
pub(crate) struct SeriesCore {
    cadence: u64,
    capacity: usize,
    /// Tracked counters: running totals, sampled on the cadence grid.
    counters: Vec<ScalarTrack>,
    /// Tracked gauges: latest reported level (the trajectory, not the
    /// registry's high watermark), sampled on the cadence grid.
    gauges: Vec<ScalarTrack>,
    /// Tracked event kinds.
    events: Vec<EventTrack>,
    /// Captured series, in creation order; readers sort by name.
    bufs: Vec<(String, SeriesBuf)>,
    /// Next cadence-grid instant to sample scalars at (minutes).
    next_sample: u64,
    /// Latest simulated instant seen (minutes); the grid only moves
    /// forward.
    last_seen: u64,
}

impl SeriesCore {
    pub(crate) fn new(cadence: SimDuration, capacity: usize) -> Self {
        assert!(
            cadence.as_minutes() > 0,
            "series cadence must be a positive duration"
        );
        SeriesCore {
            cadence: cadence.as_minutes(),
            capacity: capacity.max(4),
            counters: Vec::new(),
            gauges: Vec::new(),
            events: Vec::new(),
            bufs: Vec::new(),
            next_sample: 0,
            last_seen: 0,
        }
    }

    pub(crate) fn track_counter(&mut self, name: &'static str) {
        if !self.counters.iter().any(|t| t.name == name) {
            self.counters.push(ScalarTrack {
                name,
                value: 0,
                buf: None,
            });
        }
    }

    pub(crate) fn track_gauge(&mut self, name: &'static str) {
        if !self.gauges.iter().any(|t| t.name == name) {
            self.gauges.push(ScalarTrack {
                name,
                value: 0,
                buf: None,
            });
        }
    }

    pub(crate) fn track_events(
        &mut self,
        kind: &'static str,
        value_field: &'static str,
        label_fields: &[&'static str],
    ) {
        let track = EventTrack {
            kind,
            value_field,
            label_fields: label_fields.to_vec(),
            base_name: format!("{kind}.{value_field}"),
            base_buf: None,
        };
        match self.events.iter_mut().find(|t| t.kind == kind) {
            Some(existing) => *existing = track,
            None => self.events.push(track),
        }
    }

    fn buf_index(bufs: &mut Vec<(String, SeriesBuf)>, name: &str) -> usize {
        match bufs.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                bufs.push((name.to_string(), SeriesBuf::new()));
                bufs.len() - 1
            }
        }
    }

    pub(crate) fn counter(&mut self, name: &'static str, delta: u64) {
        if let Some(track) = self.counters.iter_mut().find(|t| t.name == name) {
            track.value = track.value.saturating_add(delta);
        }
    }

    pub(crate) fn gauge(&mut self, name: &'static str, value: u64) {
        if let Some(track) = self.gauges.iter_mut().find(|t| t.name == name) {
            track.value = value;
        }
    }

    pub(crate) fn advance_to(&mut self, at: SimTime) {
        let minutes = at.as_minutes();
        if minutes < self.last_seen {
            return;
        }
        self.last_seen = minutes;
        while self.next_sample <= minutes {
            let t = self.next_sample;
            for track in self.counters.iter_mut().chain(self.gauges.iter_mut()) {
                let i = *track
                    .buf
                    .get_or_insert_with(|| Self::buf_index(&mut self.bufs, track.name));
                self.bufs[i].1.push(self.capacity, t, track.value);
            }
            self.next_sample = t + self.cadence;
        }
    }

    pub(crate) fn event(
        &mut self,
        at: SimTime,
        kind: &'static str,
        fields: &[(&'static str, u64)],
    ) {
        self.advance_to(at);
        let Some(track) = self.events.iter_mut().find(|t| t.kind == kind) else {
            return;
        };
        let lookup = |field: &str| fields.iter().find(|(k, _)| *k == field).map(|&(_, v)| v);
        let Some(value) = lookup(track.value_field) else {
            return;
        };
        let i = if track.label_fields.is_empty() {
            // Hot path: label-less series resolve to a cached index.
            *track
                .base_buf
                .get_or_insert_with(|| Self::buf_index(&mut self.bufs, &track.base_name))
        } else {
            let mut name = track.base_name.clone();
            let labels: Vec<String> = track
                .label_fields
                .iter()
                .filter_map(|&field| lookup(field).map(|v| format!("{field}={v}")))
                .collect();
            if !labels.is_empty() {
                name.push('{');
                name.push_str(&labels.join(","));
                name.push('}');
            }
            Self::buf_index(&mut self.bufs, &name)
        };
        self.bufs[i].1.push(self.capacity, at.as_minutes(), value);
    }

    pub(crate) fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.bufs.iter().map(|(n, _)| n.clone()).collect();
        names.sort_unstable();
        names
    }

    pub(crate) fn samples(&self, name: &str) -> Option<Vec<(SimTime, u64)>> {
        self.bufs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, buf)| buf.samples())
    }

    pub(crate) fn last_values(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .bufs
            .iter()
            .filter_map(|(n, buf)| buf.last.map(|(_, v)| (n.as_str(), v)))
            .collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    pub(crate) fn reset(&mut self) {
        self.bufs.clear();
        self.next_sample = 0;
        self.last_seen = 0;
        for track in self.counters.iter_mut().chain(self.gauges.iter_mut()) {
            track.value = 0;
            track.buf = None;
        }
        for track in &mut self.events {
            track.base_buf = None;
        }
    }
}

/// Records named time series from the observer stream into bounded
/// buffers.
///
/// Register what to capture up front ([`track_counter`],
/// [`track_gauge`], [`track_events`]), attach the recorder — alone or
/// inside a [`Fanout`] — and read the trajectories back with
/// [`series`](SeriesRecorder::series) / [`to_csv`](SeriesRecorder::to_csv)
/// when the run completes. Under the `obs-off` feature nothing ever
/// reaches the recorder, so it simply stays empty.
///
/// [`track_counter`]: SeriesRecorder::track_counter
/// [`track_gauge`]: SeriesRecorder::track_gauge
/// [`track_events`]: SeriesRecorder::track_events
/// [`Fanout`]: crate::Fanout
///
/// # Examples
///
/// ```
/// use obs::SeriesRecorder;
/// use sim_core::{Obs, SimDuration, SimTime};
/// use std::sync::Arc;
///
/// let recorder = Arc::new(SeriesRecorder::new(SimDuration::DAY));
/// recorder.track_counter("engine.stores");
/// let obs = Obs::attached(recorder.clone());
///
/// obs.counter("engine.stores", 2);
/// obs.event(SimTime::from_days(2), "tick", &[]); // clock reaches day 2
/// # #[cfg(not(feature = "obs-off"))]
/// assert_eq!(
///     recorder.series("engine.stores").unwrap(),
///     vec![
///         (SimTime::ZERO, 2),
///         (SimTime::from_days(1), 2),
///         (SimTime::from_days(2), 2),
///     ],
/// );
/// ```
#[derive(Debug)]
pub struct SeriesRecorder {
    inner: Mutex<SeriesCore>,
    cadence: SimDuration,
}

fn locked(mutex: &Mutex<SeriesCore>) -> MutexGuard<'_, SeriesCore> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SeriesRecorder {
    /// A recorder sampling scalars every `cadence`, with the default
    /// per-series capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn new(cadence: SimDuration) -> Self {
        SeriesRecorder::with_capacity(cadence, DEFAULT_CAPACITY)
    }

    /// A recorder with an explicit per-series point capacity (minimum 4).
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn with_capacity(cadence: SimDuration, capacity: usize) -> Self {
        SeriesRecorder {
            inner: Mutex::new(SeriesCore::new(cadence, capacity)),
            cadence,
        }
    }

    /// The scalar sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Registers a counter to sample: the series tracks the running total
    /// of deltas seen since construction (or the last [`reset`]).
    ///
    /// [`reset`]: SeriesRecorder::reset
    pub fn track_counter(&self, name: &'static str) {
        locked(&self.inner).track_counter(name);
    }

    /// Registers a gauge to sample. Unlike the registry's high-watermark
    /// aggregation, the series keeps the *latest* reported level — the
    /// trajectory is the point of a series.
    pub fn track_gauge(&self, name: &'static str) {
        locked(&self.inner).track_gauge(name);
    }

    /// Registers an event kind to capture: every `kind` event contributes
    /// the point `(event time, fields[value_field])`. When `label_fields`
    /// is non-empty the stream splits into one series per observed label
    /// combination — e.g. labeling `cluster.node` by `node` yields one
    /// density trajectory per cluster node. Events missing `value_field`
    /// are ignored; missing label fields are omitted from the name.
    pub fn track_events(
        &self,
        kind: &'static str,
        value_field: &'static str,
        label_fields: &[&'static str],
    ) {
        locked(&self.inner).track_events(kind, value_field, label_fields);
    }

    /// Advances the sampling clock to `at`, recording scalar samples at
    /// every cadence-grid instant up to and including it. Event arrivals
    /// do this implicitly; call it directly at the end of a run so the
    /// grid covers the final stretch. Instants earlier than the latest one
    /// seen are ignored (the clock only moves forward — [`reset`] starts a
    /// new run).
    ///
    /// [`reset`]: SeriesRecorder::reset
    pub fn advance_to(&self, at: SimTime) {
        locked(&self.inner).advance_to(at);
    }

    /// Names of every captured series, in lexicographic order.
    pub fn names(&self) -> Vec<String> {
        locked(&self.inner).names()
    }

    /// The captured points of a series, time-ordered.
    pub fn series(&self, name: &str) -> Option<Vec<(SimTime, u64)>> {
        locked(&self.inner).samples(name)
    }

    /// One series as a `t_minutes,value` CSV table.
    pub fn to_csv(&self, name: &str) -> Option<String> {
        self.series(name).map(|points| {
            let mut out = String::from("t_minutes,value\n");
            for (at, value) in points {
                let _ = writeln!(out, "{},{value}", at.as_minutes());
            }
            out
        })
    }

    /// Every captured series as `(name, csv)` pairs, in name order.
    pub fn dump_csvs(&self) -> Vec<(String, String)> {
        self.names()
            .into_iter()
            .map(|name| {
                let csv = self.to_csv(&name).expect("name listed by names()");
                (name, csv)
            })
            .collect()
    }

    /// Renders the latest value of every series as Prometheus gauges
    /// (`tempimp_series{series="<name>"} <value>`), deterministically
    /// ordered by series name.
    pub fn render_prometheus(&self) -> String {
        let inner = locked(&self.inner);
        let last = inner.last_values();
        if last.is_empty() {
            return String::new();
        }
        let mut out = String::from("# TYPE tempimp_series gauge\n");
        for (name, value) in last {
            let _ = writeln!(out, "tempimp_series{{series=\"{name}\"}} {value}");
        }
        out
    }

    /// Drops all captured points and zeroes the scalar accumulators and
    /// the sampling clock, keeping the registrations. Call between
    /// back-to-back runs (e.g. per experiment in `repro`) so each run's
    /// series starts at `t = 0`.
    pub fn reset(&self) {
        locked(&self.inner).reset();
    }
}

impl Observer for SeriesRecorder {
    fn counter(&self, name: &'static str, delta: u64) {
        locked(&self.inner).counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        locked(&self.inner).gauge(name, value);
    }

    fn record(&self, _name: &'static str, _value: u64) {}

    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        locked(&self.inner).event(at, kind, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes(points: &[(SimTime, u64)]) -> Vec<(u64, u64)> {
        points.iter().map(|&(t, v)| (t.as_minutes(), v)).collect()
    }

    #[test]
    fn scalars_sample_on_the_cadence_grid() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.track_gauge("g");
        recorder.counter("c", 5);
        recorder.gauge("g", 3);
        recorder.advance_to(SimTime::from_minutes(25));
        recorder.gauge("g", 1); // latest wins, unlike the registry
        recorder.counter("untracked", 99);
        recorder.advance_to(SimTime::from_minutes(30));

        assert_eq!(recorder.names(), vec!["c".to_string(), "g".to_string()]);
        assert_eq!(
            minutes(&recorder.series("c").unwrap()),
            vec![(0, 5), (10, 5), (20, 5), (30, 5)]
        );
        assert_eq!(
            minutes(&recorder.series("g").unwrap()),
            vec![(0, 3), (10, 3), (20, 3), (30, 1)]
        );
        assert!(recorder.series("untracked").is_none());
    }

    #[test]
    fn events_split_into_labeled_series() {
        let recorder = SeriesRecorder::new(SimDuration::DAY);
        recorder.track_events("cluster.node", "density_ppm", &["node"]);
        recorder.event(
            SimTime::from_days(1),
            "cluster.node",
            &[("node", 0), ("density_ppm", 500_000)],
        );
        recorder.event(
            SimTime::from_days(1),
            "cluster.node",
            &[("node", 1), ("density_ppm", 250_000)],
        );
        recorder.event(
            SimTime::from_days(2),
            "cluster.node",
            &[("node", 0), ("density_ppm", 750_000)],
        );
        // Value field missing: ignored.
        recorder.event(SimTime::from_days(2), "cluster.node", &[("node", 0)]);
        // Unregistered kind: ignored.
        recorder.event(SimTime::from_days(2), "other", &[("density_ppm", 1)]);

        assert_eq!(
            recorder.names(),
            vec![
                "cluster.node.density_ppm{node=0}".to_string(),
                "cluster.node.density_ppm{node=1}".to_string(),
            ]
        );
        assert_eq!(
            minutes(&recorder.series("cluster.node.density_ppm{node=0}").unwrap()),
            vec![(1440, 500_000), (2880, 750_000)]
        );
    }

    #[test]
    fn the_clock_only_moves_forward() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.advance_to(SimTime::from_minutes(20));
        recorder.advance_to(SimTime::from_minutes(5)); // ignored
        assert_eq!(
            minutes(&recorder.series("c").unwrap()),
            vec![(0, 0), (10, 0), (20, 0)]
        );
    }

    #[test]
    fn downsampling_bounds_memory_and_keeps_endpoints() {
        let recorder = SeriesRecorder::with_capacity(SimDuration::MINUTE, 8);
        recorder.track_counter("c");
        recorder.counter("c", 1);
        recorder.advance_to(SimTime::from_minutes(1000));
        let points = recorder.series("c").unwrap();
        assert!(points.len() <= 8, "{} points retained", points.len());
        assert_eq!(points.first().unwrap().0, SimTime::ZERO);
        assert_eq!(points.last().unwrap().0, SimTime::from_minutes(1000));
        let times: Vec<u64> = points.iter().map(|&(t, _)| t.as_minutes()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn csv_and_prometheus_renderings() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.counter("c", 2);
        recorder.advance_to(SimTime::from_minutes(10));
        assert_eq!(
            recorder.to_csv("c").unwrap(),
            "t_minutes,value\n0,2\n10,2\n"
        );
        assert!(recorder.to_csv("absent").is_none());
        let dumps = recorder.dump_csvs();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].0, "c");
        assert_eq!(
            recorder.render_prometheus(),
            "# TYPE tempimp_series gauge\ntempimp_series{series=\"c\"} 2\n"
        );
        assert_eq!(
            SeriesRecorder::new(SimDuration::DAY).render_prometheus(),
            ""
        );
    }

    #[test]
    fn reset_clears_data_but_keeps_registrations() {
        let recorder = SeriesRecorder::new(SimDuration::from_minutes(10));
        recorder.track_counter("c");
        recorder.counter("c", 7);
        recorder.advance_to(SimTime::from_minutes(50));
        recorder.reset();
        assert!(recorder.names().is_empty());
        recorder.counter("c", 1);
        recorder.advance_to(SimTime::ZERO);
        assert_eq!(minutes(&recorder.series("c").unwrap()), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_cadence_is_rejected() {
        let _ = SeriesRecorder::new(SimDuration::from_minutes(0));
    }
}
