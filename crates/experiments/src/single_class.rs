//! The §5.1 single-application-class experiment driver.
//!
//! One storage unit, the ramped arrival stream, and one of three policies:
//!
//! * **No importance** — `L(t) = 1`, hard 30-day expiry (rejects rather
//!   than preempt live data).
//! * **Temporal importance** — the two-step curve: full importance for 15
//!   days, linear wane for another 15.
//! * **Palimpsest** — FIFO, importance-blind, never full.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration, SimTime};
use temporal_importance::{
    EvictionPolicy, EvictionReason, EvictionRecord, Importance, ImportanceCurve, ObjectIdGen,
    ObjectSpec, RejectionRecord, StorageUnit, StoreError, UnitStats,
};
use workload::ramp::RampedArrivals;

use analysis::TimeSeries;
use temporal_importance::DensitySnapshot;

/// The three §5.1 policies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyChoice {
    /// `L(t) = 1`, `t_expire = 30 days`: every accepted object gets its
    /// full lifetime, but the unit rejects aggressively under pressure.
    NoImportance,
    /// Two-step temporal importance: full for 15 days, waning for 15 more.
    TemporalImportance,
    /// Palimpsest-style FIFO: always admits, evicts oldest first.
    Palimpsest,
}

impl PolicyChoice {
    /// All §5.1 policies, in the paper's presentation order.
    pub const ALL: [PolicyChoice; 3] = [
        PolicyChoice::NoImportance,
        PolicyChoice::TemporalImportance,
        PolicyChoice::Palimpsest,
    ];

    /// The curve this policy annotates arrivals with.
    pub fn curve(self) -> ImportanceCurve {
        match self {
            PolicyChoice::NoImportance => {
                ImportanceCurve::fixed_lifetime(SimDuration::from_days(30))
            }
            PolicyChoice::TemporalImportance => ImportanceCurve::two_step(
                Importance::FULL,
                SimDuration::from_days(15),
                SimDuration::from_days(15),
            ),
            PolicyChoice::Palimpsest => ImportanceCurve::Ephemeral,
        }
    }

    /// The engine policy backing it.
    pub fn eviction_policy(self) -> EvictionPolicy {
        match self {
            PolicyChoice::Palimpsest => EvictionPolicy::Fifo,
            _ => EvictionPolicy::Preemptive,
        }
    }

    /// Stable integer code for trace events (`policy` field), in the
    /// paper's presentation order: 0 = no-importance, 1 =
    /// temporal-importance, 2 = palimpsest.
    pub fn code(self) -> u64 {
        match self {
            PolicyChoice::NoImportance => 0,
            PolicyChoice::TemporalImportance => 1,
            PolicyChoice::Palimpsest => 2,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::NoImportance => "no-importance",
            PolicyChoice::TemporalImportance => "temporal-importance",
            PolicyChoice::Palimpsest => "palimpsest",
        }
    }
}

impl std::fmt::Display for PolicyChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for a §5.1 run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SingleClassConfig {
    /// Workload seed.
    pub seed: u64,
    /// Simulation horizon in days (the paper runs five to ten years; the
    /// figures plot the first ~1–2).
    pub days: u64,
    /// Unit capacity (paper: 80 GB and 120 GB).
    pub capacity: ByteSize,
    /// Policy under test.
    pub policy: PolicyChoice,
    /// Density sampling interval.
    pub sample_every: SimDuration,
    /// If set, capture the first density snapshot within ±0.01 of this
    /// value once the unit has seen its first eviction (Figure 7's 0.8369
    /// snapshot).
    pub snapshot_density: Option<f64>,
}

impl SingleClassConfig {
    /// The paper's configuration for a given capacity and policy, over a
    /// two-year horizon.
    pub fn paper(seed: u64, capacity_gib: u64, policy: PolicyChoice) -> Self {
        SingleClassConfig {
            seed,
            days: 730,
            capacity: ByteSize::from_gib(capacity_gib),
            policy,
            sample_every: SimDuration::DAY,
            snapshot_density: None,
        }
    }
}

/// Everything a §5.1 run produces.
#[derive(Debug, Clone)]
pub struct SingleClassResult {
    /// The configuration that produced this result.
    pub config: SingleClassConfig,
    /// Every preemption/expiry eviction, in time order.
    pub evictions: Vec<EvictionRecord>,
    /// Every rejected store, in time order.
    pub rejections: Vec<RejectionRecord>,
    /// Daily storage importance density samples.
    pub density: TimeSeries,
    /// Daily used-bytes samples (fraction of capacity).
    pub used_fraction: TimeSeries,
    /// The raw arrival stream `(time, size)` (for Figures 2 and 5).
    pub arrivals: Vec<(SimTime, ByteSize)>,
    /// Final unit counters.
    pub stats: UnitStats,
    /// The snapshot captured near `snapshot_density`, if requested & found.
    pub snapshot: Option<DensitySnapshot>,
}

impl SingleClassResult {
    /// Lifetimes achieved as `(eviction time, achieved days)` — Figure 3's
    /// series. Only preemption evictions count ("the lifetimes are
    /// measured when the objects are evicted").
    pub fn lifetime_series(&self) -> TimeSeries {
        self.evictions
            .iter()
            .filter(|e| e.reason == EvictionReason::Preempted)
            .map(|e| (e.evicted_at, e.lifetime_achieved().as_days_f64()))
            .collect()
    }

    /// Rejections as unit impulses `(time, 1.0)` — Figure 4's series
    /// after weekly bucket summing.
    pub fn rejection_series(&self) -> TimeSeries {
        self.rejections.iter().map(|r| (r.at, 1.0)).collect()
    }

    /// Cumulative arrival volume in GiB — Figure 2's curve.
    pub fn cumulative_volume(&self) -> TimeSeries {
        let mut acc = 0.0;
        self.arrivals
            .iter()
            .map(|&(at, size)| {
                acc += size.as_gib_f64();
                (at, acc)
            })
            .collect()
    }
}

/// Runs the §5.1 experiment.
pub fn run(config: SingleClassConfig) -> SingleClassResult {
    let obs = sim_core::Obs::global();
    obs.counter("experiment.single_class.runs", 1);
    let mut span = obs.span("span.experiment.single_class");
    let gib = config.capacity.as_bytes() >> 30;
    let horizon = SimTime::from_days(config.days);
    let mut unit = StorageUnit::builder(config.capacity)
        .policy(config.policy.eviction_policy())
        .build();
    let mut ids = ObjectIdGen::new();
    let curve = config.policy.curve();

    let mut density = TimeSeries::new();
    let mut used_fraction = TimeSeries::new();
    let mut arrivals_log = Vec::new();
    let mut next_sample = SimTime::ZERO;
    let mut snapshot: Option<DensitySnapshot> = None;
    let mut saw_eviction = false;

    for arrival in RampedArrivals::paper(config.seed) {
        if arrival.at >= horizon {
            break;
        }
        // Sample state up to the arrival instant.
        while next_sample <= arrival.at {
            unit.advance(next_sample);
            let d = unit.importance_density(next_sample);
            let used = unit.used().ratio(unit.capacity());
            density.push(next_sample, d);
            used_fraction.push(next_sample, used);
            span.sim_to(next_sample);
            obs.event(
                next_sample,
                "density.sample",
                &[
                    ("gib", gib),
                    ("policy", config.policy.code()),
                    ("density_ppm", (d * 1e6).round() as u64),
                    ("used_ppm", (used * 1e6).round() as u64),
                ],
            );
            next_sample += config.sample_every;
        }

        arrivals_log.push((arrival.at, arrival.size));
        let spec = ObjectSpec::new(ids.next_id(), arrival.size, curve.clone());
        match unit.store(spec, arrival.at) {
            Ok(outcome) => {
                if !outcome.evicted.is_empty() {
                    saw_eviction = true;
                }
            }
            Err(StoreError::Full { .. }) => {
                saw_eviction = true; // pressure has begun
            }
            Err(e) => panic!("unexpected store error in workload: {e}"),
        }

        // Figure 7's snapshot: first time the density lands in the band
        // after storage pressure begins.
        if let Some(target) = config.snapshot_density {
            if snapshot.is_none() && saw_eviction {
                let d = unit.importance_density(arrival.at);
                if (d - target).abs() < 0.01 {
                    snapshot = Some(unit.density_snapshot(arrival.at));
                }
            }
        }
    }

    SingleClassResult {
        config,
        evictions: unit.take_evictions(),
        rejections: unit.take_rejections(),
        density,
        used_fraction,
        arrivals: arrivals_log,
        stats: *unit.stats(),
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyChoice, capacity_gib: u64) -> SingleClassResult {
        let mut cfg = SingleClassConfig::paper(1, capacity_gib, policy);
        cfg.days = 365;
        run(cfg)
    }

    #[test]
    fn no_importance_objects_get_full_lifetime() {
        let result = quick(PolicyChoice::NoImportance, 80);
        assert!(!result.evictions.is_empty());
        for e in result
            .evictions
            .iter()
            .filter(|e| e.reason == EvictionReason::Preempted)
        {
            // Preempted objects must already be expired: the policy never
            // reclaims live data.
            assert!(
                e.lifetime_achieved() >= SimDuration::from_days(30),
                "live object preempted after {}",
                e.lifetime_achieved()
            );
        }
        assert!(
            result.stats.rejections_full > 0,
            "should reject under pressure"
        );
    }

    #[test]
    fn temporal_importance_trades_lifetime_for_admissions() {
        let temporal = quick(PolicyChoice::TemporalImportance, 80);
        let fixed = quick(PolicyChoice::NoImportance, 80);
        // The headline of Figure 4: temporal importance rejects far fewer
        // requests than the no-importance policy.
        assert!(
            temporal.stats.rejections_full < fixed.stats.rejections_full / 2,
            "temporal {} vs fixed {}",
            temporal.stats.rejections_full,
            fixed.stats.rejections_full
        );
        // And the cost (Figure 3): some objects lose part of their waning
        // 15 days — lifetimes below 30 days appear.
        let lifetimes = temporal.lifetime_series();
        let min = lifetimes.values().iter().copied().fold(f64::MAX, f64::min);
        assert!(min < 30.0, "no lifetime was shortened (min {min})");
        // But never below the guaranteed 15-day plateau.
        assert!(min >= 15.0, "plateau violated (min {min})");
    }

    #[test]
    fn palimpsest_never_rejects() {
        let result = quick(PolicyChoice::Palimpsest, 80);
        assert_eq!(result.stats.rejections_full, 0);
        assert!(result.stats.evictions_preempted > 0);
    }

    #[test]
    fn density_stays_in_unit_interval_and_tracks_pressure() {
        let result = quick(PolicyChoice::TemporalImportance, 80);
        let values = result.density.values();
        assert!(values.iter().all(|v| (0.0..=1.0).contains(v)));
        // Density early (empty disk) is lower than at its peak.
        let early = values[5];
        let peak = values.iter().copied().fold(0.0, f64::max);
        assert!(peak > early, "density never rose");
        assert!(peak > 0.5, "no storage pressure observed (peak {peak})");
    }

    #[test]
    fn more_storage_means_fewer_rejections() {
        let small = quick(PolicyChoice::TemporalImportance, 80);
        let large = quick(PolicyChoice::TemporalImportance, 120);
        assert!(
            large.stats.rejections_full <= small.stats.rejections_full,
            "120 GiB rejected more ({}) than 80 GiB ({})",
            large.stats.rejections_full,
            small.stats.rejections_full
        );
    }

    #[test]
    fn snapshot_capture_near_target_density() {
        let mut cfg = SingleClassConfig::paper(1, 80, PolicyChoice::TemporalImportance);
        cfg.days = 365;
        cfg.snapshot_density = Some(0.8369);
        let result = run(cfg);
        let snap = result.snapshot.expect("snapshot should be captured");
        assert!((snap.density - 0.8369).abs() < 0.01);
        // Figure 7's qualitative claims hold near that density: a solid
        // majority of bytes at importance one, and a positive admission
        // threshold.
        assert!(snap.fraction_at_full() > 0.3);
        assert!(snap.min_stored_importance().unwrap() > Importance::ZERO);
    }

    #[test]
    fn series_helpers_are_consistent() {
        let result = quick(PolicyChoice::TemporalImportance, 80);
        assert_eq!(result.rejection_series().len(), result.rejections.len());
        let cumulative = result.cumulative_volume();
        let vals = cumulative.values();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(cumulative.len(), result.arrivals.len());
    }
}
