//! Ablation studies for design choices the paper leaves open.
//!
//! * **Decay shape** (§3: the waning component "could be linear,
//!   exponential or some other function") — reruns the §5.1 experiment
//!   with linear, exponential and step wane of identical persist/expiry,
//!   comparing admissions and lifetimes.
//! * **Placement parameters** (§5.3's `x` candidates / `m` tries) — how
//!   sampling width changes the importance of what gets preempted.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::{rng, ByteSize, SimDuration, SimTime};
use temporal_importance::{
    EvictionReason, Importance, ImportanceCurve, ObjectId, ObjectIdGen, ObjectSpec, StorageUnit,
    StoreError,
};

use besteffs::{Besteffs, PlacementConfig};
use workload::ramp::RampedArrivals;

/// The wane shapes compared by the decay ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecayShape {
    /// The paper's linear wane.
    Linear,
    /// Exponential wane (half-life = a quarter of the wane window).
    Exponential,
    /// A hard step: full importance until expiry, then zero.
    Step,
}

impl DecayShape {
    /// All shapes in presentation order.
    pub const ALL: [DecayShape; 3] = [
        DecayShape::Linear,
        DecayShape::Exponential,
        DecayShape::Step,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DecayShape::Linear => "linear",
            DecayShape::Exponential => "exponential",
            DecayShape::Step => "step",
        }
    }

    /// A curve with 15-day plateau and 15-day wane window in this shape.
    pub fn curve(self) -> ImportanceCurve {
        let persist = SimDuration::from_days(15);
        let wane = SimDuration::from_days(15);
        match self {
            DecayShape::Linear => ImportanceCurve::two_step(Importance::FULL, persist, wane),
            DecayShape::Exponential => ImportanceCurve::exp_decay(
                Importance::FULL,
                persist,
                wane,
                SimDuration::from_days(4),
            )
            .expect("positive half-life"),
            DecayShape::Step => {
                ImportanceCurve::two_step(Importance::FULL, persist + wane, SimDuration::ZERO)
            }
        }
    }
}

/// One decay-shape ablation row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayAblationRow {
    /// The shape measured.
    pub shape: DecayShape,
    /// Store requests rejected.
    pub rejections: u64,
    /// Objects preempted.
    pub evictions: u64,
    /// Mean lifetime achieved by preempted objects (days).
    pub mean_lifetime_days: f64,
}

/// Runs the decay-shape ablation on the §5.1 workload.
///
/// An instructive subtlety: with a *homogeneous* workload (every object
/// carrying the same curve), any strictly monotone wane of identical
/// persist/expiry produces byte-identical reclamation behaviour — the
/// engine only consumes the importance *ordering*, and age determines
/// that ordering for every monotone shape. The shape matters once objects
/// compete with other importance levels, so this ablation interleaves a
/// fixed 0.5-importance competitor class: a shape that wanes below 0.5
/// sooner loses its objects sooner. The rows report the shaped class
/// only.
pub fn decay_ablation(seed: u64, capacity: ByteSize, days: u64) -> Vec<DecayAblationRow> {
    sim_core::Obs::global().counter("experiment.ablation_decay.runs", 1);
    let _span = sim_core::Obs::global().span("span.experiment.ablation_decay");
    const SHAPED: temporal_importance::ObjectClass = temporal_importance::ObjectClass::new(20);
    const COMPETITOR: temporal_importance::ObjectClass = temporal_importance::ObjectClass::new(21);

    DecayShape::ALL
        .into_iter()
        .map(|shape| {
            let curve = shape.curve();
            let competitor_curve = ImportanceCurve::Fixed {
                importance: Importance::new_clamped(0.5),
                expiry: SimDuration::from_days(30),
            };
            let mut unit = StorageUnit::new(capacity);
            unit.set_recording(true);
            let mut ids = ObjectIdGen::new();
            let mut shaped_offered = 0u64;
            let mut shaped_rejected = 0u64;
            for (index, arrival) in RampedArrivals::paper(seed).enumerate() {
                if arrival.at >= SimTime::from_days(days) {
                    break;
                }
                let shaped = index % 2 == 0;
                let (class, curve) = if shaped {
                    (SHAPED, curve.clone())
                } else {
                    (COMPETITOR, competitor_curve.clone())
                };
                if shaped {
                    shaped_offered += 1;
                }
                let spec = ObjectSpec::new(ids.next_id(), arrival.size, curve).with_class(class);
                match unit.store(spec, arrival.at) {
                    Ok(_) => {}
                    Err(StoreError::Full { .. }) => {
                        if shaped {
                            shaped_rejected += 1;
                        }
                    }
                    Err(e) => panic!("unexpected store error: {e}"),
                }
            }
            let _ = shaped_offered;
            let evictions = unit.take_evictions();
            let preempted: Vec<f64> = evictions
                .iter()
                .filter(|e| e.class == SHAPED && e.reason == EvictionReason::Preempted)
                .map(|e| e.lifetime_achieved().as_days_f64())
                .collect();
            let mean = if preempted.is_empty() {
                0.0
            } else {
                preempted.iter().sum::<f64>() / preempted.len() as f64
            };
            DecayAblationRow {
                shape,
                rejections: shaped_rejected,
                evictions: preempted.len() as u64,
                mean_lifetime_days: mean,
            }
        })
        .collect()
}

/// One placement-parameter ablation row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementAblationRow {
    /// Candidates sampled per try (`x`).
    pub candidates: usize,
    /// Maximum tries (`m`).
    pub tries: usize,
    /// Mean importance of the highest preempted victim across placements
    /// that had to preempt (lower is better).
    pub mean_victim_importance: f64,
    /// Placements that failed outright.
    pub rejected: u64,
}

/// Runs the placement ablation: a cluster pre-filled with mixed-importance
/// data receives a batch of high-importance objects under varying `(x, m)`.
pub fn placement_ablation(
    seed: u64,
    nodes: usize,
    sweep: &[(usize, usize)],
) -> Vec<PlacementAblationRow> {
    sim_core::Obs::global().counter("experiment.ablation_placement.runs", 1);
    let _span = sim_core::Obs::global().span("span.experiment.ablation_placement");
    sweep
        .iter()
        .map(|&(candidates, tries)| {
            let mut rand = rng::stream(seed, "placement-ablation");
            let config = PlacementConfig {
                candidates_per_try: candidates,
                max_tries: tries,
                walk_steps: 10,
            };
            let mut cluster = Besteffs::builder(nodes, ByteSize::from_mib(100))
                .placement(config)
                .build(&mut rand);
            // Pre-fill every node with ten 10-MiB objects of uniformly
            // random importance, so placements must preempt.
            let mut raw_id = 0u64;
            for i in 0..nodes {
                for _ in 0..10 {
                    raw_id += 1;
                    let importance = Importance::new_clamped(rand.gen_range(0.05..0.95));
                    let spec = ObjectSpec::new(
                        ObjectId::new(raw_id),
                        ByteSize::from_mib(10),
                        ImportanceCurve::Fixed {
                            importance,
                            expiry: SimDuration::from_days(3650),
                        },
                    );
                    cluster
                        .node_mut(besteffs::NodeId::new(i))
                        .store(spec, SimTime::ZERO)
                        .expect("pre-fill fits");
                }
            }

            // Place a batch of full-importance objects.
            let mut victim_importances = Vec::new();
            let mut rejected = 0u64;
            for _ in 0..nodes {
                raw_id += 1;
                let spec = ObjectSpec::new(
                    ObjectId::new(raw_id),
                    ByteSize::from_mib(10),
                    ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
                );
                match cluster.place(spec, SimTime::from_minutes(1), &mut rand) {
                    Ok(placed) => {
                        if let Some(h) = placed.outcome.highest_preempted {
                            victim_importances.push(h.value());
                        }
                    }
                    Err(_) => rejected += 1,
                }
            }
            let mean = if victim_importances.is_empty() {
                0.0
            } else {
                victim_importances.iter().sum::<f64>() / victim_importances.len() as f64
            };
            PlacementAblationRow {
                candidates,
                tries,
                mean_victim_importance: mean,
                rejected,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_shapes_order_admissions() {
        let rows = decay_ablation(3, ByteSize::from_gib(40), 365);
        let by_shape = |s: DecayShape| rows.iter().find(|r| r.shape == s).unwrap();
        let linear = by_shape(DecayShape::Linear);
        let step = by_shape(DecayShape::Step);
        // A step curve keeps objects non-preemptible for the full 30 days,
        // so it must reject at least as much as the linear wane.
        assert!(
            step.rejections >= linear.rejections,
            "step {} vs linear {}",
            step.rejections,
            linear.rejections
        );
        // Against the 0.5-importance competitor class, exponential wane
        // crosses 0.5 sooner (persist + 1 half-life = day 19) than linear
        // (persist + wane/2 = day 22.5), so exp objects live less long.
        let exp = by_shape(DecayShape::Exponential);
        assert!(
            linear.mean_lifetime_days > exp.mean_lifetime_days,
            "linear {} vs exp {}",
            linear.mean_lifetime_days,
            exp.mean_lifetime_days
        );
    }

    #[test]
    fn wider_sampling_preempts_less_important_victims() {
        let rows = placement_ablation(7, 30, &[(1, 1), (16, 3)]);
        assert_eq!(rows.len(), 2);
        let narrow = rows[0];
        let wide = rows[1];
        assert!(
            wide.mean_victim_importance <= narrow.mean_victim_importance,
            "wide {} vs narrow {}",
            wide.mean_victim_importance,
            narrow.mean_victim_importance
        );
    }

    #[test]
    fn shape_labels() {
        assert_eq!(DecayShape::Linear.label(), "linear");
        assert_eq!(DecayShape::ALL.len(), 3);
    }
}
