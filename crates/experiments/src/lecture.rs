//! The §5.2 single-instructor lecture-capture experiment driver.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration, SimTime};
use temporal_importance::{
    EvictionPolicy, EvictionReason, EvictionRecord, ImportanceCurve, ObjectClass, ObjectIdGen,
    RejectionRecord, StorageUnit, StoreError, UnitStats,
};
use workload::lecture::{generate, LectureConfig};
use workload::{CLASS_STUDENT, CLASS_UNIVERSITY};

use analysis::TimeSeries;

/// Configuration of a §5.2 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LectureRunConfig {
    /// Workload seed.
    pub seed: u64,
    /// Simulated years (paper: five and ten).
    pub years: u64,
    /// Local storage capacity (paper: 80 GB and 120 GB).
    pub capacity: ByteSize,
    /// Use Palimpsest FIFO instead of the two-step temporal policy
    /// (the §5.2.2 comparison run).
    pub palimpsest: bool,
    /// Density sampling interval.
    pub sample_every: SimDuration,
}

impl LectureRunConfig {
    /// The paper's §5.2 configuration for a capacity in GiB.
    pub fn paper(seed: u64, capacity_gib: u64) -> Self {
        LectureRunConfig {
            seed,
            years: 5,
            capacity: ByteSize::from_gib(capacity_gib),
            palimpsest: false,
            sample_every: SimDuration::DAY,
        }
    }
}

/// Results of a §5.2 run.
#[derive(Debug, Clone)]
pub struct LectureRunResult {
    /// The configuration that produced this result.
    pub config: LectureRunConfig,
    /// All evictions, in time order.
    pub evictions: Vec<EvictionRecord>,
    /// All rejections, in time order.
    pub rejections: Vec<RejectionRecord>,
    /// Daily importance-density samples (Figure 12).
    pub density: TimeSeries,
    /// The raw arrival stream `(time, size)` (Figure 11's estimator input).
    pub arrivals: Vec<(SimTime, ByteSize)>,
    /// Final unit counters.
    pub stats: UnitStats,
}

impl LectureRunResult {
    /// Figure 9's series for one creator class: `(eviction time, lifetime
    /// achieved in days)` for preempted objects.
    pub fn lifetime_series(&self, class: ObjectClass) -> TimeSeries {
        self.evictions
            .iter()
            .filter(|e| e.class == class && e.reason == EvictionReason::Preempted)
            .map(|e| (e.evicted_at, e.lifetime_achieved().as_days_f64()))
            .collect()
    }

    /// Figure 10's series: `(eviction time, importance at reclamation)`
    /// for preempted objects of a class.
    pub fn reclamation_importance_series(&self, class: ObjectClass) -> TimeSeries {
        self.evictions
            .iter()
            .filter(|e| e.class == class && e.reason == EvictionReason::Preempted)
            .map(|e| (e.evicted_at, e.importance_at_eviction.value()))
            .collect()
    }

    /// Mean achieved lifetime in days for a class, counting rejected
    /// arrivals as zero-lifetime (the paper's reading of Fig. 9: student
    /// objects at 80 GB are "mostly rejected... lifetimes close to zero").
    pub fn mean_lifetime_with_rejections(&self, class: ObjectClass) -> Option<f64> {
        let achieved: Vec<f64> = self
            .evictions
            .iter()
            .filter(|e| e.class == class && e.reason == EvictionReason::Preempted)
            .map(|e| e.lifetime_achieved().as_days_f64())
            .chain(
                self.rejections
                    .iter()
                    .filter(|r| r.class == class)
                    .map(|_| 0.0),
            )
            .collect();
        if achieved.is_empty() {
            None
        } else {
            Some(achieved.iter().sum::<f64>() / achieved.len() as f64)
        }
    }

    /// Rejected-store count for a class.
    pub fn rejections_for(&self, class: ObjectClass) -> usize {
        self.rejections.iter().filter(|r| r.class == class).count()
    }
}

/// Runs the §5.2 experiment.
pub fn run(config: LectureRunConfig) -> LectureRunResult {
    sim_core::Obs::global().counter("experiment.lecture.runs", 1);
    let _span = sim_core::Obs::global().span("span.experiment.lecture");
    let workload_cfg = LectureConfig {
        seed: config.seed,
        ..LectureConfig::default()
    };
    let arrivals = generate(&workload_cfg, config.years);

    let policy = if config.palimpsest {
        EvictionPolicy::Fifo
    } else {
        EvictionPolicy::Preemptive
    };
    let mut unit = StorageUnit::builder(config.capacity).policy(policy).build();
    let mut ids = ObjectIdGen::new();

    let mut density = TimeSeries::new();
    let mut arrivals_log = Vec::with_capacity(arrivals.len());
    let mut next_sample = SimTime::ZERO;

    for arrival in arrivals {
        while next_sample <= arrival.at {
            unit.advance(next_sample);
            density.push(next_sample, unit.importance_density(next_sample));
            next_sample += config.sample_every;
        }
        arrivals_log.push((arrival.at, arrival.size));
        let at = arrival.at;
        // Under Palimpsest every object is ephemeral (importance-blind
        // FIFO); under the paper's policy the calendar curve applies.
        let curve = if config.palimpsest {
            ImportanceCurve::Ephemeral
        } else {
            arrival.curve.clone()
        };
        let spec = temporal_importance::ObjectSpec::new(ids.next_id(), arrival.size, curve)
            .with_class(arrival.class);
        match unit.store(spec, at) {
            Ok(_) | Err(StoreError::Full { .. }) => {}
            Err(e) => panic!("unexpected store error in workload: {e}"),
        }
    }

    LectureRunResult {
        config,
        evictions: unit.take_evictions(),
        rejections: unit.take_rejections(),
        density,
        arrivals: arrivals_log,
        stats: *unit.stats(),
    }
}

/// For Figure 10's Palimpsest comparison: the importance each evicted
/// object *would have had* under the two-step annotation ("we project the
/// importance from our two step function to show the system behavior").
pub fn palimpsest_projected_importance(result: &LectureRunResult) -> TimeSeries {
    // Under FIFO the stored curve is Ephemeral, so re-derive the two-step
    // importance from the academic calendar at eviction time.
    let calendar = workload::calendar::AcademicCalendar::paper();
    result
        .evictions
        .iter()
        .filter(|e| e.reason == EvictionReason::Preempted)
        .filter_map(|e| {
            let creator = if e.class == CLASS_UNIVERSITY {
                workload::calendar::Creator::University
            } else if e.class == CLASS_STUDENT {
                workload::calendar::Creator::Student
            } else {
                return None;
            };
            let curve = calendar.lifetime_for(e.arrival, creator)?;
            let age = e.evicted_at.saturating_since(e.arrival);
            Some((e.evicted_at, curve.importance_at(age).value()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(capacity_gib: u64, palimpsest: bool) -> LectureRunResult {
        run(LectureRunConfig {
            seed: 5,
            years: 3,
            capacity: ByteSize::from_gib(capacity_gib),
            palimpsest,
            sample_every: SimDuration::from_days(2),
        })
    }

    #[test]
    fn university_objects_outlive_student_objects_under_pressure() {
        let result = quick(80, false);
        let uni = result
            .mean_lifetime_with_rejections(CLASS_UNIVERSITY)
            .unwrap();
        let student = result.mean_lifetime_with_rejections(CLASS_STUDENT).unwrap();
        assert!(
            uni > 2.0 * student,
            "university {uni:.0} d vs student {student:.0} d"
        );
    }

    #[test]
    fn university_lifetimes_in_papers_band_at_80_gib() {
        // Fig. 9: "the university generated objects achieve lifetimes of
        // 200 to 400 days" at 80 GB.
        let result = quick(80, false);
        let lifetimes = result.lifetime_series(CLASS_UNIVERSITY);
        let summary = lifetimes.summary().expect("university evictions exist");
        // The paper reports 200–400 days; our workload constants (student
        // bitrate, lectures/week) are reconstructions, so allow a wider
        // band around that range — the shape claims (university ≫ student,
        // pressure shortens lifetimes) are asserted separately.
        assert!(
            (150.0..650.0).contains(&summary.mean),
            "mean university lifetime {:.0} days",
            summary.mean
        );
    }

    #[test]
    fn students_gain_persistence_with_more_storage() {
        let small = quick(80, false);
        let large = quick(120, false);
        let s_small = small.mean_lifetime_with_rejections(CLASS_STUDENT).unwrap();
        let s_large = large.mean_lifetime_with_rejections(CLASS_STUDENT).unwrap();
        assert!(
            s_large > s_small,
            "student lifetime didn't improve: {s_small:.1} → {s_large:.1}"
        );
    }

    #[test]
    fn palimpsest_does_not_differentiate_classes() {
        let result = quick(80, true);
        let uni = result.lifetime_series(CLASS_UNIVERSITY).summary().unwrap();
        let student = result.lifetime_series(CLASS_STUDENT).summary().unwrap();
        // FIFO gives both classes roughly the same lifetime (§5.2.2).
        let ratio = uni.mean / student.mean;
        assert!(
            (0.6..1.6).contains(&ratio),
            "FIFO differentiated classes: {:.0} vs {:.0}",
            uni.mean,
            student.mean
        );
        assert_eq!(result.stats.rejections_full, 0);
    }

    #[test]
    fn palimpsest_evicts_objects_that_still_matter() {
        // §5.2.2: "Palimpsest reclaims objects which have higher
        // importance values" — its projected importance at reclamation
        // reaches above 0.5.
        let result = quick(80, true);
        let projected = palimpsest_projected_importance(&result);
        let max = projected.values().iter().copied().fold(0.0, f64::max);
        assert!(max > 0.5, "max projected importance {max}");
    }

    #[test]
    fn temporal_policy_evicts_only_low_importance_under_pressure() {
        let result = quick(80, false);
        let imps = result.reclamation_importance_series(CLASS_UNIVERSITY);
        let max = imps.values().iter().copied().fold(0.0, f64::max);
        // Fig. 10 at 80 GB: university objects are evicted once they fall
        // below ~50% importance.
        assert!(max <= 0.7, "evicted a high-importance object ({max})");
    }

    #[test]
    fn density_tracks_calendar_pressure() {
        let result = quick(80, false);
        let summary = result.density.summary().unwrap();
        assert!(summary.max <= 1.0 && summary.min >= 0.0);
        assert!(summary.max > 0.5, "never under pressure");
    }
}
