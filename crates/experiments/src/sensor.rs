//! The §6 sensor scenario, driven by the discrete-event [`Simulation`].
//!
//! Raw captures arrive at full importance; a processing pipeline emits
//! summaries and *demotes* the raw data; an unreliable uplink acknowledges
//! summaries and demotes them in turn. The experiment verifies the §6
//! claim: trigger-based importance keeps unprocessed data safe under
//! storage pressure while letting acknowledged data drain away — and a
//! communications outage automatically grows the retention buffer without
//! any policy change.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::{rng, ByteSize, SimDuration, SimTime, Simulation};
use temporal_importance::{
    EvictionReason, ObjectId, ObjectIdGen, ObjectSpec, StorageUnit, StoreError,
};
use workload::sensor::{SensorConfig, CLASS_PROCESSED, CLASS_RAW};

use analysis::TimeSeries;

/// Configuration of a sensor-node run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorRunConfig {
    /// The node's annotation policy and traffic shape.
    pub sensor: SensorConfig,
    /// Node storage capacity.
    pub capacity: ByteSize,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// An uplink outage `(start, length)` during which every ack is lost.
    pub outage: Option<(SimTime, SimDuration)>,
}

impl Default for SensorRunConfig {
    fn default() -> Self {
        SensorRunConfig {
            sensor: SensorConfig::default(),
            capacity: ByteSize::from_gib(2),
            horizon: SimDuration::from_days(14),
            outage: None,
        }
    }
}

/// What happened over a sensor-node run.
#[derive(Debug, Clone, Default)]
pub struct SensorRunResult {
    /// Raw captures stored.
    pub captures: u64,
    /// Raw captures lost (evicted or rejected) *before* processing — the
    /// failure §6's annotation policy is designed to prevent.
    pub raw_lost_unprocessed: u64,
    /// Summaries produced.
    pub summaries: u64,
    /// Summaries acknowledged by the uplink.
    pub acked: u64,
    /// Summaries lost before acknowledgment.
    pub summaries_lost_unacked: u64,
    /// Daily storage importance density.
    pub density: TimeSeries,
    /// Daily count of unacknowledged summaries resident (the §6
    /// "retention for communication failure" buffer).
    pub pending_summaries: TimeSeries,
}

#[derive(Debug)]
enum Event {
    Capture { sensor: usize },
    Processed { raw: ObjectId },
    AckAttempt { summary: ObjectId },
    Sample,
}

/// Runs the sensor-node simulation.
pub fn run(config: SensorRunConfig) -> SensorRunResult {
    sim_core::Obs::global().counter("experiment.sensor.runs", 1);
    let _span = sim_core::Obs::global().span("span.experiment.sensor");
    let mut rand: StdRng = rng::stream(config.sensor.seed, "sensor-run");
    let mut unit = StorageUnit::new(config.capacity);
    let mut ids = ObjectIdGen::new();
    let mut result = SensorRunResult::default();
    let horizon = SimTime::ZERO + config.horizon;

    // Track lifecycle state outside the unit: which raw objects are
    // unprocessed, which summaries are unacked.
    let mut unprocessed: std::collections::BTreeSet<ObjectId> = Default::default();
    let mut unacked: std::collections::BTreeSet<ObjectId> = Default::default();

    let mut sim: Simulation<Event> = Simulation::new();
    for sensor in 0..config.sensor.sensors {
        sim.schedule(
            SimTime::from_minutes(sensor as u64),
            Event::Capture { sensor },
        );
    }
    sim.schedule(SimTime::ZERO, Event::Sample);

    let in_outage = |at: SimTime| match config.outage {
        Some((start, len)) => at >= start && at < start + len,
        None => false,
    };

    sim.run(|sim, now, event| {
        if now > horizon {
            return;
        }
        match event {
            Event::Capture { sensor } => {
                let spec = ObjectSpec::new(
                    ids.next_id(),
                    config.sensor.raw_size,
                    config.sensor.raw_curve(),
                )
                .with_class(CLASS_RAW);
                let raw = spec.id();
                match unit.store(spec, now) {
                    Ok(outcome) => {
                        result.captures += 1;
                        unprocessed.insert(raw);
                        // Anything preempted that was still in-flight is
                        // a lifecycle loss.
                        for victim in &outcome.evicted {
                            if unprocessed.remove(&victim.id) {
                                result.raw_lost_unprocessed += 1;
                            }
                            if unacked.remove(&victim.id) {
                                result.summaries_lost_unacked += 1;
                            }
                        }
                        let delay = uniform_delay(&mut rand, config.sensor.process_delay);
                        sim.schedule(now + delay, Event::Processed { raw });
                    }
                    Err(StoreError::Full { .. }) => {
                        result.raw_lost_unprocessed += 1;
                    }
                    Err(e) => panic!("unexpected store error: {e}"),
                }
                sim.schedule(now + config.sensor.capture_every, Event::Capture { sensor });
            }
            Event::Processed { raw } => {
                // The raw object may already have been lost.
                if !unprocessed.remove(&raw) || !unit.contains(raw) {
                    return;
                }
                // Store the summary at high importance, then demote the
                // raw capture to the retention-buffer curve (the trigger).
                let spec = ObjectSpec::new(
                    ids.next_id(),
                    config.sensor.summary_size,
                    config.sensor.summary_curve(),
                )
                .with_class(CLASS_PROCESSED);
                let summary = spec.id();
                match unit.store(spec, now) {
                    Ok(outcome) => {
                        result.summaries += 1;
                        unacked.insert(summary);
                        for victim in &outcome.evicted {
                            if unprocessed.remove(&victim.id) {
                                result.raw_lost_unprocessed += 1;
                            }
                            if unacked.remove(&victim.id) {
                                result.summaries_lost_unacked += 1;
                            }
                        }
                        // The summary store can itself have reclaimed the
                        // raw object if it had expired; demote only if it
                        // is still resident.
                        if unit.contains(raw) {
                            unit.reannotate(raw, config.sensor.raw_retired_curve(), now)
                                .expect("raw object verified resident");
                        }
                        let delay = uniform_delay(&mut rand, config.sensor.ack_delay);
                        sim.schedule(now + delay, Event::AckAttempt { summary });
                    }
                    Err(StoreError::Full { .. }) => {
                        // Summary could not be stored: keep the raw data
                        // hot and retry processing later.
                        unprocessed.insert(raw);
                        sim.schedule(now + config.sensor.ack_retry, Event::Processed { raw });
                    }
                    Err(e) => panic!("unexpected store error: {e}"),
                }
            }
            Event::AckAttempt { summary } => {
                if !unacked.contains(&summary) || !unit.contains(summary) {
                    unacked.remove(&summary);
                    return;
                }
                let lost = in_outage(now) || rand.gen::<f64>() < config.sensor.ack_loss;
                if lost {
                    sim.schedule(now + config.sensor.ack_retry, Event::AckAttempt { summary });
                } else {
                    unacked.remove(&summary);
                    result.acked += 1;
                    unit.reannotate(summary, config.sensor.summary_acked_curve(), now)
                        .expect("summary verified resident");
                }
            }
            Event::Sample => {
                unit.advance(now);
                result.density.push(now, unit.importance_density(now));
                result.pending_summaries.push(now, unacked.len() as f64);
                if now + SimDuration::DAY <= horizon {
                    sim.schedule(now + SimDuration::DAY, Event::Sample);
                }
            }
        }
        // Account for expiry-sweep losses too (keeps `used` meaningful).
        for record in unit.sweep_expired(now) {
            debug_assert_eq!(record.reason, EvictionReason::Expired);
            if unprocessed.remove(&record.id) {
                result.raw_lost_unprocessed += 1;
            }
            if unacked.remove(&record.id) {
                result.summaries_lost_unacked += 1;
            }
        }
    });

    result
}

fn uniform_delay<R: Rng>(rand: &mut R, range: (SimDuration, SimDuration)) -> SimDuration {
    let (lo, hi) = (range.0.as_minutes(), range.1.as_minutes());
    SimDuration::from_minutes(rand.gen_range(lo..=hi.max(lo)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_unprocessed_data_is_ever_lost_under_pressure() {
        // Capacity deliberately tight: 4 sensors × 64 MiB/hr = 6 GiB/day
        // against 2 GiB of storage. The annotation policy must still keep
        // every capture alive through processing.
        let result = run(SensorRunConfig::default());
        assert!(result.captures > 1000, "captures {}", result.captures);
        assert_eq!(result.raw_lost_unprocessed, 0, "unprocessed data was lost");
        assert_eq!(result.summaries_lost_unacked, 0);
        assert!(result.acked > 0);
    }

    #[test]
    fn acked_summaries_drain_while_pending_ones_survive() {
        let result = run(SensorRunConfig::default());
        // Most summaries get acknowledged, and the pending buffer stays
        // small relative to throughput.
        assert!(result.acked as f64 > 0.9 * result.summaries as f64);
        let mean_pending = result.pending_summaries.summary().unwrap().mean;
        assert!(mean_pending < 20.0, "pending buffer {mean_pending}");
    }

    #[test]
    fn outage_grows_the_retention_buffer_without_losing_data() {
        let outage_start = SimTime::from_days(5);
        let outage_len = SimDuration::from_days(3);
        let config = SensorRunConfig {
            outage: Some((outage_start, outage_len)),
            ..SensorRunConfig::default()
        };
        let result = run(config);
        assert_eq!(result.raw_lost_unprocessed, 0);
        assert_eq!(result.summaries_lost_unacked, 0);

        // Pending summaries during the outage dwarf the steady state.
        let during = result
            .pending_summaries
            .value_at(outage_start + SimDuration::from_days(2))
            .unwrap();
        let before = result
            .pending_summaries
            .value_at(outage_start - SimDuration::DAY)
            .unwrap();
        assert!(
            during > before * 3.0 + 5.0,
            "outage buffer {during} vs steady {before}"
        );

        // And it drains after the uplink recovers.
        let after = result
            .pending_summaries
            .value_at(outage_start + outage_len + SimDuration::from_days(3))
            .unwrap();
        assert!(after < during / 2.0, "buffer never drained: {after}");
    }

    #[test]
    fn density_reflects_the_demotion_cycle() {
        let result = run(SensorRunConfig::default());
        let summary = result.density.summary().unwrap();
        // Demotions keep the density well below saturation even though
        // the disk is byte-full almost continuously.
        assert!(summary.mean < 0.9, "density mean {:.3}", summary.mean);
        assert!(summary.max <= 1.0);
    }

    #[test]
    fn deterministic() {
        let a = run(SensorRunConfig::default());
        let b = run(SensorRunConfig::default());
        assert_eq!(a.captures, b.captures);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.summaries, b.summaries);
    }
}
