//! One function per paper table/figure, each returning a printable
//! [`FigureReport`] with the same rows/series the paper plots.

use std::collections::BTreeMap;
use std::fmt;

use analysis::report::{fmt_f64, Table};
use analysis::{TimeConstantEstimator, TimeSeries};
use sim_core::{ByteSize, SimDuration, SimTime};
use workload::calendar::Term;
use workload::downloads::DownloadModel;
use workload::ramp::RampedArrivals;
use workload::{CLASS_STUDENT, CLASS_UNIVERSITY};

use crate::ablation::{decay_ablation, placement_ablation};
use crate::availability;
use crate::lecture::{self, LectureRunConfig};
use crate::single_class::{self, PolicyChoice, SingleClassConfig};
use crate::university::{self, UniversityRunConfig};

/// A regenerated paper artifact: tables plus interpretation notes.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Short id, e.g. `"fig3"`.
    pub id: &'static str,
    /// Human title matching the paper caption.
    pub title: String,
    /// Named tables (a figure with two subplots gets two tables).
    pub tables: Vec<(String, Table)>,
    /// Shape observations to compare against the paper.
    pub notes: Vec<String>,
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for (name, table) in &self.tables {
            writeln!(f, "\n-- {name} --")?;
            f.write_str(&table.render())?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "\nnotes:")?;
            for note in &self.notes {
                writeln!(f, "  * {note}")?;
            }
        }
        Ok(())
    }
}

const CAPACITIES_GIB: [u64; 2] = [80, 120];
const MONTH: SimDuration = SimDuration::from_days(30);

/// Merges several bucketed series into one table keyed by bucket start
/// (days); missing cells render as `-`.
fn merged_table(
    key_header: &str,
    columns: Vec<(String, Vec<(SimTime, f64)>)>,
    digits: usize,
) -> Table {
    let mut headers = vec![key_header.to_string()];
    headers.extend(columns.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(headers);

    let mut keys: Vec<SimTime> = columns
        .iter()
        .flat_map(|(_, points)| points.iter().map(|&(t, _)| t))
        .collect();
    keys.sort();
    keys.dedup();

    let maps: Vec<BTreeMap<SimTime, f64>> = columns
        .into_iter()
        .map(|(_, points)| points.into_iter().collect())
        .collect();

    for key in keys {
        let mut row = vec![key.as_days().to_string()];
        for map in &maps {
            row.push(
                map.get(&key)
                    .map(|v| fmt_f64(*v, digits))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        table.row(row);
    }
    table
}

/// Figure 2: storage requirements over one year of §5.1 arrivals.
pub fn fig2(seed: u64) -> FigureReport {
    let _span = observe_figure("fig2");
    let gen = RampedArrivals::paper(seed);
    let mut sampled = TimeSeries::new();
    let mut acc = 0.0;
    for arrival in RampedArrivals::paper(seed) {
        if arrival.at >= SimTime::from_days(365) {
            break;
        }
        acc += arrival.size.as_gib_f64();
        sampled.push(arrival.at, acc);
    }

    let mut table = Table::new(vec!["day", "cumulative GiB", "expected GiB"]);
    for day in (30..=360).step_by(30) {
        let at = SimTime::from_days(day);
        let observed = sampled.value_at(at).unwrap_or(0.0);
        let expected = gen.expected_volume_by(at).as_gib_f64();
        table.row(vec![
            day.to_string(),
            fmt_f64(observed, 1),
            fmt_f64(expected, 1),
        ]);
    }
    let year_total = sampled.values().last().copied().unwrap_or(0.0);
    FigureReport {
        id: "fig2",
        title: "Sizes of objects offered for storage (cumulative, year 1)".into(),
        tables: vec![("storage requirement".into(), table)],
        notes: vec![
            format!("year-one demand: {year_total:.0} GiB — far beyond an 80/120 GiB disk"),
            "quarterly rate ramp 0.5 → 0.7 → 1.0 → 1.3 GB/hr is visible as increasing slope".into(),
        ],
    }
}

/// Runs the three §5.1 policy simulations in parallel (they are
/// independent) and extracts one series from each.
fn policy_columns<F>(
    seed: u64,
    days: u64,
    capacity_gib: u64,
    extract: F,
) -> Vec<(String, Vec<(SimTime, f64)>)>
where
    F: Fn(&single_class::SingleClassResult) -> Vec<(SimTime, f64)> + Sync,
{
    let extract = &extract;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = PolicyChoice::ALL
            .into_iter()
            .map(|policy| {
                scope.spawn(move |_| {
                    let mut cfg = SingleClassConfig::paper(seed, capacity_gib, policy);
                    cfg.days = days;
                    let result = single_class::run(cfg);
                    (policy.label().to_string(), extract(&result))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("policy simulation panicked"))
            .collect()
    })
    .expect("simulation scope panicked")
}

/// Figure 3: lifetimes achieved (monthly mean, days) under the three
/// policies, at 80 and 120 GiB.
pub fn fig3(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("fig3");
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let columns = policy_columns(seed, days, capacity, |r| {
            r.lifetime_series().bucket_mean(MONTH)
        });
        // Note the ordering the paper calls out in the Figure 3 caption.
        let means: BTreeMap<String, f64> = columns
            .iter()
            .filter_map(|(name, pts)| {
                let vals: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
                analysis::Summary::from_slice(&vals).map(|s| (name.clone(), s.mean))
            })
            .collect();
        if let (Some(no_imp), Some(temporal)) = (
            means.get(PolicyChoice::NoImportance.label()),
            means.get(PolicyChoice::TemporalImportance.label()),
        ) {
            notes.push(format!(
                "{capacity} GiB: mean lifetime no-importance {no_imp:.1} d ≥ temporal {temporal:.1} d (paper: no-importance on top)"
            ));
        }
        tables.push((
            format!("{capacity} GiB — mean lifetime achieved (days) by eviction month"),
            merged_table("day", columns, 1),
        ));
        tables.push((
            format!("{capacity} GiB — lifetime distribution (fraction of evictions)"),
            lifetime_histogram_table(seed, days, capacity),
        ));
    }
    notes.push("series start once the disk first fills (~day 40), as in the paper".into());
    FigureReport {
        id: "fig3",
        title: "Lifetime achieved (measured at eviction)".into(),
        tables,
        notes,
    }
}

/// Figure 4: requests turned down because of full storage (monthly count).
pub fn fig4(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("fig4");
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let columns = policy_columns(seed, days, capacity, |r| {
            r.rejection_series().bucket_sum(MONTH)
        });
        let totals: Vec<(String, f64)> = columns
            .iter()
            .map(|(name, pts)| (name.clone(), pts.iter().map(|&(_, v)| v).sum()))
            .collect();
        notes.push(format!(
            "{capacity} GiB totals: {}",
            totals
                .iter()
                // `+ 0.0` normalizes the -0.0 an empty f64 sum yields.
                .map(|(n, t)| format!("{n}={:.0}", t + 0.0))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        tables.push((
            format!("{capacity} GiB — rejected requests per month"),
            merged_table("day", columns, 0),
        ));
    }
    notes.push("storage is never full for palimpsest (0 rejections)".into());
    FigureReport {
        id: "fig4",
        title: "Requests turned down because of full storage".into(),
        tables,
        notes,
    }
}

/// A 0–40-day lifetime histogram per policy, as fractions of evictions.
fn lifetime_histogram_table(seed: u64, days: u64, capacity_gib: u64) -> Table {
    use analysis::Histogram;

    let per_policy: Vec<(String, Histogram)> = PolicyChoice::ALL
        .into_iter()
        .map(|policy| {
            let mut cfg = SingleClassConfig::paper(seed, capacity_gib, policy);
            cfg.days = days;
            let result = single_class::run(cfg);
            let mut hist = Histogram::new(0.0, 40.0, 8).expect("valid spec");
            hist.record_all(result.lifetime_series().values());
            (policy.label().to_string(), hist)
        })
        .collect();

    let mut headers = vec!["lifetime (days)".to_string()];
    headers.extend(per_policy.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(headers);
    let bins = per_policy[0].1.counts().len();
    for bin in 0..bins {
        let (start, end) = per_policy[0].1.bin_range(bin);
        let mut row = vec![format!("{start:.0}-{end:.0}")];
        for (_, hist) in &per_policy {
            let total = hist.total().max(1) as f64;
            row.push(fmt_f64(hist.counts()[bin] as f64 / total, 3));
        }
        table.row(row);
    }
    table
}

fn time_constant_table(
    arrivals: &[(SimTime, ByteSize)],
    capacity: ByteSize,
) -> (Table, Vec<String>) {
    let mut table = Table::new(vec![
        "window",
        "windows",
        "mean tau (d)",
        "cv",
        "het ratio (4 bands)",
        "dispersion r2",
    ]);
    let mut notes = Vec::new();
    let mut cvs: BTreeMap<&str, f64> = BTreeMap::new();
    for (label, window) in [
        ("hour", SimDuration::HOUR),
        ("day", SimDuration::DAY),
        ("month", MONTH),
    ] {
        let series =
            TimeConstantEstimator::new(capacity, window).estimate(arrivals.iter().copied());
        let summary = series.summary();
        let cv = series.coefficient_of_variation().unwrap_or(f64::NAN);
        cvs.insert(label, cv);
        table.row(vec![
            label.to_string(),
            series.points.len().to_string(),
            summary.map(|s| fmt_f64(s.mean, 1)).unwrap_or("-".into()),
            fmt_f64(cv, 3),
            series
                .heteroscedasticity_ratio(4)
                .map(|r| fmt_f64(r, 1))
                .unwrap_or("-".into()),
            series
                .dispersion_rate_r2()
                .map(|r| fmt_f64(r, 3))
                .unwrap_or("-".into()),
        ]);
    }
    if let (Some(h), Some(d), Some(m)) = (cvs.get("hour"), cvs.get("day"), cvs.get("month")) {
        notes.push(format!(
            "tau coefficient of variation: hour {h:.2}, day {d:.2}, month {m:.2}"
        ));
    }
    (table, notes)
}

/// Figure 5: the Palimpsest time constant analyzed every hour/day/month.
pub fn fig5(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("fig5");
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    // The estimator needs only the arrival stream; reuse the temporal run.
    let mut cfg = SingleClassConfig::paper(seed, 80, PolicyChoice::TemporalImportance);
    cfg.days = days;
    let result = single_class::run(cfg);
    for capacity in CAPACITIES_GIB {
        let (table, mut n) = time_constant_table(&result.arrivals, ByteSize::from_gib(capacity));
        notes.append(&mut n);
        tables.push((format!("{capacity} GiB — time constant estimates"), table));
    }
    notes.push(
        "day-window variance depends on the arrival rate (heteroscedasticity, §5.1.2)".into(),
    );
    FigureReport {
        id: "fig5",
        title: "Palimpsest time constant (hour/day/month analysis windows)".into(),
        tables,
        notes,
    }
}

/// Figure 6: instantaneous storage importance density over time.
pub fn fig6(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("fig6");
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let mut cfg = SingleClassConfig::paper(seed, capacity, PolicyChoice::TemporalImportance);
        cfg.days = days;
        let result = single_class::run(cfg);
        let column = result.density.bucket_mean(MONTH);
        let peak = result.density.values().iter().copied().fold(0.0, f64::max);
        notes.push(format!("{capacity} GiB: peak density {peak:.4}"));
        tables.push((
            format!("{capacity} GiB — monthly mean importance density"),
            merged_table("day", vec![("density".into(), column)], 4),
        ));
    }
    notes.push("density rises with pressure; more storage keeps it lower (scalability)".into());
    FigureReport {
        id: "fig6",
        title: "Instantaneous storage importance density".into(),
        tables,
        notes,
    }
}

/// Figure 7: CDF of stored-byte importance at an instant when the density
/// is ≈0.8369.
pub fn fig7(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("fig7");
    let mut cfg = SingleClassConfig::paper(seed, 80, PolicyChoice::TemporalImportance);
    cfg.days = days;
    cfg.snapshot_density = Some(0.8369);
    let result = single_class::run(cfg);

    let mut tables = Vec::new();
    let mut notes = Vec::new();
    match &result.snapshot {
        Some(snap) => {
            let mut table = Table::new(vec!["importance", "cumulative byte fraction"]);
            // Downsample the CDF to ≤20 printed steps.
            let cdf = snap.byte_cdf();
            let step = (cdf.len() / 20).max(1);
            for (i, (imp, frac)) in cdf.iter().enumerate() {
                if i % step == 0 || i + 1 == cdf.len() {
                    table.row(vec![fmt_f64(imp.value(), 3), fmt_f64(*frac, 3)]);
                }
            }
            notes.push(format!("snapshot density: {:.4}", snap.density));
            notes.push(format!(
                "fraction of bytes at importance 1.0: {:.2} (paper: 0.57)",
                snap.fraction_at_full()
            ));
            if let Some(min) = snap.min_stored_importance() {
                notes.push(format!(
                    "no stored byte below importance {:.2} — objects under it cannot be stored (paper: 0.25)",
                    min.value()
                ));
            }
            tables.push(("byte-importance CDF".into(), table));
        }
        None => notes.push("no instant matched the target density band in this run".into()),
    }
    FigureReport {
        id: "fig7",
        title: "Cumulative distribution of byte importance at density ≈ 0.8369".into(),
        tables,
        notes,
    }
}

/// Table 1: lifetimes for the lecture capture system.
pub fn table1() -> FigureReport {
    let _span = observe_figure("table1");
    let mut table = Table::new(vec![
        "term",
        "term begin (doy)",
        "t_persist (days)",
        "t_wane (days)",
    ]);
    for term in Term::ALL {
        table.row(vec![
            term.name().to_string(),
            term.begin_day().to_string(),
            format!("{} - today", term.end_day()),
            term.wane().as_days().to_string(),
        ]);
    }
    FigureReport {
        id: "table1",
        title: "Lifetimes for lecture capture system".into(),
        tables: vec![("Table 1".into(), table)],
        notes: vec!["student objects: 50% importance, same persist, 14-day wane (§5.2.1)".into()],
    }
}

/// Figure 8: number of lecture downloads per day (synthetic model).
pub fn fig8(seed: u64) -> FigureReport {
    let _span = observe_figure("fig8");
    let model = DownloadModel {
        seed,
        ..DownloadModel::default()
    };
    let trace = model.generate(140);
    let mut table = Table::new(vec!["week", "downloads"]);
    for (week, chunk) in trace.chunks(7).enumerate() {
        table.row(vec![
            week.to_string(),
            chunk.iter().sum::<u64>().to_string(),
        ]);
    }
    let peak_day = (0..trace.len()).max_by_key(|&d| trace[d]).unwrap();
    FigureReport {
        id: "fig8",
        title: "Lecture downloads per day (generative stand-in for the observed trace)".into(),
        tables: vec![("weekly download totals".into(), table)],
        notes: vec![
            format!("global peak on day {peak_day} — the slashdot event (paper: 'briefly slash-dotted')"),
            "surges align with exam weeks; interest decays after the semester".into(),
        ],
    }
}

/// Figure 9: lifetimes achieved in the lecture scenario, by creator class.
pub fn fig9(seed: u64, years: u64) -> FigureReport {
    let _span = observe_figure("fig9");
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let mut cfg = LectureRunConfig::paper(seed, capacity);
        cfg.years = years;
        let result = lecture::run(cfg);
        let columns = vec![
            (
                "university".to_string(),
                result.lifetime_series(CLASS_UNIVERSITY).bucket_mean(MONTH),
            ),
            (
                "student".to_string(),
                result.lifetime_series(CLASS_STUDENT).bucket_mean(MONTH),
            ),
        ];
        let uni_mean = result
            .mean_lifetime_with_rejections(CLASS_UNIVERSITY)
            .unwrap_or(0.0);
        let student_mean = result
            .mean_lifetime_with_rejections(CLASS_STUDENT)
            .unwrap_or(0.0);
        notes.push(format!(
            "{capacity} GiB: mean lifetime (rejections as 0) university {uni_mean:.0} d, student {student_mean:.0} d; student rejections {}",
            result.rejections_for(CLASS_STUDENT)
        ));
        tables.push((
            format!("{capacity} GiB — mean lifetime achieved (days) by eviction month"),
            merged_table("day", columns, 1),
        ));
        // Lifetime distributions per class.
        let mut hist_table = Table::new(vec!["lifetime (days)", "university", "student"]);
        let mut uni_hist = analysis::Histogram::new(0.0, 1000.0, 10).expect("valid spec");
        uni_hist.record_all(result.lifetime_series(CLASS_UNIVERSITY).values());
        let mut student_hist = analysis::Histogram::new(0.0, 1000.0, 10).expect("valid spec");
        student_hist.record_all(result.lifetime_series(CLASS_STUDENT).values());
        for bin in 0..10 {
            let (start, end) = uni_hist.bin_range(bin);
            hist_table.row(vec![
                format!("{start:.0}-{end:.0}"),
                fmt_f64(
                    uni_hist.counts()[bin] as f64 / uni_hist.total().max(1) as f64,
                    3,
                ),
                fmt_f64(
                    student_hist.counts()[bin] as f64 / student_hist.total().max(1) as f64,
                    3,
                ),
            ]);
        }
        tables.push((
            format!("{capacity} GiB — lifetime distribution (fraction of evictions)"),
            hist_table,
        ));
    }
    notes.push("paper: university objects reach 200–400 d; students starve at 80 GB and gain ~70 d at 120 GB".into());
    FigureReport {
        id: "fig9",
        title: "Lifetime achieved, lecture capture (two-step importance)".into(),
        tables,
        notes,
    }
}

/// Figure 10: importance at reclamation for university objects.
pub fn fig10(seed: u64, years: u64) -> FigureReport {
    let _span = observe_figure("fig10");
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let mut cfg = LectureRunConfig::paper(seed, capacity);
        cfg.years = years;
        let result = lecture::run(cfg);
        let series = result.reclamation_importance_series(CLASS_UNIVERSITY);
        let column = series.bucket_mean(MONTH);
        let max = series.values().iter().copied().fold(0.0, f64::max);
        let min = series.values().iter().copied().fold(1.0, f64::min);
        notes.push(format!(
            "{capacity} GiB: university eviction importance range [{min:.2}, {max:.2}]"
        ));
        tables.push((
            format!("{capacity} GiB — mean importance at reclamation by month"),
            merged_table("day", vec![("importance".into(), column)], 3),
        ));
    }
    // Palimpsest comparison: projected importance of FIFO victims.
    let mut cfg = LectureRunConfig::paper(seed, 80);
    cfg.years = years;
    cfg.palimpsest = true;
    let fifo = lecture::run(cfg);
    let projected = lecture::palimpsest_projected_importance(&fifo);
    let fifo_max = projected.values().iter().copied().fold(0.0, f64::max);
    notes.push(format!(
        "palimpsest (80 GiB): reclaims objects with projected importance up to {fifo_max:.2} — 'such behavior is not preferable'"
    ));
    tables.push((
        "80 GiB palimpsest — mean projected importance at reclamation".into(),
        merged_table(
            "day",
            vec![("importance".into(), projected.bucket_mean(MONTH))],
            3,
        ),
    ));
    FigureReport {
        id: "fig10",
        title: "Importance at reclamation for university created objects".into(),
        tables,
        notes,
    }
}

/// Figure 11: time constant in the lecture scenario.
pub fn fig11(seed: u64, years: u64) -> FigureReport {
    let _span = observe_figure("fig11");
    let mut cfg = LectureRunConfig::paper(seed, 80);
    cfg.years = years;
    let result = lecture::run(cfg);
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let (table, mut n) = time_constant_table(&result.arrivals, ByteSize::from_gib(capacity));
        notes.append(&mut n);
        tables.push((format!("{capacity} GiB — time constant estimates"), table));
    }
    notes.push("term breaks make even month-window estimates unstable (§5.2.3)".into());
    FigureReport {
        id: "fig11",
        title: "Palimpsest time constant, lecture capture scenario".into(),
        tables,
        notes,
    }
}

/// Figure 12: storage importance density in the lecture scenario.
pub fn fig12(seed: u64, years: u64) -> FigureReport {
    let _span = observe_figure("fig12");
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let mut cfg = LectureRunConfig::paper(seed, capacity);
        cfg.years = years;
        let result = lecture::run(cfg);
        let column = result.density.bucket_mean(MONTH);
        let summary = result.density.summary().expect("non-empty density series");
        notes.push(format!(
            "{capacity} GiB: density mean {:.3}, peak {:.3}",
            summary.mean, summary.max
        ));
        tables.push((
            format!("{capacity} GiB — monthly mean importance density"),
            merged_table("day", vec![("density".into(), column)], 4),
        ));
    }
    notes.push("as the storage pressure eases (120 GiB), more objects are retained and the average importance density is lower".into());
    FigureReport {
        id: "fig12",
        title: "Instantaneous storage importance density, lecture scenario".into(),
        tables,
        notes,
    }
}

/// §5.3: the university-wide capture summary.
pub fn sec53(seed: u64, years: u64, scale: usize) -> FigureReport {
    let _span = observe_figure("sec53");
    let mut table = Table::new(vec![
        "per-node",
        "nodes",
        "offered TB",
        "capacity TB",
        "pressure",
        "univ accept",
        "student accept",
        "direct stores",
        "mean probes",
        "final density",
    ]);
    let mut notes = Vec::new();
    for capacity in CAPACITIES_GIB {
        let mut cfg = UniversityRunConfig::paper(seed, capacity, scale);
        cfg.years = years;
        let result = university::run(cfg);
        let final_density = result.density.values().last().copied().unwrap_or(0.0);
        let direct =
            result.cluster_stats.direct_stores as f64 / result.cluster_stats.placed.max(1) as f64;
        table.row(vec![
            format!("{capacity} GiB"),
            result.config.nodes.to_string(),
            fmt_f64(result.offered_bytes as f64 / 1e12, 1),
            fmt_f64(result.capacity_bytes as f64 / 1e12, 1),
            fmt_f64(result.pressure(), 2),
            fmt_f64(result.university.acceptance(), 3),
            fmt_f64(result.student.acceptance(), 3),
            fmt_f64(direct, 3),
            fmt_f64(result.mean_probes, 1),
            fmt_f64(final_density, 3),
        ]);
        if capacity == 80 {
            notes.push(format!(
                "80 GiB nodes: student acceptance {:.2} stays below university {:.2} — 'the available storage to student cameras remains small'",
                result.student.acceptance(),
                result.university.acceptance()
            ));
        }
    }
    notes.push(
        "same annotations, more storage → better student persistence (no parameter change needed)"
            .into(),
    );
    if scale > 1 {
        notes.push(format!(
            "run at 1/{scale} scale (courses and nodes both scaled; demand/capacity ratio preserved)"
        ));
    }
    FigureReport {
        id: "sec53",
        title: "University-wide capture on Besteffs (summary, §5.3)".into(),
        tables: vec![("cluster summary".into(), table)],
        notes,
    }
}

/// Beyond-paper: the §5.3 deployment under desktop churn.
///
/// Replays the university workload while seeded availability schedules
/// fail and rejoin nodes, at 0/1/5/10% daily churn. Reports loss rate,
/// delivered density, live fraction, and placement retry inflation.
pub fn availability(seed: u64, years: u64, scale: usize) -> FigureReport {
    let _span = observe_figure("availability");
    const DAILY_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.10];
    let mut table = Table::new(vec![
        "daily churn",
        "failures",
        "rejoins",
        "placed",
        "lost",
        "loss rate",
        "entries purged",
        "surviving names",
        "min live frac",
        "mean density",
        "mean probes",
    ]);
    let mut density_columns = Vec::new();
    let mut notes = Vec::new();
    let mut baseline_probes = 1.0;
    for rate in DAILY_RATES {
        let mut config = availability::AvailabilityRunConfig::daily_churn(seed, 80, scale, rate);
        config.base.years = years;
        let result = availability::run(config);
        table.row(vec![
            format!("{:.0}%", rate * 100.0),
            result.cluster_stats.failed_nodes.to_string(),
            result.cluster_stats.rejoined_nodes.to_string(),
            result.cluster_stats.placed.to_string(),
            result.cluster_stats.objects_lost.to_string(),
            fmt_f64(result.loss_rate(), 4),
            result.cluster_stats.directory_entries_purged.to_string(),
            result.surviving_names.to_string(),
            fmt_f64(result.min_live_fraction(), 3),
            fmt_f64(result.mean_density(), 3),
            fmt_f64(result.mean_probes, 2),
        ]);
        density_columns.push((
            format!("{:.0}%/day", rate * 100.0),
            result.density.bucket_mean(MONTH),
        ));
        if rate == 0.0 {
            baseline_probes = result.mean_probes.max(1.0);
        } else {
            notes.push(format!(
                "{:.0}% daily churn: loss rate {:.4}, probe inflation {:.2}x over the always-up baseline",
                rate * 100.0,
                result.loss_rate(),
                result.mean_probes / baseline_probes
            ));
        }
    }
    notes.push(
        "losses are proportional to resident time under memoryless churn; the directory purge            keeps surviving names consistent with resident objects at every epoch"
            .into(),
    );
    FigureReport {
        id: "availability",
        title: "Availability under churn (beyond-paper, 80 GiB nodes)".into(),
        tables: vec![
            ("churn summary".into(), table),
            (
                "monthly mean delivered density by churn level".into(),
                merged_table("day", density_columns, 4),
            ),
        ],
        notes,
    }
}

/// Decay-shape ablation (§3's open choice of wane function).
pub fn ablate_decay(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("ablate_decay");
    let rows = decay_ablation(seed, ByteSize::from_gib(80), days);
    let mut table = Table::new(vec![
        "shape",
        "rejections",
        "evictions",
        "mean lifetime (d)",
    ]);
    for row in &rows {
        table.row(vec![
            row.shape.label().to_string(),
            row.rejections.to_string(),
            row.evictions.to_string(),
            fmt_f64(row.mean_lifetime_days, 1),
        ]);
    }
    FigureReport {
        id: "ablate-decay",
        title: "Ablation: wane shape (linear vs exponential vs step)".into(),
        tables: vec![(
            "80 GiB, §5.1 workload interleaved with a 0.5-importance competitor class".into(),
            table,
        )],
        notes: vec![
            "homogeneous workloads are shape-invariant (the engine consumes only the importance              ordering, which age determines for any monotone wane); shape matters against              competing importance levels"
                .into(),
            "exponential wane crosses the 0.5 competitor sooner than linear, so its objects              are reclaimed earlier"
                .into(),
            "the hard step never wanes below 0.5: its objects keep full lifetimes but the              shaped class starts rejecting instead"
                .into(),
        ],
    }
}

/// Placement-parameter ablation (§5.3's x and m).
pub fn ablate_placement(seed: u64) -> FigureReport {
    let _span = observe_figure("ablate_placement");
    let sweep = [(1, 1), (2, 1), (4, 1), (8, 1), (8, 3), (16, 3)];
    let rows = placement_ablation(seed, 60, &sweep);
    let mut table = Table::new(vec![
        "x (candidates)",
        "m (tries)",
        "mean victim importance",
        "rejected",
    ]);
    for row in &rows {
        table.row(vec![
            row.candidates.to_string(),
            row.tries.to_string(),
            fmt_f64(row.mean_victim_importance, 3),
            row.rejected.to_string(),
        ]);
    }
    FigureReport {
        id: "ablate-placement",
        title: "Ablation: placement sampling width (x candidates, m tries)".into(),
        tables: vec![("60-node cluster, mixed-importance fill".into(), table)],
        notes: vec!["wider sampling finds less important victims to preempt".into()],
    }
}

/// §6 extension: the sensor node's trigger-driven importance lifecycle.
pub fn sec6_sensor(seed: u64) -> FigureReport {
    let _span = observe_figure("sec6_sensor");
    use crate::sensor::{self, SensorRunConfig};
    use workload::sensor::SensorConfig;

    let base = SensorRunConfig {
        sensor: SensorConfig {
            seed,
            ..SensorConfig::default()
        },
        ..SensorRunConfig::default()
    };
    let outage_start = SimTime::from_days(5);
    let outage = SensorRunConfig {
        outage: Some((outage_start, SimDuration::from_days(3))),
        ..base.clone()
    };

    let mut table = Table::new(vec![
        "scenario",
        "captures",
        "raw lost unprocessed",
        "summaries",
        "acked",
        "lost unacked",
        "mean density",
        "peak pending",
    ]);
    let mut notes = Vec::new();
    for (label, cfg) in [("steady", base), ("3-day uplink outage", outage)] {
        let result = sensor::run(cfg);
        let density = result.density.summary().expect("sampled");
        let peak_pending = result
            .pending_summaries
            .values()
            .iter()
            .copied()
            .fold(0.0, f64::max);
        table.row(vec![
            label.to_string(),
            result.captures.to_string(),
            result.raw_lost_unprocessed.to_string(),
            result.summaries.to_string(),
            result.acked.to_string(),
            result.summaries_lost_unacked.to_string(),
            fmt_f64(density.mean, 3),
            fmt_f64(peak_pending, 0),
        ]);
        if label != "steady" {
            notes.push(format!(
                "outage: pending-summary buffer peaks at {peak_pending:.0} and drains after recovery"
            ));
        }
    }
    notes.push(
        "demand is ~3x capacity, yet zero unprocessed captures are lost — the trigger-based \
         demotion cycle keeps only in-flight data non-preemptible"
            .into(),
    );
    FigureReport {
        id: "sec6-sensor",
        title: "Extension: sensor-node trigger-driven importance (§6)".into(),
        tables: vec![("sensor node, 2 GiB, 14 days".into(), table)],
        notes,
    }
}

/// §1 extension: per-principal fairness budgets over importance-weighted
/// bytes.
pub fn fairness(seed: u64) -> FigureReport {
    let _span = observe_figure("fairness");
    use rand::Rng;
    use sim_core::rng;
    use temporal_importance::{
        FairStore, FairStoreError, Importance, ImportanceCurve, ObjectIdGen, ObjectSpec,
        PrincipalId, StorageUnit,
    };

    // Three users share a 3 GiB disk with 1 GiB weighted budgets each:
    // a greedy user annotating everything at 1.0, an honest user at 0.5,
    // and a bursty cache user at ~0.1.
    let mut store = FairStore::new(
        StorageUnit::new(ByteSize::from_gib(3)),
        ByteSize::from_gib(1),
    );
    let mut ids = ObjectIdGen::new();
    let mut rand = rng::stream(seed, "fairness-demo");
    let users = [
        (PrincipalId::new(1), "greedy (1.0)", 1.0),
        (PrincipalId::new(2), "honest (0.5)", 0.5),
        (PrincipalId::new(3), "cache (0.1)", 0.1),
    ];
    for round in 0..200u64 {
        for &(principal, _, importance) in &users {
            let spec = ObjectSpec::new(
                ids.next_id(),
                ByteSize::from_mib(rand.gen_range(16..64)),
                ImportanceCurve::Fixed {
                    importance: Importance::new_clamped(importance),
                    expiry: SimDuration::from_days(30),
                },
            );
            match store.store(principal, spec, SimTime::from_hours(round)) {
                Ok(_) => {}
                Err(FairStoreError::QuotaExceeded { .. }) => {}
                Err(_) => {}
            }
        }
    }

    let mut table = Table::new(vec![
        "user",
        "accepted",
        "quota refusals",
        "weighted charge (MiB)",
    ]);
    let mut notes = Vec::new();
    for &(principal, label, _) in &users {
        let usage = store.usage(principal);
        table.row(vec![
            label.to_string(),
            usage.accepted.to_string(),
            usage.quota_refusals.to_string(),
            fmt_f64(usage.charged as f64 / (1024.0 * 1024.0), 0),
        ]);
    }
    let greedy = store.usage(PrincipalId::new(1));
    let honest = store.usage(PrincipalId::new(2));
    notes.push(format!(
        "equal budgets: the honest 0.5-importance user stores ~{}x the objects of the greedy 1.0 user",
        (honest.accepted as f64 / greedy.accepted.max(1) as f64).round()
    ));
    notes.push(
        "charging importance-weighted bytes removes the incentive to 'request infinite lifetime' (§1)"
            .into(),
    );
    FigureReport {
        id: "fairness",
        title: "Extension: per-principal importance-weighted budgets (§1)".into(),
        tables: vec![("3 GiB disk, 1 GiB weighted budget each".into(), table)],
        notes,
    }
}

/// §5.1.2 extension: the annotation advisor closing the feedback loop.
pub fn advisor(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("advisor");
    use temporal_importance::{Advisor, Forecast, Importance, ImportanceCurve};

    // Take the §5.1 temporal-importance run and consult the advisor at a
    // few points along the way.
    let mut cfg = SingleClassConfig::paper(seed, 80, PolicyChoice::TemporalImportance);
    cfg.days = days;
    cfg.snapshot_density = Some(0.8369);
    let result = single_class::run(cfg);
    let snapshot = result
        .snapshot
        .expect("the 0.8369 density band is crossed under pressure");
    let advisor = Advisor::from_snapshot(snapshot.clone());

    // (a) The admission boundary is size-aware: bigger objects must
    // displace deeper into the importance histogram.
    let mut thresholds = Table::new(vec!["object size", "admission threshold"]);
    for gib in [1u64, 4, 8, 16, 32, 64] {
        let size = ByteSize::from_gib(gib);
        thresholds.row(vec![
            size.to_string(),
            fmt_f64(advisor.admission_threshold_for(size).value(), 3),
        ]);
    }

    // (b) Survival forecasts for a large (8 GiB) batch at various
    // requested plateaus.
    let batch = ByteSize::from_gib(8);
    let mut forecasts = Table::new(vec![
        "requested plateau",
        "forecast",
        "expected survival (days)",
    ]);
    for plateau in [1.0, 0.8, 0.6, 0.4, 0.2] {
        let curve = ImportanceCurve::two_step(
            Importance::new_clamped(plateau),
            SimDuration::from_days(15),
            SimDuration::from_days(15),
        );
        let (verdict, survival) = match advisor.forecast(&curve, batch) {
            Forecast::Admitted { expected_survival } => (
                "admitted",
                expected_survival
                    .map(|d| fmt_f64(d.as_days_f64(), 1))
                    .unwrap_or_else(|| "full lifetime".into()),
            ),
            Forecast::Rejected { .. } => ("rejected", "-".into()),
            _ => ("unknown", "-".into()),
        };
        forecasts.row(vec![fmt_f64(plateau, 1), verdict.into(), survival]);
    }
    let suggestion = advisor.min_plateau_for(
        batch,
        SimDuration::from_days(15),
        SimDuration::from_days(15),
        SimDuration::from_days(20),
    );
    FigureReport {
        id: "advisor",
        title: "Extension: annotation advisor on the Figure 7 snapshot (§5.1.2)".into(),
        tables: vec![
            (
                format!(
                    "admission threshold by size, density {:.4}",
                    snapshot.density
                ),
                thresholds,
            ),
            ("8 GiB batch forecast by plateau".into(), forecasts),
        ],
        notes: vec![
            match suggestion {
                Some(p) => {
                    format!("to keep an 8 GiB batch for 20 days, request a plateau of at least {p}")
                }
                None => "no plateau can keep an 8 GiB batch for 20 days right now".into(),
            },
            "\"the difference between the storage density and the object importance gives some \
             indication of the object longevity\" — quantified"
                .into(),
        ],
    }
}

/// Follow-up study (§1): simultaneous different applications sharing one
/// storage unit.
pub fn mixed_apps(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("mixed_apps");
    use crate::mixed::{self, MixedRunConfig};

    let result = mixed::run(MixedRunConfig {
        seed,
        days,
        ..MixedRunConfig::default()
    });

    let mut table = Table::new(vec![
        "application",
        "offered",
        "accepted",
        "rejected",
        "evicted",
        "mean lifetime (d)",
        "mean eviction importance",
        "final resident",
    ]);
    for app in &result.apps {
        table.row(vec![
            app.name.clone(),
            app.offered.to_string(),
            app.accepted.to_string(),
            app.rejected.to_string(),
            app.evicted.to_string(),
            fmt_f64(app.mean_lifetime_days, 1),
            fmt_f64(app.mean_eviction_importance, 3),
            app.final_resident.to_string(),
        ]);
    }
    let density_peak = result.density.values().iter().copied().fold(0.0, f64::max);
    FigureReport {
        id: "mixed-apps",
        title: "Follow-up: simultaneous applications vying for one unit (§1)".into(),
        tables: vec![("120 GiB shared unit".into(), table)],
        notes: vec![
            "archive and backup keep near-full acceptance; the ephemeral cache absorbs the pressure"
                .into(),
            "backup's fixed curve guarantees its 30 days; archive is reclaimed only after waning"
                .into(),
            format!("shared importance density peaks at {density_peak:.3}"),
        ],
    }
}

/// §5.1.2's "wake up later than necessary" risk, quantified: forecast
/// quality of the Palimpsest time constant by analysis window and history.
pub fn predictability(seed: u64, days: u64) -> FigureReport {
    let _span = observe_figure("predictability");
    use analysis::predict::rolling_mean_report;

    let mut cfg = SingleClassConfig::paper(seed, 80, PolicyChoice::TemporalImportance);
    cfg.days = days;
    let result = single_class::run(cfg);

    let mut table = Table::new(vec![
        "window",
        "history",
        "forecasts",
        "mean |rel err|",
        "p90 |rel err|",
        "oversleep fraction",
        "mean oversleep margin",
    ]);
    let mut notes = Vec::new();
    for (label, window) in [
        ("hour", SimDuration::HOUR),
        ("day", SimDuration::DAY),
        ("month", MONTH),
    ] {
        let series = TimeConstantEstimator::new(ByteSize::from_gib(80), window)
            .estimate(result.arrivals.iter().copied());
        for history in [1usize, 7, 30] {
            let Some(report) = rolling_mean_report(&series, history) else {
                continue;
            };
            table.row(vec![
                label.to_string(),
                history.to_string(),
                report.forecasts.to_string(),
                fmt_f64(report.mean_abs_rel_error, 3),
                fmt_f64(report.p90_abs_rel_error, 3),
                fmt_f64(report.oversleep_fraction, 3),
                fmt_f64(report.mean_oversleep_margin, 3),
            ]);
            if label == "day" && history == 7 {
                notes.push(format!(
                    "a day-window app with a week of history oversleeps {:.0}% of the time",
                    100.0 * report.oversleep_fraction
                ));
            }
        }
    }
    notes.push(
        "the ramping arrival rate keeps shrinking tau, so every rolling-mean forecaster \
         systematically wakes up late — the §5.1.2 failure mode"
            .into(),
    );
    FigureReport {
        id: "predictability",
        title: "Extension: Palimpsest rejuvenation-forecast risk (§5.1.2)".into(),
        tables: vec![("80 GiB, §5.1 workload".into(), table)],
        notes,
    }
}

/// Counts figure regenerations in the process-global observer (a no-op
/// unless a registry is installed; compiled out under `obs-off`). The
/// figure id doubles as the metric name, so `repro`'s per-phase report
/// shows exactly which figures ran. The returned span times the figure's
/// whole body under the same id — bind it with `let _span = ...` so it
/// drops when the figure function returns.
fn observe_figure(id: &'static str) -> sim_core::Span {
    let obs = sim_core::Obs::global();
    obs.counter("experiment.figures", 1);
    obs.counter(id, 1);
    obs.span(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure functions are exercised end-to-end by the integration tests
    // and the repro binary; here we keep fast smoke checks on the cheap
    // ones.

    #[test]
    fn fig2_reports_a_year_of_demand() {
        let report = fig2(1);
        assert_eq!(report.id, "fig2");
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].1.len(), 12);
        let text = report.to_string();
        assert!(text.contains("cumulative GiB"));
    }

    #[test]
    fn table1_matches_paper_constants() {
        let report = table1();
        let text = report.to_string();
        assert!(text.contains("spring"));
        assert!(text.contains("120 - today"));
        assert!(text.contains("730"));
        assert!(text.contains("850"));
    }

    #[test]
    fn fig8_renders_weeks() {
        let report = fig8(1);
        assert_eq!(report.tables[0].1.len(), 20);
        assert!(report.to_string().contains("slashdot"));
    }

    #[test]
    fn merged_table_aligns_sparse_columns() {
        let a = vec![(SimTime::from_days(0), 1.0), (SimTime::from_days(30), 2.0)];
        let b = vec![(SimTime::from_days(30), 5.0)];
        let table = merged_table("day", vec![("a".into(), a), ("b".into(), b)], 1);
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        // Header + rule + two data rows.
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains('-'), "missing cell must render as -");
    }
}
