//! Simultaneous different applications vying for one storage unit — the
//! follow-up study §1 defers ("we leave the study of simultaneous and
//! different applications vying for storage to follow up work").
//!
//! Three applications share a desktop disk:
//!
//! * **archive** — a lecture-style archive with long two-step lifetimes
//!   (high plateau, long wane),
//! * **backup** — §5.1-style rolling backups (full importance, 30-day
//!   expiry, fixed curve),
//! * **cache** — ephemeral web-cache data (importance zero).
//!
//! The questions mirror §4.2: does each application get behaviour
//! consistent with its annotations, does the cache class soak up exactly
//! the slack left by the important classes, and does the storage
//! importance density still predict each class's fate?

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration, SimTime};
use temporal_importance::{
    EvictionReason, Importance, ImportanceCurve, ObjectClass, ObjectIdGen, ObjectSpec, StorageUnit,
    StoreError,
};

use analysis::TimeSeries;
use rand::Rng;

/// Class tag for the archive application.
pub const CLASS_ARCHIVE: ObjectClass = ObjectClass::new(10);

/// Class tag for the backup application.
pub const CLASS_BACKUP: ObjectClass = ObjectClass::new(11);

/// Class tag for the cache application.
pub const CLASS_CACHE: ObjectClass = ObjectClass::new(12);

/// Per-application traffic and annotation shape.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Class tag.
    pub class: ObjectClass,
    /// Human label.
    pub name: &'static str,
    /// Objects per day.
    pub daily_objects: u64,
    /// Object size range in MiB (uniform).
    pub size_mib: (u64, u64),
    /// The annotation every object of this app carries.
    pub curve: ImportanceCurve,
}

/// The default three-application mix.
pub fn default_profiles() -> Vec<AppProfile> {
    vec![
        AppProfile {
            class: CLASS_ARCHIVE,
            name: "archive",
            daily_objects: 1,
            size_mib: (300, 500),
            curve: ImportanceCurve::two_step(
                Importance::FULL,
                SimDuration::from_days(90),
                SimDuration::from_days(365),
            ),
        },
        AppProfile {
            class: CLASS_BACKUP,
            name: "backup",
            daily_objects: 4,
            size_mib: (100, 300),
            curve: ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
        },
        AppProfile {
            class: CLASS_CACHE,
            name: "cache",
            daily_objects: 40,
            size_mib: (5, 60),
            curve: ImportanceCurve::Ephemeral,
        },
    ]
}

/// Configuration of a mixed-application run.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRunConfig {
    /// Workload seed.
    pub seed: u64,
    /// Simulated days.
    pub days: u64,
    /// Shared unit capacity.
    pub capacity: ByteSize,
    /// The applications sharing the unit.
    pub profiles: Vec<AppProfile>,
}

impl Default for MixedRunConfig {
    fn default() -> Self {
        MixedRunConfig {
            seed: 0,
            days: 365,
            capacity: ByteSize::from_gib(120),
            profiles: default_profiles(),
        }
    }
}

/// Per-application outcome of a mixed run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// App label.
    pub name: String,
    /// Objects offered.
    pub offered: u64,
    /// Objects accepted.
    pub accepted: u64,
    /// Objects rejected (unit full for their importance).
    pub rejected: u64,
    /// Preemption evictions suffered.
    pub evicted: u64,
    /// Mean achieved lifetime of evicted objects, in days.
    pub mean_lifetime_days: f64,
    /// Mean importance at eviction.
    pub mean_eviction_importance: f64,
    /// Resident bytes at the end of the run.
    pub final_resident: ByteSize,
}

impl AppOutcome {
    /// Fraction of offered objects accepted.
    pub fn acceptance(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.accepted as f64 / self.offered as f64
        }
    }
}

/// Result of a mixed-application run.
#[derive(Debug, Clone)]
pub struct MixedRunResult {
    /// Per-application outcomes in profile order.
    pub apps: Vec<AppOutcome>,
    /// Daily storage importance density.
    pub density: TimeSeries,
    /// Daily resident-byte fraction per class, in profile order.
    pub residency: Vec<TimeSeries>,
}

impl MixedRunResult {
    /// Looks up an application outcome by name.
    pub fn app(&self, name: &str) -> Option<&AppOutcome> {
        self.apps.iter().find(|a| a.name == name)
    }
}

/// Runs the mixed-application experiment.
pub fn run(config: MixedRunConfig) -> MixedRunResult {
    sim_core::Obs::global().counter("experiment.mixed.runs", 1);
    let _span = sim_core::Obs::global().span("span.experiment.mixed");
    let mut rand = sim_core::rng::stream(config.seed, "mixed-apps");
    let mut unit = StorageUnit::new(config.capacity);
    let mut ids = ObjectIdGen::new();

    let mut density = TimeSeries::new();
    let mut residency: Vec<TimeSeries> =
        config.profiles.iter().map(|_| TimeSeries::new()).collect();
    let mut offered = vec![0u64; config.profiles.len()];
    let mut accepted = vec![0u64; config.profiles.len()];
    let mut rejected = vec![0u64; config.profiles.len()];

    for day in 0..config.days {
        let midnight = SimTime::from_days(day);
        // Sample state at each midnight.
        unit.advance(midnight);
        density.push(midnight, unit.importance_density(midnight));
        for (i, profile) in config.profiles.iter().enumerate() {
            let bytes: ByteSize = unit
                .iter()
                .filter(|o| o.class() == profile.class)
                .map(|o| o.size())
                .sum();
            residency[i].push(midnight, bytes.ratio(config.capacity));
        }

        // Interleave the day's arrivals across apps at random minutes.
        let mut day_arrivals: Vec<(SimTime, usize)> = Vec::new();
        for (i, profile) in config.profiles.iter().enumerate() {
            for _ in 0..profile.daily_objects {
                let minute = rand.gen_range(0..24 * 60);
                day_arrivals.push((midnight + SimDuration::from_minutes(minute), i));
            }
        }
        day_arrivals.sort();

        for (at, i) in day_arrivals {
            let profile = &config.profiles[i];
            offered[i] += 1;
            let size = ByteSize::from_mib(rand.gen_range(profile.size_mib.0..=profile.size_mib.1));
            let spec = ObjectSpec::new(ids.next_id(), size, profile.curve.clone())
                .with_class(profile.class);
            match unit.store(spec, at) {
                Ok(_) => accepted[i] += 1,
                Err(StoreError::Full { .. }) => rejected[i] += 1,
                Err(e) => panic!("unexpected store error: {e}"),
            }
        }
    }

    let end = SimTime::from_days(config.days);
    let evictions = unit.take_evictions();
    let apps = config
        .profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let evicted: Vec<_> = evictions
                .iter()
                .filter(|e| e.class == profile.class && e.reason == EvictionReason::Preempted)
                .collect();
            let mean_lifetime_days =
                mean(evicted.iter().map(|e| e.lifetime_achieved().as_days_f64()));
            let mean_eviction_importance =
                mean(evicted.iter().map(|e| e.importance_at_eviction.value()));
            AppOutcome {
                name: profile.name.to_string(),
                offered: offered[i],
                accepted: accepted[i],
                rejected: rejected[i],
                evicted: evicted.len() as u64,
                mean_lifetime_days,
                mean_eviction_importance,
                final_resident: unit
                    .iter()
                    .filter(|o| o.class() == profile.class)
                    .map(|o| o.size())
                    .sum(),
            }
        })
        .collect();
    let _ = end;

    MixedRunResult {
        apps,
        density,
        residency,
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MixedRunResult {
        run(MixedRunConfig {
            seed: 9,
            days: 300,
            ..MixedRunConfig::default()
        })
    }

    #[test]
    fn important_classes_are_served_before_the_cache() {
        let result = quick();
        let archive = result.app("archive").unwrap();
        let backup = result.app("backup").unwrap();
        let cache = result.app("cache").unwrap();
        // Archive and backup keep near-full acceptance; the cache absorbs
        // the rejections (its ephemeral objects can't preempt anything).
        assert!(
            archive.acceptance() > 0.95,
            "archive {:.2}",
            archive.acceptance()
        );
        assert!(
            backup.acceptance() > 0.95,
            "backup {:.2}",
            backup.acceptance()
        );
        assert!(
            cache.acceptance() < archive.acceptance(),
            "cache {:.2} not below archive {:.2}",
            cache.acceptance(),
            archive.acceptance()
        );
    }

    #[test]
    fn backup_objects_get_their_thirty_days() {
        let result = quick();
        let backup = result.app("backup").unwrap();
        // Fixed-curve backups are only evictable after expiry, so any
        // eviction shows at least the requested 30 days.
        if backup.evicted > 0 {
            assert!(
                backup.mean_lifetime_days >= 30.0,
                "backup lifetime {:.1}",
                backup.mean_lifetime_days
            );
        }
    }

    #[test]
    fn cache_occupies_only_the_slack() {
        let result = quick();
        // Once the disk is under pressure, the ephemeral class's resident
        // share shrinks as the important classes grow.
        let cache_share = &result.residency[2];
        let early = cache_share.value_at(SimTime::from_days(20)).unwrap();
        let late = cache_share.value_at(SimTime::from_days(290)).unwrap();
        assert!(
            late <= early + 0.05,
            "cache share grew under pressure: {early:.3} → {late:.3}"
        );
        // Density approaches saturation as the durable classes fill in.
        let peak = result.density.values().iter().copied().fold(0.0, f64::max);
        assert!(peak > 0.5, "density peak {peak:.3}");
    }

    #[test]
    fn archive_evictions_happen_at_low_importance_only() {
        let result = quick();
        let archive = result.app("archive").unwrap();
        if archive.evicted > 0 {
            assert!(
                archive.mean_eviction_importance < 0.7,
                "archive evicted while still important: {:.2}",
                archive.mean_eviction_importance
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = quick();
        let b = quick();
        assert_eq!(a.apps, b.apps);
    }
}
