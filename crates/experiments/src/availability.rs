//! Availability under churn: the §5.3 deployment on flaky desktops.
//!
//! The paper evaluates the university-wide capture on an always-up fleet,
//! but its target hardware is ~2,000 *desktops*. This experiment replays
//! the same workload while a seeded [`AvailabilitySchedule`] fails and
//! rejoins nodes through the sim-core event loop, measuring what churn
//! actually costs: delivered importance density, object loss rate, and
//! placement retry inflation (walks that must route around dead nodes).
//!
//! Everything is deterministic — the same seed yields byte-identical
//! results, churn schedules included.

use besteffs::churn::{AvailabilitySchedule, ChurnDriver, ChurnSchedule};
use besteffs::{Besteffs, ClusterStats, Directory, ObjectName, PlacementError};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use sim_core::{rng, SimDuration, SimTime};
use workload::university::{UniversityCapture, UniversityConfig};

use analysis::TimeSeries;

use crate::university::{ClassOutcome, UniversityRunConfig};

/// Configuration of one churn run: the §5.3 deployment plus an
/// availability model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityRunConfig {
    /// The underlying §5.3 deployment (nodes, capacity, placement, seed).
    pub base: UniversityRunConfig,
    /// The availability model driving fail/rejoin events.
    pub schedule: AvailabilitySchedule,
}

impl AvailabilityRunConfig {
    /// The paper's deployment under a memoryless `daily_rate` churn
    /// (each node fails with that probability per simulated day and stays
    /// down for half a day on average). Rate 0 reproduces the always-up
    /// baseline.
    pub fn daily_churn(seed: u64, capacity_gib: u64, scale: usize, daily_rate: f64) -> Self {
        AvailabilityRunConfig {
            base: UniversityRunConfig::paper(seed, capacity_gib, scale),
            schedule: AvailabilitySchedule::daily_churn(daily_rate, SimDuration::from_hours(12)),
        }
    }
}

/// Results of a churn run.
#[derive(Debug, Clone)]
pub struct AvailabilityRunResult {
    /// The configuration that produced this result.
    pub config: AvailabilityRunConfig,
    /// University-camera placement accounting.
    pub university: ClassOutcome,
    /// Student-camera placement accounting.
    pub student: ClassOutcome,
    /// Weekly delivered importance-density samples (live capacity only).
    pub density: TimeSeries,
    /// Weekly live-node fraction samples.
    pub live_fraction: TimeSeries,
    /// Placement probes used per placed object (mean).
    pub mean_probes: f64,
    /// Cluster counters (failures, losses, purges, rejoins).
    pub cluster_stats: ClusterStats,
    /// Names that survived in the directory at the end of the run.
    pub surviving_names: u64,
    /// Names ever published.
    pub published_names: u64,
}

impl AvailabilityRunResult {
    /// Fraction of placed objects lost to node failures.
    pub fn loss_rate(&self) -> f64 {
        if self.cluster_stats.placed == 0 {
            0.0
        } else {
            self.cluster_stats.objects_lost as f64 / self.cluster_stats.placed as f64
        }
    }

    /// Mean delivered density over the run.
    pub fn mean_density(&self) -> f64 {
        self.density.summary().map_or(0.0, |s| s.mean)
    }

    /// Lowest weekly live-node fraction observed.
    pub fn min_live_fraction(&self) -> f64 {
        self.live_fraction
            .values()
            .iter()
            .copied()
            .fold(1.0, f64::min)
    }
}

/// Runs the §5.3 workload under the configured availability schedule.
pub fn run(config: AvailabilityRunConfig) -> AvailabilityRunResult {
    sim_core::Obs::global().counter("experiment.availability.runs", 1);
    let _span = sim_core::Obs::global().span("span.experiment.availability");
    let base = &config.base;
    let mut rand: StdRng = rng::stream(base.seed, "university-placement");
    let mut cluster = Besteffs::builder(base.nodes, base.node_capacity)
        .placement(base.placement)
        .build(&mut rand);
    let mut directory = Directory::new();
    let horizon = SimTime::ZERO + SimDuration::YEAR.mul(base.years);
    // The churn stream is independent of the placement stream, so the
    // zero-churn run consumes the workload RNG identically to the
    // churn-free university experiment.
    let schedule = ChurnSchedule::generate(base.nodes, horizon, &config.schedule, base.seed);
    let mut churn = ChurnDriver::new(schedule);

    let workload_cfg = UniversityConfig {
        seed: base.seed,
        ..UniversityConfig::default()
    }
    .scaled_down(base.scale);

    let mut ids = temporal_importance::ObjectIdGen::new();
    let mut university = ClassOutcome::default();
    let mut student = ClassOutcome::default();
    let mut density = TimeSeries::new();
    let mut live_fraction = TimeSeries::new();
    let mut next_sample = SimTime::ZERO;
    let mut probes = 0u64;
    let mut published_names = 0u64;

    for arrival in UniversityCapture::new(workload_cfg, base.years) {
        while next_sample <= arrival.at {
            churn.advance(next_sample, &mut cluster, &mut directory);
            cluster.advance(next_sample);
            density.push(next_sample, cluster.importance_density(next_sample));
            live_fraction.push(
                next_sample,
                cluster.live_nodes() as f64 / cluster.len() as f64,
            );
            next_sample += base.sample_every;
        }
        churn.advance(arrival.at, &mut cluster, &mut directory);
        let at = arrival.at;
        let size = arrival.size;
        let class = arrival.class;
        let spec = arrival.into_spec(&mut ids);
        let object = spec.id();
        let stats = if class == workload::CLASS_UNIVERSITY {
            &mut university
        } else {
            &mut student
        };
        stats.offered += 1;
        match cluster.place(spec, at, &mut rand) {
            Ok(placed) => {
                stats.placed += 1;
                stats.bytes_placed += size.as_bytes();
                probes += placed.probed as u64;
                published_names += 1;
                directory.publish_on(
                    ObjectName::new(format!("capture-{published_names}")),
                    object,
                    placed.node,
                    cluster.incarnation(placed.node),
                );
            }
            Err(PlacementError::ClusterFull { .. }) => {
                stats.rejected += 1;
            }
            Err(PlacementError::NoLiveNodes) => {
                // The whole fleet is down; the capture is dropped.
                stats.rejected += 1;
            }
            Err(e) => panic!("unexpected placement error: {e}"),
        }
    }
    // Drain any churn scheduled after the last arrival so the loss
    // accounting covers the full horizon.
    churn.advance(horizon, &mut cluster, &mut directory);

    let placed_total = cluster.stats().placed.max(1);
    AvailabilityRunResult {
        university,
        student,
        density,
        live_fraction,
        mean_probes: probes as f64 / placed_total as f64,
        cluster_stats: *cluster.stats(),
        surviving_names: directory.len() as u64,
        published_names,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(daily_rate: f64) -> AvailabilityRunResult {
        let mut config = AvailabilityRunConfig::daily_churn(2, 80, 80, daily_rate);
        config.base.years = 1;
        run(config)
    }

    #[test]
    fn zero_churn_matches_the_baseline_run() {
        let churned = quick(0.0);
        assert_eq!(churned.cluster_stats.failed_nodes, 0);
        assert_eq!(churned.cluster_stats.objects_lost, 0);
        assert_eq!(churned.loss_rate(), 0.0);
        assert_eq!(churned.min_live_fraction(), 1.0);

        // The always-up churn run places exactly what the churn-free
        // university driver places: the schedule draws from its own RNG
        // stream and never perturbs placement.
        let mut base_cfg = UniversityRunConfig::paper(2, 80, 80);
        base_cfg.years = 1;
        let baseline = crate::university::run(base_cfg);
        assert_eq!(churned.university.placed, baseline.university.placed);
        assert_eq!(churned.student.placed, baseline.student.placed);
        assert_eq!(
            churned.cluster_stats.rejected,
            baseline.cluster_stats.rejected
        );
    }

    #[test]
    fn churn_loses_objects_and_purges_their_entries() {
        let result = quick(0.10);
        assert!(result.cluster_stats.failed_nodes > 0);
        assert!(result.cluster_stats.rejoined_nodes > 0);
        assert!(result.cluster_stats.objects_lost > 0);
        assert!(result.loss_rate() > 0.0);
        assert!(result.min_live_fraction() < 1.0);
        // Every lost object's entry left the directory with it.
        assert_eq!(
            result.surviving_names,
            result.published_names - result.cluster_stats.directory_entries_purged
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let key = |r: &AvailabilityRunResult| {
            (
                r.cluster_stats.placed,
                r.cluster_stats.objects_lost,
                r.cluster_stats.directory_entries_purged,
                r.surviving_names,
            )
        };
        assert_eq!(key(&quick(0.05)), key(&quick(0.05)));
    }

    #[test]
    fn more_churn_means_more_loss() {
        let light = quick(0.01);
        let heavy = quick(0.10);
        assert!(heavy.cluster_stats.failed_nodes > light.cluster_stats.failed_nodes);
        assert!(heavy.loss_rate() > light.loss_rate());
    }
}
