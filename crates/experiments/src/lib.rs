//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each paper artifact has a driver that runs the corresponding simulation
//! and a formatter that prints the series the paper plots. See DESIGN.md's
//! experiment index for the mapping, and EXPERIMENTS.md for the measured
//! results.
//!
//! | Paper artifact | Module / function |
//! |----------------|-------------------|
//! | Figure 2 (storage requirements) | [`figures::fig2`] |
//! | Figure 3 (lifetimes achieved) | [`figures::fig3`] |
//! | Figure 4 (requests turned down) | [`figures::fig4`] |
//! | Figure 5 (time constant) | [`figures::fig5`] |
//! | Figure 6 (importance density) | [`figures::fig6`] |
//! | Figure 7 (byte-importance CDF) | [`figures::fig7`] |
//! | Table 1 (lecture lifetimes) | [`figures::table1`] |
//! | Figure 8 (lecture downloads) | [`figures::fig8`] |
//! | Figure 9 (lecture lifetimes achieved) | [`figures::fig9`] |
//! | Figure 10 (importance at reclamation) | [`figures::fig10`] |
//! | Figure 11 (lecture time constant) | [`figures::fig11`] |
//! | Figure 12 (lecture importance density) | [`figures::fig12`] |
//! | §5.3 summary (university-wide) | [`figures::sec53`] |
//! | Decay-shape ablation (§3) | [`figures::ablate_decay`] |
//! | Placement-parameter ablation (§5.3) | [`figures::ablate_placement`] |
//! | Availability under churn (beyond-paper) | [`figures::availability`] |

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ablation;
pub mod availability;
pub mod figures;
pub mod lecture;
pub mod mixed;
pub mod sensor;
pub mod single_class;
pub mod university;

pub use single_class::PolicyChoice;

/// The default seed used by the `repro` binary and the integration tests.
pub const DEFAULT_SEED: u64 = 20070625; // ICDCS 2007 opened June 25.
