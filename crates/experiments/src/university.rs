//! The §5.3 university-wide experiment driver.
//!
//! A Besteffs cluster stores the whole university's capture stream using
//! the random-walk placement algorithm. The paper summarizes (rather than
//! plots) this scenario: demand (~300 TB/yr) exceeds capacity (160/240 TB),
//! student cameras stay squeezed out until more storage arrives, and the
//! average importance density remains the useful feedback signal — all
//! without changing any lifetime annotation.

use besteffs::{Besteffs, ClusterStats, PlacementConfig, PlacementError};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use sim_core::{rng, ByteSize, SimDuration, SimTime};
use temporal_importance::ObjectClass;
use workload::university::{UniversityCapture, UniversityConfig};
use workload::{CLASS_STUDENT, CLASS_UNIVERSITY};

use analysis::TimeSeries;

/// Configuration of a §5.3 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniversityRunConfig {
    /// Workload/placement seed.
    pub seed: u64,
    /// Simulated years.
    pub years: u64,
    /// Number of storage nodes (paper: 2,000).
    pub nodes: usize,
    /// Per-node capacity (paper: 80 GB and 120 GB).
    pub node_capacity: ByteSize,
    /// Scale-down factor applied to both course count and node count,
    /// preserving the demand-to-capacity ratio. 1 = the paper's full
    /// deployment.
    pub scale: usize,
    /// Placement parameters (x candidates, m tries).
    pub placement: PlacementConfig,
    /// Cluster-density sampling interval.
    pub sample_every: SimDuration,
}

impl UniversityRunConfig {
    /// The paper's deployment at a given scale-down factor and per-node
    /// capacity in GiB. Scale 10 (200 nodes, ~232 courses) runs on a
    /// laptop in seconds and preserves the demand/capacity ratio.
    pub fn paper(seed: u64, capacity_gib: u64, scale: usize) -> Self {
        assert!(scale > 0, "scale factor must be positive");
        UniversityRunConfig {
            seed,
            years: 2,
            nodes: (2000 / scale).max(3),
            node_capacity: ByteSize::from_gib(capacity_gib),
            scale,
            placement: PlacementConfig::default(),
            sample_every: SimDuration::from_days(7),
        }
    }
}

/// Per-class placement accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassOutcome {
    /// Arrivals offered to the cluster.
    pub offered: u64,
    /// Arrivals placed.
    pub placed: u64,
    /// Arrivals rejected (cluster full for their importance).
    pub rejected: u64,
    /// Bytes placed.
    pub bytes_placed: u64,
}

impl ClassOutcome {
    /// Fraction of offered arrivals that were placed.
    pub fn acceptance(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.placed as f64 / self.offered as f64
        }
    }
}

/// Results of a §5.3 run.
#[derive(Debug, Clone)]
pub struct UniversityRunResult {
    /// The configuration that produced this result.
    pub config: UniversityRunConfig,
    /// University-camera placement accounting.
    pub university: ClassOutcome,
    /// Student-camera placement accounting.
    pub student: ClassOutcome,
    /// Weekly cluster-wide importance-density samples.
    pub density: TimeSeries,
    /// Placement probes used per placed object (mean).
    pub mean_probes: f64,
    /// Cluster counters.
    pub cluster_stats: ClusterStats,
    /// Total demand offered over the run.
    pub offered_bytes: u64,
    /// Live cluster capacity.
    pub capacity_bytes: u64,
}

impl UniversityRunResult {
    /// Demand-to-capacity ratio over the whole run.
    pub fn pressure(&self) -> f64 {
        self.offered_bytes as f64 / self.capacity_bytes as f64
    }
}

/// Runs the §5.3 experiment.
pub fn run(config: UniversityRunConfig) -> UniversityRunResult {
    let obs = sim_core::Obs::global();
    obs.counter("experiment.university.runs", 1);
    let mut span = obs.span("span.experiment.university");
    let mut rand: StdRng = rng::stream(config.seed, "university-placement");
    let mut cluster = Besteffs::builder(config.nodes, config.node_capacity)
        .placement(config.placement)
        .build(&mut rand);
    let workload_cfg = UniversityConfig {
        seed: config.seed,
        ..UniversityConfig::default()
    }
    .scaled_down(config.scale);

    let mut ids = temporal_importance::ObjectIdGen::new();
    let mut university = ClassOutcome::default();
    let mut student = ClassOutcome::default();
    let mut density = TimeSeries::new();
    let mut next_sample = SimTime::ZERO;
    let mut offered_bytes = 0u64;
    let mut probes = 0u64;

    for arrival in UniversityCapture::new(workload_cfg, config.years) {
        while next_sample <= arrival.at {
            cluster.advance(next_sample);
            // `observe_density` also emits per-node `cluster.node` events
            // and a `cluster.density` rollup when an observer is attached.
            density.push(next_sample, cluster.observe_density(next_sample));
            span.sim_to(next_sample);
            next_sample += config.sample_every;
        }
        offered_bytes += arrival.size.as_bytes();
        let at = arrival.at;
        let size = arrival.size;
        let class = arrival.class;
        let spec = arrival.into_spec(&mut ids);
        let stats = tally_for(class, &mut university, &mut student);
        stats.offered += 1;
        match cluster.place(spec, at, &mut rand) {
            Ok(placed) => {
                stats.placed += 1;
                stats.bytes_placed += size.as_bytes();
                probes += placed.probed as u64;
            }
            Err(PlacementError::ClusterFull { .. }) => {
                stats.rejected += 1;
            }
            Err(e) => panic!("unexpected placement error: {e}"),
        }
    }

    let placed_total = cluster.stats().placed.max(1);
    UniversityRunResult {
        university,
        student,
        density,
        mean_probes: probes as f64 / placed_total as f64,
        cluster_stats: *cluster.stats(),
        offered_bytes,
        capacity_bytes: cluster.capacity().as_bytes(),
        config,
    }
}

fn tally_for<'a>(
    class: ObjectClass,
    university: &'a mut ClassOutcome,
    student: &'a mut ClassOutcome,
) -> &'a mut ClassOutcome {
    if class == CLASS_UNIVERSITY {
        university
    } else {
        debug_assert_eq!(class, CLASS_STUDENT);
        student
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(capacity_gib: u64) -> UniversityRunResult {
        let mut cfg = UniversityRunConfig::paper(2, capacity_gib, 40);
        cfg.years = 2;
        run(cfg)
    }

    #[test]
    fn demand_exceeds_capacity_at_80_gib_nodes() {
        let result = quick(80);
        assert!(
            result.pressure() > 1.0,
            "no storage pressure: {:.2}",
            result.pressure()
        );
        // Offered more than placed.
        assert!(result.cluster_stats.rejected > 0);
    }

    #[test]
    fn students_are_squeezed_out_before_university_cameras() {
        let result = quick(80);
        assert!(
            result.university.acceptance() > result.student.acceptance(),
            "university {:.2} vs student {:.2}",
            result.university.acceptance(),
            result.student.acceptance()
        );
    }

    #[test]
    fn more_storage_helps_students_without_changing_annotations() {
        let small = quick(80);
        let large = quick(120);
        assert!(
            large.student.acceptance() > small.student.acceptance(),
            "student acceptance {:.2} → {:.2}",
            small.student.acceptance(),
            large.student.acceptance()
        );
    }

    #[test]
    fn density_saturates_under_pressure() {
        let result = quick(80);
        let peak = result.density.values().iter().copied().fold(0.0, f64::max);
        assert!(peak > 0.6, "cluster density peak {peak}");
        assert!(result
            .density
            .values()
            .iter()
            .all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn placement_probes_are_bounded_by_config() {
        let result = quick(80);
        let max =
            (result.config.placement.candidates_per_try * result.config.placement.max_tries) as f64;
        assert!(result.mean_probes <= max);
        assert!(result.mean_probes >= 1.0);
    }
}
