//! Deterministic node churn and fault injection.
//!
//! The paper's §5.3 deployment targets ~2,000 *desktops* — the churniest
//! hardware class there is — yet evaluates placement on an always-up
//! fleet. This module closes that gap with seeded availability schedules
//! that drive [`Besteffs::fail_node_purging`] / [`Besteffs::rejoin_node`]
//! transitions through the `sim-core` event loop:
//!
//! * [`AvailabilitySchedule::AlwaysOn`] — the paper's implicit model.
//! * [`AvailabilitySchedule::Diurnal`] — desktop duty cycles: each node
//!   powers off for a fixed nightly window, phase-jittered per node.
//! * [`AvailabilitySchedule::Weibull`] — heavy-tailed session/downtime
//!   lengths (shape 1 = memoryless; shape < 1 = bursty churn).
//! * [`AvailabilitySchedule::Trace`] — replay of an explicit session list.
//!
//! Everything is deterministic: the same `(seed, schedule, nodes,
//! horizon)` tuple always yields the same [`ChurnSchedule`], each node
//! draws from its own derived RNG stream (so resizing the fleet never
//! perturbs other nodes' sessions), and events at equal times apply in
//! ascending node order.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::{rng, Obs, SimDuration, SimTime, Simulation};

use crate::cluster::Besteffs;
use crate::directory::Directory;
use crate::overlay::NodeId;

/// The two churn transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The node crashes; its objects are lost.
    Fail,
    /// The node comes back — empty, with a fresh incarnation.
    Rejoin,
}

/// One scheduled availability transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the transition fires.
    pub at: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// Fail or rejoin.
    pub kind: ChurnEventKind,
}

/// A seeded availability model for a fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AvailabilitySchedule {
    /// Nodes never fail (the paper's implicit assumption).
    AlwaysOn,
    /// Desktop duty cycle: every node is off for `off` out of every 24
    /// hours, starting at a per-node hour drawn uniformly from
    /// `0..24h - off` plus minute jitter — so the fleet's outages are
    /// staggered, not synchronized.
    Diurnal {
        /// Nightly off-window length (must be shorter than a day).
        off: SimDuration,
    },
    /// Alternating up/down sessions with Weibull-distributed lengths
    /// (`x = scale · (−ln U)^(1/shape)`, minute granularity, minimum one
    /// minute). Shape 1 gives memoryless exponential sessions whose mean
    /// is the scale; shapes below 1 model the heavy-tailed bursts real
    /// desktop traces show.
    Weibull {
        /// Shape parameter `k` for both session and downtime draws.
        shape: f64,
        /// Scale parameter of up-session lengths.
        session_scale: SimDuration,
        /// Scale parameter of downtime lengths.
        downtime_scale: SimDuration,
    },
    /// Replay an explicit transition list (e.g. parsed from a real
    /// availability trace). Events are re-sorted into schedule order.
    Trace(Vec<ChurnEvent>),
}

impl AvailabilitySchedule {
    /// A memoryless schedule calibrated so each node fails with
    /// probability ≈ `daily_rate` per simulated day (sessions are
    /// exponential with mean `1/daily_rate` days), staying down for
    /// `downtime_scale` on average. `daily_rate` 0 yields [`AlwaysOn`].
    ///
    /// [`AlwaysOn`]: AvailabilitySchedule::AlwaysOn
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ daily_rate < 1`.
    pub fn daily_churn(daily_rate: f64, downtime_scale: SimDuration) -> Self {
        assert!(
            (0.0..1.0).contains(&daily_rate),
            "daily churn rate must be in [0, 1), got {daily_rate}"
        );
        if daily_rate == 0.0 {
            return AvailabilitySchedule::AlwaysOn;
        }
        let mean_minutes = SimDuration::DAY.as_minutes() as f64 / daily_rate;
        AvailabilitySchedule::Weibull {
            shape: 1.0,
            session_scale: SimDuration::from_minutes(mean_minutes as u64),
            downtime_scale,
        }
    }
}

/// A fully materialized, time-ordered transition list for one fleet.
///
/// # Examples
///
/// ```
/// use besteffs::churn::{AvailabilitySchedule, ChurnSchedule};
/// use sim_core::{SimDuration, SimTime};
///
/// let schedule = AvailabilitySchedule::daily_churn(0.05, SimDuration::from_hours(12));
/// let a = ChurnSchedule::generate(50, SimTime::from_days(365), &schedule, 7);
/// let b = ChurnSchedule::generate(50, SimTime::from_days(365), &schedule, 7);
/// assert_eq!(a.events(), b.events()); // same seed ⇒ same churn
/// assert!(!a.events().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Materializes the transition list for `nodes` nodes over
    /// `[0, horizon]`. Each node's sessions come from an independent RNG
    /// stream derived from `seed` and the node index.
    pub fn generate(
        nodes: usize,
        horizon: SimTime,
        schedule: &AvailabilitySchedule,
        seed: u64,
    ) -> Self {
        let mut events: Vec<ChurnEvent> = Vec::new();
        match schedule {
            AvailabilitySchedule::AlwaysOn => {}
            AvailabilitySchedule::Diurnal { off } => {
                let off = *off;
                assert!(
                    off < SimDuration::DAY,
                    "diurnal off-window must be shorter than a day"
                );
                for i in 0..nodes {
                    let mut node_rng = node_stream(seed, i);
                    let latest_start = SimDuration::DAY.as_minutes() - off.as_minutes();
                    let start = node_rng.gen_range(0..latest_start.max(1));
                    push_sessions(&mut events, NodeId::new(i), horizon, {
                        let mut first = true;
                        move |_| {
                            // First "session" is the initial uptime until
                            // the node's off-hour; afterwards exactly one
                            // day separates consecutive shutdowns.
                            let up = if first {
                                first = false;
                                SimDuration::from_minutes(start)
                            } else {
                                SimDuration::DAY - off
                            };
                            (up, off)
                        }
                    });
                }
            }
            AvailabilitySchedule::Weibull {
                shape,
                session_scale,
                downtime_scale,
            } => {
                assert!(*shape > 0.0, "weibull shape must be positive");
                let (shape, up_scale, down_scale) = (
                    *shape,
                    session_scale.as_minutes() as f64,
                    downtime_scale.as_minutes() as f64,
                );
                for i in 0..nodes {
                    let mut node_rng = node_stream(seed, i);
                    push_sessions(&mut events, NodeId::new(i), horizon, move |_| {
                        let up = weibull_minutes(&mut node_rng, shape, up_scale);
                        let down = weibull_minutes(&mut node_rng, shape, down_scale);
                        (up, down)
                    });
                }
            }
            AvailabilitySchedule::Trace(trace) => {
                events.extend(trace.iter().copied().filter(|e| e.at <= horizon));
            }
        }
        // Time order with node order breaking ties keeps application
        // deterministic regardless of how per-node lists interleave.
        events.sort_by_key(|e| (e.at, e.node));
        ChurnSchedule { events }
    }

    /// The transitions, in `(time, node)` order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scheduled transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the schedule never disturbs the fleet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Walks one node's alternating up/down sessions from the epoch to the
/// horizon, pushing the fail/rejoin transition pairs. `next_sessions`
/// returns `(uptime, downtime)` for each cycle.
fn push_sessions<F>(events: &mut Vec<ChurnEvent>, node: NodeId, horizon: SimTime, mut next: F)
where
    F: FnMut(usize) -> (SimDuration, SimDuration),
{
    let mut at = SimTime::ZERO;
    for cycle in 0.. {
        let (up, down) = next(cycle);
        at += up.max(SimDuration::MINUTE);
        if at > horizon {
            break;
        }
        events.push(ChurnEvent {
            at,
            node,
            kind: ChurnEventKind::Fail,
        });
        at += down.max(SimDuration::MINUTE);
        if at > horizon {
            break;
        }
        events.push(ChurnEvent {
            at,
            node,
            kind: ChurnEventKind::Rejoin,
        });
    }
}

/// The per-node RNG stream: independent of every other node and of all
/// workload/placement streams.
fn node_stream(seed: u64, node: usize) -> rand::rngs::StdRng {
    rng::seeded(rng::derive_seed(
        rng::derive_seed(seed, "churn"),
        &format!("node-{node}"),
    ))
}

/// One Weibull draw at minute granularity (inverse-CDF), at least one
/// minute so sessions always advance the clock.
fn weibull_minutes<R: Rng>(rng: &mut R, shape: f64, scale: f64) -> SimDuration {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let x = scale * (-u.ln()).powf(1.0 / shape);
    SimDuration::from_minutes((x as u64).max(1))
}

/// Per-advance accounting from [`ChurnDriver::advance`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ChurnTick {
    /// Fail transitions applied.
    pub failures: u64,
    /// Rejoin transitions applied.
    pub rejoins: u64,
    /// Objects lost across the applied failures.
    pub objects_lost: u64,
}

/// Replays a [`ChurnSchedule`] against a cluster through the `sim-core`
/// event loop, interleaving with the caller's workload clock.
///
/// # Examples
///
/// ```
/// use besteffs::churn::{AvailabilitySchedule, ChurnSchedule};
/// use besteffs::{Besteffs, Directory};
/// use sim_core::{rng, ByteSize, SimDuration, SimTime};
///
/// let mut rand = rng::seeded(3);
/// let schedule = ChurnSchedule::generate(
///     20,
///     SimTime::from_days(30),
///     &AvailabilitySchedule::daily_churn(0.2, SimDuration::from_hours(8)),
///     9,
/// );
/// let (mut cluster, mut driver) = Besteffs::builder(20, ByteSize::from_gib(1))
///     .churn(schedule)
///     .build_with_churn(&mut rand);
/// let mut directory = Directory::new();
/// let tick = driver.advance(SimTime::from_days(30), &mut cluster, &mut directory);
/// assert_eq!(tick.failures, cluster.stats().failed_nodes);
/// ```
#[derive(Debug, Clone)]
pub struct ChurnDriver {
    sim: Simulation<(NodeId, ChurnEventKind)>,
    obs: Obs,
}

impl ChurnDriver {
    /// Loads a schedule into a fresh event loop.
    pub fn new(schedule: ChurnSchedule) -> Self {
        let mut sim = Simulation::new();
        for event in schedule.events() {
            sim.schedule(event.at, (event.node, event.kind));
        }
        ChurnDriver {
            sim,
            obs: Obs::global(),
        }
    }

    /// Transitions not yet applied.
    pub fn pending(&self) -> usize {
        self.sim.pending()
    }

    /// The churn clock (last applied instant).
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Applies every transition scheduled up to and including `now`:
    /// failures run the purging path (stale directory entries drop with
    /// the node), rejoins bring nodes back empty under fresh
    /// incarnations. Returns what happened.
    pub fn advance(
        &mut self,
        now: SimTime,
        cluster: &mut Besteffs,
        directory: &mut Directory,
    ) -> ChurnTick {
        let mut tick = ChurnTick::default();
        self.sim.run_until(now, |_, at, (node, kind)| match kind {
            ChurnEventKind::Fail => {
                tick.failures += 1;
                tick.objects_lost += cluster.fail_node_purging(node, at, directory);
            }
            ChurnEventKind::Rejoin => {
                if cluster.rejoin_node(node) {
                    tick.rejoins += 1;
                }
            }
        });
        self.obs.counter("churn.failures", tick.failures);
        self.obs.counter("churn.rejoins", tick.rejoins);
        self.obs.counter("churn.objects_lost", tick.objects_lost);
        tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::ByteSize;

    const HORIZON: SimTime = SimTime::from_days(365);

    #[test]
    fn always_on_schedules_nothing() {
        let s = ChurnSchedule::generate(100, HORIZON, &AvailabilitySchedule::AlwaysOn, 1);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let schedule = AvailabilitySchedule::Weibull {
            shape: 0.7,
            session_scale: SimDuration::from_days(20),
            downtime_scale: SimDuration::from_hours(10),
        };
        let a = ChurnSchedule::generate(40, HORIZON, &schedule, 5);
        let b = ChurnSchedule::generate(40, HORIZON, &schedule, 5);
        let c = ChurnSchedule::generate(40, HORIZON, &schedule, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn growing_the_fleet_keeps_existing_streams() {
        let schedule = AvailabilitySchedule::daily_churn(0.1, SimDuration::from_hours(6));
        let small = ChurnSchedule::generate(10, HORIZON, &schedule, 5);
        let large = ChurnSchedule::generate(20, HORIZON, &schedule, 5);
        let first_ten = |s: &ChurnSchedule| {
            let mut events: Vec<ChurnEvent> = s
                .events()
                .iter()
                .copied()
                .filter(|e| e.node.index() < 10)
                .collect();
            events.sort_by_key(|e| (e.node, e.at));
            events
        };
        assert_eq!(first_ten(&small), first_ten(&large));
    }

    #[test]
    fn events_alternate_per_node_and_stay_ordered() {
        let schedule = AvailabilitySchedule::Diurnal {
            off: SimDuration::from_hours(10),
        };
        let s = ChurnSchedule::generate(25, SimTime::from_days(30), &schedule, 2);
        assert!(s.events().windows(2).all(|w| w[0].at <= w[1].at));
        for node in 0..25 {
            let kinds: Vec<ChurnEventKind> = s
                .events()
                .iter()
                .filter(|e| e.node.index() == node)
                .map(|e| e.kind)
                .collect();
            assert!(!kinds.is_empty(), "diurnal node {node} never cycles");
            for (i, kind) in kinds.iter().enumerate() {
                let expected = if i % 2 == 0 {
                    ChurnEventKind::Fail
                } else {
                    ChurnEventKind::Rejoin
                };
                assert_eq!(*kind, expected, "node {node} event {i}");
            }
        }
    }

    #[test]
    fn diurnal_nodes_cycle_daily() {
        let off = SimDuration::from_hours(12);
        let s = ChurnSchedule::generate(
            8,
            SimTime::from_days(10),
            &AvailabilitySchedule::Diurnal { off },
            3,
        );
        // Consecutive failures of one node are exactly a day apart.
        for node in 0..8 {
            let fails: Vec<SimTime> = s
                .events()
                .iter()
                .filter(|e| e.node.index() == node && e.kind == ChurnEventKind::Fail)
                .map(|e| e.at)
                .collect();
            assert!(fails.len() >= 9, "node {node}: {} failures", fails.len());
            for pair in fails.windows(2) {
                assert_eq!(pair[1].saturating_since(pair[0]), SimDuration::DAY);
            }
        }
    }

    #[test]
    fn trace_replay_filters_and_orders() {
        let raw = vec![
            ChurnEvent {
                at: SimTime::from_days(400),
                node: NodeId::new(0),
                kind: ChurnEventKind::Fail,
            },
            ChurnEvent {
                at: SimTime::from_days(2),
                node: NodeId::new(1),
                kind: ChurnEventKind::Fail,
            },
            ChurnEvent {
                at: SimTime::from_days(1),
                node: NodeId::new(0),
                kind: ChurnEventKind::Fail,
            },
        ];
        let s = ChurnSchedule::generate(2, HORIZON, &AvailabilitySchedule::Trace(raw), 0);
        assert_eq!(s.len(), 2, "past-horizon events are dropped");
        assert_eq!(s.events()[0].at, SimTime::from_days(1));
        assert_eq!(s.events()[1].at, SimTime::from_days(2));
    }

    #[test]
    fn daily_churn_rate_is_roughly_calibrated() {
        // 10% daily churn over a year ⇒ ~36 failures per node on average.
        let s = ChurnSchedule::generate(
            50,
            HORIZON,
            &AvailabilitySchedule::daily_churn(0.1, SimDuration::from_hours(6)),
            11,
        );
        let failures = s
            .events()
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Fail)
            .count() as f64
            / 50.0;
        assert!(
            (20.0..60.0).contains(&failures),
            "mean failures per node {failures}"
        );
    }

    #[test]
    fn driver_applies_transitions_through_the_event_loop() {
        let mut rand = rng::seeded(31);
        let mut directory = Directory::new();
        let schedule = ChurnSchedule::generate(
            30,
            SimTime::from_days(60),
            &AvailabilitySchedule::daily_churn(0.3, SimDuration::from_hours(12)),
            13,
        );
        let total_fails = schedule
            .events()
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Fail)
            .count() as u64;
        let (mut cluster, mut driver) = Besteffs::builder(30, ByteSize::from_mib(100))
            .churn(schedule)
            .build_with_churn(&mut rand);
        assert!(driver.pending() > 0);

        // Apply in weekly slices; accounting must add up across slices.
        let mut applied = ChurnTick::default();
        for week in 1..=9u64 {
            let tick = driver.advance(SimTime::from_days(week * 7), &mut cluster, &mut directory);
            applied.failures += tick.failures;
            applied.rejoins += tick.rejoins;
        }
        assert_eq!(applied.failures, total_fails);
        assert_eq!(cluster.stats().failed_nodes, applied.failures);
        assert_eq!(cluster.stats().rejoined_nodes, applied.rejoins);
        assert_eq!(driver.pending(), 0);
        assert_eq!(
            cluster.failure_epochs().len() as u64,
            applied.failures,
            "every failure records an epoch"
        );
    }
}
