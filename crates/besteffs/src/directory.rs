//! Write-once named objects with versioned updates.
//!
//! Besteffs objects "are read-only and write once with versioned updates"
//! (§4.1): a logical name never changes content in place — each update
//! creates a new version with its own object id (and its own temporal
//! importance annotation). The directory maps names to version histories.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use temporal_importance::ObjectId;

use crate::overlay::NodeId;

/// A logical object name (e.g. `"os-course/lecture-17"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ObjectName(String);

impl ObjectName {
    /// Creates a name.
    pub fn new(name: impl Into<String>) -> Self {
        ObjectName(name.into())
    }

    /// The name as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectName {
    fn from(s: &str) -> Self {
        ObjectName::new(s)
    }
}

/// A monotonically increasing version number, starting at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Version(u32);

impl Version {
    /// The first version of any object.
    pub const FIRST: Version = Version(1);

    /// The raw version number.
    pub const fn number(self) -> u32 {
        self.0
    }

    /// The next version.
    #[must_use]
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One version's placement record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionEntry {
    /// The stored object backing this version.
    pub object: ObjectId,
    /// Which node it was placed on.
    pub node: NodeId,
    /// The node incarnation the object was placed under. A node that
    /// fails and rejoins comes back one incarnation higher, so entries
    /// published before the failure can never resolve against the reborn
    /// (empty) node — even if purging was skipped or raced.
    pub incarnation: u64,
}

/// A name → version-history directory.
///
/// The simulation keeps one logically-centralized directory for
/// convenience; the real system distributes it, but nothing in the paper's
/// evaluation depends on directory placement.
///
/// # Examples
///
/// ```
/// use besteffs::{Directory, NodeId, ObjectName, Version};
/// use temporal_importance::ObjectId;
///
/// let mut dir = Directory::new();
/// let name = ObjectName::from("lecture-1");
/// let v1 = dir.publish(name.clone(), ObjectId::new(10), NodeId::new(3));
/// assert_eq!(v1, Version::FIRST);
/// let v2 = dir.publish(name.clone(), ObjectId::new(11), NodeId::new(4));
/// assert_eq!(v2, Version::FIRST.next());
/// assert_eq!(dir.latest(&name).unwrap().object, ObjectId::new(11));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Directory {
    entries: BTreeMap<ObjectName, Vec<VersionEntry>>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Publishes a new version of `name` under node incarnation 0,
    /// returning its version number. Churn-aware callers should use
    /// [`publish_on`] with the node's current incarnation instead.
    ///
    /// [`publish_on`]: Directory::publish_on
    pub fn publish(&mut self, name: ObjectName, object: ObjectId, node: NodeId) -> Version {
        self.publish_on(name, object, node, 0)
    }

    /// Publishes a new version of `name` placed on `node` while it was
    /// running `incarnation`, returning the version number.
    pub fn publish_on(
        &mut self,
        name: ObjectName,
        object: ObjectId,
        node: NodeId,
        incarnation: u64,
    ) -> Version {
        let history = self.entries.entry(name).or_default();
        history.push(VersionEntry {
            object,
            node,
            incarnation,
        });
        Version(history.len() as u32)
    }

    /// The latest version's entry, if the name exists.
    pub fn latest(&self, name: &ObjectName) -> Option<VersionEntry> {
        self.entries.get(name).and_then(|h| h.last().copied())
    }

    /// A specific version's entry.
    pub fn version(&self, name: &ObjectName, version: Version) -> Option<VersionEntry> {
        let index = version.0.checked_sub(1)? as usize;
        self.entries.get(name).and_then(|h| h.get(index).copied())
    }

    /// Number of versions recorded for `name` (zero if unknown).
    pub fn version_count(&self, name: &ObjectName) -> usize {
        self.entries.get(name).map_or(0, Vec::len)
    }

    /// Iterates over all names in order.
    pub fn names(&self) -> impl Iterator<Item = &ObjectName> {
        self.entries.keys()
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops directory entries that point at a failed node (the objects
    /// are gone; Besteffs does not replicate). Returns how many version
    /// entries were dropped.
    pub fn purge_node(&mut self, node: NodeId) -> usize {
        let mut dropped = 0;
        self.entries.retain(|_, history| {
            let before = history.len();
            history.retain(|e| e.node != node);
            dropped += before - history.len();
            !history.is_empty()
        });
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotonic_per_name() {
        let mut dir = Directory::new();
        let name = ObjectName::from("a");
        assert_eq!(
            dir.publish(name.clone(), ObjectId::new(1), NodeId::new(0)),
            Version(1)
        );
        assert_eq!(
            dir.publish(name.clone(), ObjectId::new(2), NodeId::new(1)),
            Version(2)
        );
        assert_eq!(dir.version_count(&name), 2);
        assert_eq!(
            dir.version(&name, Version::FIRST).unwrap().object,
            ObjectId::new(1)
        );
        assert_eq!(dir.latest(&name).unwrap().object, ObjectId::new(2));
        assert_eq!(dir.version(&name, Version(3)), None);
    }

    #[test]
    fn unknown_names() {
        let dir = Directory::new();
        let name = ObjectName::from("missing");
        assert_eq!(dir.latest(&name), None);
        assert_eq!(dir.version_count(&name), 0);
        assert!(dir.is_empty());
        assert_eq!(dir.len(), 0);
    }

    #[test]
    fn purge_node_drops_lost_versions() {
        let mut dir = Directory::new();
        let a = ObjectName::from("a");
        let b = ObjectName::from("b");
        dir.publish(a.clone(), ObjectId::new(1), NodeId::new(0));
        dir.publish(a.clone(), ObjectId::new(2), NodeId::new(1));
        dir.publish(b.clone(), ObjectId::new(3), NodeId::new(0));
        let dropped = dir.purge_node(NodeId::new(0));
        assert_eq!(dropped, 2);
        // "a" falls back to the surviving version; "b" disappears.
        assert_eq!(dir.latest(&a).unwrap().object, ObjectId::new(2));
        assert_eq!(dir.latest(&b), None);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.names().count(), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ObjectName::from("x").to_string(), "x");
        assert_eq!(Version::FIRST.to_string(), "v1");
        assert_eq!(Version::FIRST.next().number(), 2);
    }
}
