//! Write-once named objects with versioned updates.
//!
//! Besteffs objects "are read-only and write once with versioned updates"
//! (§4.1): a logical name never changes content in place — each update
//! creates a new version with its own object id (and its own temporal
//! importance annotation). The directory maps names to version histories.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, Deserialize, Error, Serialize};
use sim_core::fx::FxHashMap;
use temporal_importance::ObjectId;

use crate::overlay::NodeId;

/// A logical object name (e.g. `"os-course/lecture-17"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ObjectName(String);

impl ObjectName {
    /// Creates a name.
    pub fn new(name: impl Into<String>) -> Self {
        ObjectName(name.into())
    }

    /// The name as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectName {
    fn from(s: &str) -> Self {
        ObjectName::new(s)
    }
}

/// A monotonically increasing version number, starting at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Version(u32);

impl Version {
    /// The first version of any object.
    pub const FIRST: Version = Version(1);

    /// The raw version number.
    pub const fn number(self) -> u32 {
        self.0
    }

    /// The next version.
    #[must_use]
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One version's placement record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionEntry {
    /// The stored object backing this version.
    pub object: ObjectId,
    /// Which node it was placed on.
    pub node: NodeId,
    /// The node incarnation the object was placed under. A node that
    /// fails and rejoins comes back one incarnation higher, so entries
    /// published before the failure can never resolve against the reborn
    /// (empty) node — even if purging was skipped or raced.
    pub incarnation: u64,
}

/// A name → version-history directory.
///
/// The simulation keeps one logically-centralized directory for
/// convenience; the real system distributes it, but nothing in the paper's
/// evaluation depends on directory placement.
///
/// Internally names are interned into dense slots: a hash lookup resolves
/// a name to a `u32` slot once, and every history lives in a slot-indexed
/// vector — the same arena discipline the storage engine uses for
/// `ObjectId`s. Purging a failed node edits each history in place (no map
/// nodes are deallocated and nothing is cloned per sweep); a slot whose
/// history empties stays interned, and the name simply reads as absent
/// until it is published again, which restarts at [`Version::FIRST`] —
/// observationally identical to removing and re-inserting a map entry.
///
/// # Examples
///
/// ```
/// use besteffs::{Directory, NodeId, ObjectName, Version};
/// use temporal_importance::ObjectId;
///
/// let mut dir = Directory::new();
/// let name = ObjectName::from("lecture-1");
/// let v1 = dir.publish(name.clone(), ObjectId::new(10), NodeId::new(3));
/// assert_eq!(v1, Version::FIRST);
/// let v2 = dir.publish(name.clone(), ObjectId::new(11), NodeId::new(4));
/// assert_eq!(v2, Version::FIRST.next());
/// assert_eq!(dir.latest(&name).unwrap().object, ObjectId::new(11));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// Interned name → slot. The map owns a clone of the name; `names`
    /// keeps the iteration copy.
    by_name: FxHashMap<ObjectName, u32>,
    /// Slot → name.
    names: Vec<ObjectName>,
    /// Slot → version history, edited in place by purges.
    histories: Vec<Vec<VersionEntry>>,
    /// Slots whose history is non-empty (the directory's visible size).
    live: usize,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Publishes a new version of `name` under node incarnation 0,
    /// returning its version number. Churn-aware callers should use
    /// [`publish_on`] with the node's current incarnation instead.
    ///
    /// [`publish_on`]: Directory::publish_on
    pub fn publish(&mut self, name: ObjectName, object: ObjectId, node: NodeId) -> Version {
        self.publish_on(name, object, node, 0)
    }

    /// Publishes a new version of `name` placed on `node` while it was
    /// running `incarnation`, returning the version number.
    pub fn publish_on(
        &mut self,
        name: ObjectName,
        object: ObjectId,
        node: NodeId,
        incarnation: u64,
    ) -> Version {
        let slot = match self.by_name.get(&name) {
            Some(&slot) => slot as usize,
            None => {
                let slot = self.names.len();
                self.by_name.insert(name.clone(), slot as u32);
                self.names.push(name);
                self.histories.push(Vec::new());
                slot
            }
        };
        let history = &mut self.histories[slot];
        if history.is_empty() {
            self.live += 1;
        }
        history.push(VersionEntry {
            object,
            node,
            incarnation,
        });
        Version(history.len() as u32)
    }

    /// The full version history of `name`, oldest first (empty if the
    /// name is unknown or fully purged). Borrowed straight from the
    /// slot's storage — reading a history allocates nothing.
    pub fn versions(&self, name: &ObjectName) -> &[VersionEntry] {
        self.by_name
            .get(name)
            .map(|&slot| self.histories[slot as usize].as_slice())
            .unwrap_or(&[])
    }

    /// The latest version's entry, if the name exists.
    pub fn latest(&self, name: &ObjectName) -> Option<VersionEntry> {
        self.versions(name).last().copied()
    }

    /// A specific version's entry.
    pub fn version(&self, name: &ObjectName, version: Version) -> Option<VersionEntry> {
        let index = version.0.checked_sub(1)? as usize;
        self.versions(name).get(index).copied()
    }

    /// Number of versions recorded for `name` (zero if unknown).
    pub fn version_count(&self, name: &ObjectName) -> usize {
        self.versions(name).len()
    }

    /// Iterates over all names in order.
    pub fn names(&self) -> impl Iterator<Item = &ObjectName> {
        let mut live: Vec<&ObjectName> = self
            .names
            .iter()
            .zip(&self.histories)
            .filter(|(_, history)| !history.is_empty())
            .map(|(name, _)| name)
            .collect();
        live.sort_unstable();
        live.into_iter()
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops directory entries that point at a failed node (the objects
    /// are gone; Besteffs does not replicate). Returns how many version
    /// entries were dropped.
    ///
    /// Runs entirely in place over the slot arrays: surviving entries
    /// shift down within their history's existing buffer, so a purge
    /// sweep performs no allocation regardless of how many entries drop.
    pub fn purge_node(&mut self, node: NodeId) -> usize {
        let mut dropped = 0;
        for history in &mut self.histories {
            if history.is_empty() {
                continue;
            }
            let before = history.len();
            history.retain(|e| e.node != node);
            dropped += before - history.len();
            if history.is_empty() {
                self.live -= 1;
            }
        }
        dropped
    }
}

/// Serializes as `{"entries": {name: [versions...]}}` with names in
/// sorted order and fully-purged names omitted — byte-identical to the
/// `BTreeMap<ObjectName, Vec<VersionEntry>>` layout this type had before
/// names were interned, so stored snapshots keep working.
impl Serialize for Directory {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(&ObjectName, &Vec<VersionEntry>)> = self
            .names
            .iter()
            .zip(&self.histories)
            .filter(|(_, history)| !history.is_empty())
            .collect();
        entries.sort_unstable_by_key(|&(name, _)| name);
        let map = entries
            .into_iter()
            .map(|(name, history)| (name.0.clone(), history.to_content()))
            .collect();
        Content::Map(vec![("entries".to_string(), Content::Map(map))])
    }
}

impl Deserialize for Directory {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let raw: BTreeMap<ObjectName, Vec<VersionEntry>> = match content {
            Content::Map(fields) => match fields.iter().find(|(key, _)| key == "entries") {
                Some((_, entries)) => Deserialize::deserialize(entries)?,
                None => return Err(Error::custom("missing field `entries`")),
            },
            other => {
                return Err(Error::custom(format!(
                    "invalid type: expected object, got {}",
                    other.kind()
                )))
            }
        };
        let mut dir = Directory::new();
        for (name, history) in raw {
            let slot = dir.names.len();
            dir.by_name.insert(name.clone(), slot as u32);
            dir.names.push(name);
            if !history.is_empty() {
                dir.live += 1;
            }
            dir.histories.push(history);
        }
        Ok(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotonic_per_name() {
        let mut dir = Directory::new();
        let name = ObjectName::from("a");
        assert_eq!(
            dir.publish(name.clone(), ObjectId::new(1), NodeId::new(0)),
            Version(1)
        );
        assert_eq!(
            dir.publish(name.clone(), ObjectId::new(2), NodeId::new(1)),
            Version(2)
        );
        assert_eq!(dir.version_count(&name), 2);
        assert_eq!(
            dir.version(&name, Version::FIRST).unwrap().object,
            ObjectId::new(1)
        );
        assert_eq!(dir.latest(&name).unwrap().object, ObjectId::new(2));
        assert_eq!(dir.version(&name, Version(3)), None);
    }

    #[test]
    fn unknown_names() {
        let dir = Directory::new();
        let name = ObjectName::from("missing");
        assert_eq!(dir.latest(&name), None);
        assert_eq!(dir.version_count(&name), 0);
        assert!(dir.is_empty());
        assert_eq!(dir.len(), 0);
    }

    #[test]
    fn purge_node_drops_lost_versions() {
        let mut dir = Directory::new();
        let a = ObjectName::from("a");
        let b = ObjectName::from("b");
        dir.publish(a.clone(), ObjectId::new(1), NodeId::new(0));
        dir.publish(a.clone(), ObjectId::new(2), NodeId::new(1));
        dir.publish(b.clone(), ObjectId::new(3), NodeId::new(0));
        let dropped = dir.purge_node(NodeId::new(0));
        assert_eq!(dropped, 2);
        // "a" falls back to the surviving version; "b" disappears.
        assert_eq!(dir.latest(&a).unwrap().object, ObjectId::new(2));
        assert_eq!(dir.latest(&b), None);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.names().count(), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ObjectName::from("x").to_string(), "x");
        assert_eq!(Version::FIRST.to_string(), "v1");
        assert_eq!(Version::FIRST.next().number(), 2);
    }

    #[test]
    fn republishing_a_fully_purged_name_restarts_versions() {
        let mut dir = Directory::new();
        let name = ObjectName::from("phoenix");
        dir.publish(name.clone(), ObjectId::new(1), NodeId::new(0));
        dir.publish(name.clone(), ObjectId::new(2), NodeId::new(0));
        assert_eq!(dir.purge_node(NodeId::new(0)), 2);
        assert!(dir.is_empty());
        assert_eq!(dir.latest(&name), None);
        assert!(dir.versions(&name).is_empty());
        // The slot is reused, but the name behaves like a fresh insert.
        assert_eq!(
            dir.publish(name.clone(), ObjectId::new(3), NodeId::new(1)),
            Version::FIRST
        );
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.latest(&name).unwrap().object, ObjectId::new(3));
    }

    #[test]
    fn versions_borrows_the_full_history() {
        let mut dir = Directory::new();
        let name = ObjectName::from("a");
        dir.publish(name.clone(), ObjectId::new(1), NodeId::new(0));
        dir.publish(name.clone(), ObjectId::new(2), NodeId::new(1));
        let history = dir.versions(&name);
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].object, ObjectId::new(1));
        assert_eq!(history[1].object, ObjectId::new(2));
        assert!(dir.versions(&ObjectName::from("missing")).is_empty());
    }

    #[test]
    fn names_iterate_sorted_regardless_of_publish_order() {
        let mut dir = Directory::new();
        for name in ["zeta", "alpha", "mid"] {
            dir.publish(ObjectName::from(name), ObjectId::new(1), NodeId::new(0));
        }
        let seen: Vec<&str> = dir.names().map(ObjectName::as_str).collect();
        assert_eq!(seen, ["alpha", "mid", "zeta"]);
    }

    /// The interned layout must serialize exactly like the
    /// `BTreeMap<ObjectName, Vec<VersionEntry>>` it replaced: sorted
    /// names, purged names omitted, and `{"entries": ...}` framing.
    #[test]
    fn serde_format_matches_the_old_map_layout() {
        let mut dir = Directory::new();
        dir.publish(ObjectName::from("b"), ObjectId::new(2), NodeId::new(1));
        dir.publish(ObjectName::from("a"), ObjectId::new(1), NodeId::new(0));
        dir.publish(ObjectName::from("gone"), ObjectId::new(3), NodeId::new(2));
        dir.purge_node(NodeId::new(2));

        let json = serde_json::to_string(&dir).expect("serialize directory");
        let a = json.find("\"a\"").expect("a serialized");
        let b = json.find("\"b\"").expect("b serialized");
        assert!(a < b, "names must serialize sorted: {json}");
        assert!(
            !json.contains("gone"),
            "purged names must be omitted: {json}"
        );
        assert!(
            json.starts_with("{\"entries\":{"),
            "framing changed: {json}"
        );

        let back: Directory = serde_json::from_str(&json).expect("deserialize directory");
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.latest(&ObjectName::from("a")).unwrap().object,
            ObjectId::new(1)
        );
        assert_eq!(
            back.latest(&ObjectName::from("b")).unwrap().node,
            NodeId::new(1)
        );
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
