//! A simulated *Besteffs* distributed object store (§4.1, §5.3).
//!
//! Besteffs is the paper's storage substrate: "an object level, fully
//! distributed storage. Objects are read-only and write once with versioned
//! updates... The system is fully distributed with no centralized
//! components... designed to scale to tens of thousands of storage units.
//! Objects are not replicated."
//!
//! This crate simulates that system faithfully at the level the paper
//! evaluates it:
//!
//! * [`overlay`] — a connected random-regular p2p overlay whose random
//!   walks supply placement candidates ("random walks on our p2p overlay
//!   help us choose a good set of storage units").
//! * [`cluster`] — the §5.3 placement algorithm: probe `x` walk-sampled
//!   units per try, store immediately on a unit whose highest preempted
//!   importance is zero, otherwise take up to `m` tries and pick the unit
//!   with the lowest highest-preempted importance (unweighted by size).
//! * [`directory`] — write-once named objects with versioned updates.
//! * [`churn`] — deterministic fault injection: seeded availability
//!   schedules (always-on, diurnal desktop uptime, Weibull sessions,
//!   trace replay) drive node failure and rejoin through the sim-core
//!   event loop. Objects on a failed node are simply lost (no
//!   replication), as the paper specifies; a rejoined node returns empty
//!   under a fresh incarnation.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod churn;
pub mod cluster;
pub mod concurrent;
pub mod directory;
pub mod overlay;

pub use churn::{AvailabilitySchedule, ChurnDriver, ChurnEvent, ChurnEventKind, ChurnSchedule};
pub use cluster::{
    Besteffs, ClusterBuilder, ClusterStats, FailureEpoch, PlacementConfig, PlacementError,
    PlacementOutcome,
};
pub use concurrent::SharedCluster;
pub use directory::{Directory, ObjectName, Version, VersionEntry};
pub use overlay::{NodeId, Overlay};
