//! A thread-safe front-end for concurrent placement.
//!
//! Besteffs is "fully distributed with no centralized components" (§4.1):
//! in the real system every capture station runs the placement algorithm
//! concurrently. [`SharedCluster`] models that concurrency inside one
//! process: per-node locks guard the storage units, the overlay is
//! immutable and shared, and placements from many threads interleave
//! exactly as independent stations' probes would — including the race
//! where a probed unit fills up before the store lands, which the §5.3
//! algorithm handles by retrying the next candidate.

use parking_lot::Mutex;
use rand::Rng;
use sim_core::{ByteSize, Obs, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use temporal_importance::protocol::{
    DensityInfo, HealthSnapshot, ObjectInfo, Request, Response, ShardHealth, ShardRouter, StoreApi,
    StoreStats,
};
use temporal_importance::{Importance, ObjectSpec, StorageUnit};

use crate::cluster::{PlacementConfig, PlacementError};
use crate::overlay::{NodeId, Overlay};

/// Aggregate counters, updated lock-free.
#[derive(Debug, Default)]
pub struct SharedStats {
    placed: AtomicU64,
    rejected: AtomicU64,
    races_lost: AtomicU64,
    failed_nodes: AtomicU64,
    rejoined_nodes: AtomicU64,
    objects_lost: AtomicU64,
}

impl SharedStats {
    /// Objects successfully placed.
    pub fn placed(&self) -> u64 {
        self.placed.load(Ordering::Relaxed)
    }

    /// Placement requests rejected.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Times a probed candidate filled up (by a concurrent placement)
    /// between the probe and the store, forcing a fallback.
    pub fn races_lost(&self) -> u64 {
        self.races_lost.load(Ordering::Relaxed)
    }

    /// Nodes failed via [`SharedCluster::fail_node`].
    pub fn failed_nodes(&self) -> u64 {
        self.failed_nodes.load(Ordering::Relaxed)
    }

    /// Failed nodes brought back via [`SharedCluster::rejoin_node`].
    pub fn rejoined_nodes(&self) -> u64 {
        self.rejoined_nodes.load(Ordering::Relaxed)
    }

    /// Objects lost to node failures (no replication).
    pub fn objects_lost(&self) -> u64 {
        self.objects_lost.load(Ordering::Relaxed)
    }
}

/// A cluster whose nodes are individually locked, supporting concurrent
/// `place` calls from many threads. Built with
/// [`ClusterBuilder::build_shared`](crate::ClusterBuilder::build_shared).
///
/// Beyond the §5.3 random-walk [`place`](SharedCluster::place) path, the
/// cluster speaks the [`StoreApi`] protocol: each node doubles as a shard
/// under the workspace-wide [`ShardRouter`] hash mapping, so the same
/// generic drivers exercise a `SharedCluster` and a `tempimpd` service.
/// Protocol requests to a failed node answer with
/// [`Error::ShardUnavailable`](temporal_importance::Error::ShardUnavailable).
///
/// # Examples
///
/// ```
/// use besteffs::Besteffs;
/// use sim_core::{rng, ByteSize, SimDuration, SimTime};
/// use temporal_importance::{Importance, ImportanceCurve, ObjectId, ObjectSpec};
///
/// let mut rand = rng::seeded(5);
/// let cluster = Besteffs::builder(20, ByteSize::from_mib(100)).build_shared(&mut rand);
/// let spec = ObjectSpec::new(
///     ObjectId::new(1),
///     ByteSize::from_mib(10),
///     ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
/// );
/// let node = cluster.place(spec, SimTime::ZERO, &mut rand)?;
/// assert!(node.index() < 20);
/// # Ok::<(), besteffs::PlacementError>(())
/// ```
#[derive(Debug)]
pub struct SharedCluster {
    units: Vec<Mutex<StorageUnit>>,
    /// Membership mask: placements from other threads observe a failure
    /// or rejoin at the next walk they take, without any global lock.
    alive: Vec<AtomicBool>,
    overlay: Overlay,
    config: PlacementConfig,
    stats: SharedStats,
    /// Object-to-node mapping for the [`StoreApi`] protocol verbs.
    router: ShardRouter,
    /// Forwarded to replacement units when failed nodes are emptied.
    obs: Obs,
}

impl SharedCluster {
    /// Creates a shared cluster of `nodes` units of equal `capacity`.
    #[deprecated(
        since = "0.1.0",
        note = "use Besteffs::builder(nodes, capacity).build_shared(rng)"
    )]
    pub fn new<R: Rng>(
        nodes: usize,
        capacity: ByteSize,
        config: PlacementConfig,
        rng: &mut R,
    ) -> Self {
        SharedCluster::from_parts(nodes, capacity, config, Obs::global(), rng)
    }

    /// The construction path shared by the builder terminal and the
    /// deprecated constructor.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 3` (the overlay needs a ring).
    pub(crate) fn from_parts<R: Rng>(
        nodes: usize,
        capacity: ByteSize,
        config: PlacementConfig,
        obs: Obs,
        rng: &mut R,
    ) -> Self {
        let degree = 6.min(nodes - 1).max(2);
        let overlay = Overlay::random(nodes, degree, rng);
        let units = (0..nodes)
            .map(|_| {
                // Concurrent clusters keep aggregate stats only; per-event
                // record vectors under multi-threaded churn would grow
                // without bound.
                let unit = StorageUnit::builder(capacity)
                    .recording(false)
                    .observer(obs.clone())
                    .build();
                Mutex::new(unit)
            })
            .collect();
        SharedCluster {
            alive: (0..nodes).map(|_| AtomicBool::new(true)).collect(),
            units,
            overlay,
            config,
            stats: SharedStats::default(),
            router: ShardRouter::new(nodes as u32),
            obs,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// Total bytes stored across all nodes (momentary snapshot — other
    /// threads may be placing concurrently).
    pub fn used(&self) -> ByteSize {
        self.units.iter().map(|u| u.lock().used()).sum()
    }

    /// Runs a closure against one node's unit, under its lock.
    pub fn with_node<T>(&self, node: NodeId, f: impl FnOnce(&mut StorageUnit) -> T) -> T {
        f(&mut self.units[node.index()].lock())
    }

    /// True if `node` is currently in the membership set.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()].load(Ordering::Acquire)
    }

    /// Number of live nodes (momentary snapshot).
    pub fn live_nodes(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::Acquire))
            .count()
    }

    /// Fails a node from any thread: it leaves the membership set (walks
    /// stop visiting it) and its objects are dropped under the node lock.
    /// Returns the number of objects lost; failing a dead node is a no-op.
    ///
    /// A placement that already probed this node can still try to store on
    /// it — the store lands on the emptied unit exactly as it would on a
    /// real node that crashed and rebooted between probe and store, and
    /// the directory layer's incarnation check keeps such windows from
    /// resurrecting pre-failure entries.
    pub fn fail_node(&self, node: NodeId) -> u64 {
        let i = node.index();
        if !self.alive[i].swap(false, Ordering::AcqRel) {
            return 0;
        }
        let lost = {
            let mut unit = self.units[i].lock();
            let lost = unit.len() as u64;
            *unit = StorageUnit::builder(unit.capacity())
                .recording(false)
                .observer(self.obs.clone())
                .build();
            lost
        };
        self.stats.failed_nodes.fetch_add(1, Ordering::Relaxed);
        self.stats.objects_lost.fetch_add(lost, Ordering::Relaxed);
        lost
    }

    /// Rejoins a failed node (empty), re-admitting it to the membership
    /// set. Returns false (a no-op) if the node is already alive.
    pub fn rejoin_node(&self, node: NodeId) -> bool {
        let i = node.index();
        if self.alive[i].swap(true, Ordering::AcqRel) {
            return false;
        }
        self.stats.rejoined_nodes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Places an object with the §5.3 algorithm, taking `&self` so many
    /// threads can place simultaneously. Each candidate is probed and (if
    /// chosen) stored under that node's lock only — concurrent placements
    /// on disjoint candidates never contend.
    ///
    /// Probing and storing are two separate critical sections per
    /// candidate; a concurrent placement can consume the room in between.
    /// When the final store fails the candidate is treated as full
    /// (`races_lost` counts these) and the next-best candidate is used.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::ClusterFull`] if every probed candidate
    /// is (or has become) full for this object, and
    /// [`PlacementError::NoLiveNodes`] if no live start node can be found.
    pub fn place<R: Rng>(
        &self,
        spec: ObjectSpec,
        now: SimTime,
        rng: &mut R,
    ) -> Result<NodeId, PlacementError> {
        let incoming = spec.curve().initial_importance();
        // Bounded rejection sampling for a live start: one draw when the
        // fleet is healthy, graceful failure when it is gone.
        let start = (0..self.units.len() * 8 + 8)
            .map(|_| NodeId::new(rng.gen_range(0..self.units.len())))
            .find(|&n| self.is_alive(n))
            .ok_or(PlacementError::NoLiveNodes)?;

        // Collect scored candidates across up to `m` tries.
        let mut candidates: Vec<(Importance, NodeId)> = Vec::new();
        let mut probed = 0usize;
        'tries: for _ in 0..self.config.max_tries {
            let sampled = self.overlay.sample_walks(
                start,
                self.config.candidates_per_try,
                self.config.walk_steps,
                rng,
                |n| self.is_alive(n),
            );
            for node in sampled {
                probed += 1;
                let admission = {
                    let mut unit = self.units[node.index()].lock();
                    // Drain due curve-breakpoint events under the lock so
                    // the probe answers from the eviction-order index
                    // instead of the stale-index full-scan fallback.
                    unit.advance(now);
                    unit.peek_admission(spec.size(), incoming, now)
                };
                if let Some(score) = admission.placement_score() {
                    candidates.push((score, node));
                    if score.is_zero() {
                        break 'tries;
                    }
                }
            }
        }
        candidates.sort();

        // Try candidates best-first; a lost race falls through to the next.
        for &(_, node) in &candidates {
            match self.units[node.index()].lock().store(spec.clone(), now) {
                Ok(_) => {
                    self.stats.placed.fetch_add(1, Ordering::Relaxed);
                    return Ok(node);
                }
                Err(temporal_importance::StoreError::Full { .. }) => {
                    // A concurrent placement consumed the room this probe
                    // saw; fall through to the next candidate.
                    self.stats.races_lost.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("unexpected store error: {e}"),
            }
        }

        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        Err(PlacementError::ClusterFull { probed, incoming })
    }

    /// The node a protocol-keyed request routes to, or
    /// `Error::ShardUnavailable` if it has failed.
    fn live_shard(
        &self,
        id: temporal_importance::ObjectId,
    ) -> Result<NodeId, temporal_importance::Error> {
        let shard = self.router.route(id);
        let node = NodeId::new(shard as usize);
        if self.is_alive(node) {
            Ok(node)
        } else {
            Err(temporal_importance::Error::ShardUnavailable { shard })
        }
    }
}

/// The protocol view of the cluster: every node is a shard under the
/// workspace-wide hash routing. Keyed verbs go to the owning node under
/// its lock; `Density` and `Stats` aggregate over the *live* membership
/// in node order (a failed node contributes neither capacity nor bytes).
impl StoreApi for SharedCluster {
    fn call(&mut self, now: SimTime, request: Request) -> Response {
        match request {
            Request::Put {
                id,
                bytes,
                curve,
                class,
            } => Response::Put(self.live_shard(id).and_then(|node| {
                let spec = ObjectSpec::new(id, bytes, curve).with_class(class);
                self.with_node(node, |unit| unit.store(spec, now))
                    .map_err(temporal_importance::Error::from)
            })),
            Request::Get { id } => Response::Get(self.live_shard(id).map(|node| {
                self.with_node(node, |unit| {
                    unit.advance(now);
                    unit.get(id).map(|object| ObjectInfo {
                        id: object.id(),
                        size: object.size(),
                        arrival: object.arrival(),
                        importance: object.current_importance(now),
                        expired: object.is_expired(now),
                    })
                })
            })),
            Request::Advise {
                id,
                bytes,
                incoming,
            } => Response::Advise(self.live_shard(id).map(|node| {
                self.with_node(node, |unit| {
                    unit.advance(now);
                    unit.peek_admission(bytes, incoming, now)
                })
            })),
            Request::Density => {
                let mut weighted = 0.0f64;
                let mut capacity = ByteSize::ZERO;
                let mut used = ByteSize::ZERO;
                for index in 0..self.units.len() {
                    let node = NodeId::new(index);
                    if !self.is_alive(node) {
                        continue;
                    }
                    self.with_node(node, |unit| {
                        unit.advance(now);
                        weighted +=
                            unit.importance_density(now) * unit.capacity().as_bytes() as f64;
                        capacity += unit.capacity();
                        used += unit.used();
                    });
                }
                let density = if capacity.is_zero() {
                    0.0
                } else {
                    weighted / capacity.as_bytes() as f64
                };
                Response::Density(Ok(DensityInfo {
                    density,
                    capacity,
                    used,
                }))
            }
            Request::Stats => {
                let mut total = StoreStats::default();
                for index in 0..self.units.len() {
                    let node = NodeId::new(index);
                    if !self.is_alive(node) {
                        continue;
                    }
                    self.with_node(node, |unit| {
                        total.absorb(&StoreStats {
                            unit: *unit.stats(),
                            used: unit.used(),
                            capacity: unit.capacity(),
                            objects: unit.len() as u64,
                        });
                    });
                }
                Response::Stats(Ok(total))
            }
            Request::Health => {
                // One entry per *live* node, in node order (matching the
                // Density/Stats aggregation membership); the queue-depth
                // and worker counters are inert — a lock-per-node cluster
                // has no ingest queues.
                let mut snapshot = HealthSnapshot::default();
                for index in 0..self.units.len() {
                    let node = NodeId::new(index);
                    if !self.is_alive(node) {
                        continue;
                    }
                    self.with_node(node, |unit| {
                        unit.advance(now);
                        snapshot.shards.push(ShardHealth {
                            shard: index as u32,
                            clock: now,
                            residents: unit.len() as u64,
                            used: unit.used(),
                            capacity: unit.capacity(),
                            queue_depth: 0,
                            requests: 0,
                            batches: 0,
                            rejected: 0,
                            latencies: Vec::new(),
                        });
                    });
                }
                Response::Health(Ok(snapshot))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{rng, SimDuration};
    use temporal_importance::{ImportanceCurve, ObjectId};

    fn spec(id: u64, mib: u64, importance: f64) -> ObjectSpec {
        ObjectSpec::new(
            ObjectId::new(id),
            ByteSize::from_mib(mib),
            ImportanceCurve::Fixed {
                importance: Importance::new_clamped(importance),
                expiry: SimDuration::from_days(365),
            },
        )
    }

    #[test]
    fn single_threaded_placement_works() {
        let mut rand = rng::seeded(1);
        let cluster = crate::Besteffs::builder(10, ByteSize::from_mib(100)).build_shared(&mut rand);
        for i in 0..10 {
            cluster
                .place(spec(i, 20, 1.0), SimTime::ZERO, &mut rand)
                .unwrap();
        }
        assert_eq!(cluster.stats().placed(), 10);
        assert_eq!(cluster.used(), ByteSize::from_mib(200));
        assert_eq!(cluster.len(), 10);
        assert!(!cluster.is_empty());
    }

    #[test]
    fn concurrent_placements_account_exactly() {
        let mut rand = rng::seeded(2);
        let cluster = crate::Besteffs::builder(50, ByteSize::from_mib(100)).build_shared(&mut rand);
        let threads = 8;
        let per_thread = 50u64;

        crossbeam::thread::scope(|scope| {
            for t in 0..threads {
                let cluster = &cluster;
                scope.spawn(move |_| {
                    let mut rand = rng::stream(99, &format!("placer-{t}"));
                    for i in 0..per_thread {
                        let id = t as u64 * 10_000 + i;
                        let _ = cluster.place(spec(id, 10, 0.8), SimTime::ZERO, &mut rand);
                    }
                });
            }
        })
        .expect("no placer thread panicked");

        let placed = cluster.stats().placed();
        let rejected = cluster.stats().rejected();
        assert_eq!(placed + rejected, threads as u64 * per_thread);
        // Accounting is exact despite concurrency: bytes placed equals
        // bytes resident (nothing of higher importance evicted anything,
        // all objects share 0.8 importance, so placed == resident).
        assert_eq!(
            cluster.used(),
            ByteSize::from_mib(placed * 10),
            "resident bytes disagree with placed count"
        );
        // The cluster holds 50 x 100 MiB; 400 x 10 MiB = 4000 MiB fits
        // only partially (5000 MiB capacity, but sampling is imperfect).
        assert!(placed >= 350, "placed only {placed}");
    }

    #[test]
    fn full_cluster_rejects_equal_importance_under_concurrency() {
        let mut rand = rng::seeded(3);
        let cluster = crate::Besteffs::builder(10, ByteSize::from_mib(20))
            .placement(PlacementConfig {
                candidates_per_try: 10,
                max_tries: 2,
                walk_steps: 6,
            })
            .build_shared(&mut rand);
        // Fill completely at 0.5.
        for i in 0..10 {
            cluster.with_node(NodeId::new(i), |unit| {
                unit.store(spec(i as u64, 20, 0.5), SimTime::ZERO).unwrap();
            });
        }
        crossbeam::thread::scope(|scope| {
            for t in 0..4 {
                let cluster = &cluster;
                scope.spawn(move |_| {
                    let mut rand = rng::stream(7, &format!("rejector-{t}"));
                    for i in 0..20u64 {
                        let id = 1_000 + t as u64 * 100 + i;
                        let result = cluster.place(spec(id, 20, 0.5), SimTime::ZERO, &mut rand);
                        assert!(result.is_err(), "equal importance must not preempt");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cluster.stats().rejected(), 80);
        assert_eq!(cluster.stats().placed(), 0);
    }

    #[test]
    fn protocol_verbs_route_by_shard_and_respect_membership() {
        let mut rand = rng::seeded(6);
        let mut cluster =
            crate::Besteffs::builder(10, ByteSize::from_mib(100)).build_shared(&mut rand);
        let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_days(30));
        for i in 0..20u64 {
            cluster
                .put(
                    ObjectId::new(i),
                    ByteSize::from_mib(1),
                    curve.clone(),
                    SimTime::ZERO,
                )
                .unwrap();
        }
        let stats = cluster.store_stats(SimTime::ZERO).unwrap();
        assert_eq!(stats.objects, 20);
        assert_eq!(stats.unit.stores_accepted, 20);
        assert_eq!(stats.capacity, ByteSize::from_mib(1000));

        // Objects live on the node the workspace-wide router picks.
        let id = ObjectId::new(3);
        let node = NodeId::new(cluster.router.route(id) as usize);
        assert!(cluster.with_node(node, |unit| unit.contains(id)));
        assert!(cluster.get_info(id, SimTime::ZERO).unwrap().is_some());

        // A failed node answers keyed verbs with ShardUnavailable and
        // drops out of the aggregates.
        cluster.fail_node(node);
        let err = cluster.get_info(id, SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            temporal_importance::Error::ShardUnavailable { .. }
        ));
        let err = cluster
            .put(id, ByteSize::from_mib(1), curve, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(
            err,
            temporal_importance::Error::ShardUnavailable { .. }
        ));
        let stats = cluster.store_stats(SimTime::ZERO).unwrap();
        assert_eq!(stats.capacity, ByteSize::from_mib(900));
        let density = cluster.density_info(SimTime::ZERO).unwrap();
        assert_eq!(density.capacity, ByteSize::from_mib(900));

        // Health reports one inert entry per live node, in node order,
        // skipping the failed node's index.
        let health = cluster.health(SimTime::ZERO).unwrap();
        assert_eq!(health.shards.len(), 9);
        assert!(health.shards.iter().all(|s| s.shard != node.index() as u32));
        assert!(health
            .shards
            .windows(2)
            .all(|pair| pair[0].shard < pair[1].shard));
        assert!(health
            .shards
            .iter()
            .all(|s| s.queue_depth == 0 && s.latencies.is_empty()));
        assert_eq!(
            health.shards.iter().map(|s| s.residents).sum::<u64>(),
            stats.objects
        );
    }

    #[test]
    fn fail_and_rejoin_are_idempotent_and_accounted() {
        let mut rand = rng::seeded(4);
        let cluster = crate::Besteffs::builder(10, ByteSize::from_mib(100)).build_shared(&mut rand);
        let node = cluster
            .place(spec(1, 10, 1.0), SimTime::ZERO, &mut rand)
            .unwrap();
        assert_eq!(cluster.fail_node(node), 1);
        assert_eq!(cluster.fail_node(node), 0, "double-fail is a no-op");
        assert!(!cluster.is_alive(node));
        assert_eq!(cluster.live_nodes(), 9);
        assert_eq!(cluster.stats().failed_nodes(), 1);
        assert_eq!(cluster.stats().objects_lost(), 1);
        assert_eq!(cluster.with_node(node, |u| u.len()), 0);

        assert!(cluster.rejoin_node(node));
        assert!(!cluster.rejoin_node(node), "double-rejoin is a no-op");
        assert_eq!(cluster.live_nodes(), 10);
        assert_eq!(cluster.stats().rejoined_nodes(), 1);
    }

    #[test]
    fn placements_survive_concurrent_churn() {
        let mut rand = rng::seeded(5);
        let cluster = crate::Besteffs::builder(30, ByteSize::from_mib(100)).build_shared(&mut rand);
        let threads = 4;
        let per_thread = 40u64;

        crossbeam::thread::scope(|scope| {
            // One chaos thread flaps membership while placers run.
            let chaos = &cluster;
            scope.spawn(move |_| {
                let mut rand = rng::stream(77, "chaos");
                for _ in 0..200 {
                    let node = NodeId::new(rand.gen_range(0..30));
                    if chaos.is_alive(node) {
                        chaos.fail_node(node);
                    } else {
                        chaos.rejoin_node(node);
                    }
                    std::thread::yield_now();
                }
                // Leave everything alive for the final invariants.
                for i in 0..30 {
                    chaos.rejoin_node(NodeId::new(i));
                }
            });
            for t in 0..threads {
                let cluster = &cluster;
                scope.spawn(move |_| {
                    let mut rand = rng::stream(78, &format!("churn-placer-{t}"));
                    for i in 0..per_thread {
                        let id = t as u64 * 10_000 + i;
                        let _ = cluster.place(spec(id, 5, 0.8), SimTime::ZERO, &mut rand);
                    }
                });
            }
        })
        .expect("no churn thread panicked");

        let stats = cluster.stats();
        // Every request resolved one way or another (NoLiveNodes counts as
        // neither placed nor rejected, but with 30 nodes and one chaos
        // thread the fleet never empties).
        assert!(stats.placed() + stats.rejected() <= threads as u64 * per_thread);
        assert!(stats.placed() > 0, "churn starved every placement");
        assert_eq!(cluster.live_nodes(), 30);
        // Residency only counts survivors of the chaos: never more bytes
        // than placements, and the books balance against losses.
        assert!(cluster.used() <= ByteSize::from_mib(stats.placed() * 5));
        assert_eq!(
            cluster.used(),
            ByteSize::from_mib((stats.placed() - stats.objects_lost()) * 5)
        );
    }
}
