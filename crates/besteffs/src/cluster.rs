//! The Besteffs cluster and the §5.3 placement algorithm.

use std::error::Error;
use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, Obs, SimTime};
use temporal_importance::{
    EvictionRecord, Importance, ObjectId, ObjectSpec, StorageUnit, StoreOutcome,
};

use crate::churn::{ChurnDriver, ChurnSchedule};
use crate::directory::Directory;
use crate::overlay::{NodeId, Overlay};

/// Fleets smaller than this are swept/advanced/measured sequentially:
/// thread spawn overhead would outweigh the per-node work.
const PARALLEL_THRESHOLD: usize = 256;

/// Worker threads for a parallel pass over `nodes` units.
fn worker_count(nodes: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(nodes.div_ceil(64))
        .max(1)
}

/// Parameters of the §5.3 distributed placement algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Candidate units sampled per try (`x`: "randomly pick x storage
    /// units").
    pub candidates_per_try: usize,
    /// Maximum successive tries (`m`: "we wait for up to m successive
    /// tries").
    pub max_tries: usize,
    /// Random-walk length used for sampling.
    pub walk_steps: usize,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            candidates_per_try: 8,
            max_tries: 3,
            walk_steps: 10,
        }
    }
}

/// Where and how an object was placed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementOutcome {
    /// The chosen node.
    pub node: NodeId,
    /// The underlying store outcome (including preempted victims).
    pub outcome: StoreOutcome,
    /// How many tries were used.
    pub tries: usize,
    /// How many candidate units were probed in total.
    pub probed: usize,
}

/// A placement request the cluster could not satisfy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacementError {
    /// Every probed unit was full for this object's importance level.
    ClusterFull {
        /// Candidate units probed across all tries.
        probed: usize,
        /// The incoming importance that could not find room.
        incoming: Importance,
    },
    /// No live node exists to probe.
    NoLiveNodes,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::ClusterFull { probed, incoming } => write!(
                f,
                "all {probed} probed units are full for importance {incoming}"
            ),
            PlacementError::NoLiveNodes => write!(f, "no live storage nodes remain"),
        }
    }
}

impl Error for PlacementError {}

impl From<PlacementError> for temporal_importance::Error {
    fn from(e: PlacementError) -> Self {
        temporal_importance::Error::external(e)
    }
}

/// Aggregate counters for a cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ClusterStats {
    /// Objects successfully placed.
    pub placed: u64,
    /// Placement requests rejected (cluster full for the object).
    pub rejected: u64,
    /// Placements that landed on a zero-preemption unit on the first try.
    pub direct_stores: u64,
    /// Nodes that have failed.
    pub failed_nodes: u64,
    /// Objects lost to node failures (no replication).
    pub objects_lost: u64,
    /// Bytes lost to node failures.
    pub bytes_lost: u64,
    /// Failed nodes that have rejoined (empty, with a fresh incarnation).
    pub rejoined_nodes: u64,
    /// Directory version entries purged by failure handling.
    pub directory_entries_purged: u64,
}

/// Loss accounting for one node-failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct FailureEpoch {
    /// When the failure was injected.
    pub at: SimTime,
    /// The node that failed.
    pub node: NodeId,
    /// The incarnation that died (rejoins come back one higher).
    pub incarnation: u64,
    /// Objects lost with the node (Besteffs does not replicate).
    pub objects_lost: u64,
    /// Bytes lost with the node.
    pub bytes_lost: u64,
}

/// Configures and builds a [`Besteffs`] cluster.
///
/// Obtained from [`Besteffs::builder`]; every knob is optional and the
/// defaults reproduce what `Besteffs::new` used to do. The RNG is consumed
/// only at [`build`](ClusterBuilder::build) time, in the same order as the
/// old constructor, so seeded simulations are bit-for-bit unchanged.
///
/// # Examples
///
/// ```
/// use besteffs::{Besteffs, PlacementConfig};
/// use sim_core::{rng, ByteSize};
///
/// let mut rand = rng::seeded(11);
/// let cluster = Besteffs::builder(50, ByteSize::from_gib(1))
///     .placement(PlacementConfig {
///         candidates_per_try: 4,
///         max_tries: 2,
///         walk_steps: 8,
///     })
///     .build(&mut rand);
/// assert_eq!(cluster.len(), 50);
/// assert_eq!(cluster.config().max_tries, 2);
/// ```
#[derive(Debug, Clone)]
#[must_use = "builders do nothing until `build` is called"]
pub struct ClusterBuilder {
    nodes: usize,
    capacity: ByteSize,
    config: PlacementConfig,
    churn: Option<ChurnSchedule>,
    obs: Option<Obs>,
}

impl ClusterBuilder {
    /// Sets the §5.3 placement parameters (default:
    /// [`PlacementConfig::default`]).
    pub fn placement(mut self, config: PlacementConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an observability handle; the cluster forwards it to every
    /// storage unit it creates (including rejoin replacements and
    /// [`add_node`] newcomers). Defaults to the process-global observer.
    ///
    /// [`add_node`]: Besteffs::add_node
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a churn schedule for [`build_with_churn`]; [`build`]
    /// ignores it.
    ///
    /// [`build_with_churn`]: ClusterBuilder::build_with_churn
    /// [`build`]: ClusterBuilder::build
    pub fn churn(mut self, schedule: ChurnSchedule) -> Self {
        self.churn = Some(schedule);
        self
    }

    /// Builds the cluster, consuming `rng` to wire the overlay.
    ///
    /// # Panics
    ///
    /// Panics if the builder was created with fewer than 3 nodes (the
    /// overlay needs a ring).
    pub fn build<R: Rng>(self, rng: &mut R) -> Besteffs {
        let ClusterBuilder {
            nodes,
            capacity,
            config,
            churn: _,
            obs,
        } = self;
        let obs = obs.unwrap_or_else(Obs::global);
        let degree = 6.min(nodes - 1).max(2);
        let overlay = Overlay::random(nodes, degree, rng);
        // Large fleets keep aggregate stats only; per-eviction records on
        // 2,000 nodes over years would dominate memory.
        let units: Vec<StorageUnit> = (0..nodes)
            .map(|_| {
                StorageUnit::builder(capacity)
                    .recording(false)
                    .observer(obs.clone())
                    .build()
            })
            .collect();
        Besteffs {
            units,
            alive: vec![true; nodes],
            incarnations: vec![0; nodes],
            overlay,
            config,
            stats: ClusterStats::default(),
            failure_epochs: Vec::new(),
            obs,
        }
    }

    /// Builds the cluster and a [`ChurnDriver`] loaded with the schedule
    /// from [`churn`](ClusterBuilder::churn) (empty if none was set), so a
    /// fault-injected experiment needs one expression instead of three.
    pub fn build_with_churn<R: Rng>(mut self, rng: &mut R) -> (Besteffs, ChurnDriver) {
        let schedule = self.churn.take().unwrap_or_default();
        let cluster = self.build(rng);
        (cluster, ChurnDriver::new(schedule))
    }

    /// Builds a [`SharedCluster`](crate::concurrent::SharedCluster) — the
    /// thread-safe, per-node-locked front-end — from the same knobs, so
    /// concurrent and single-threaded deployments share one construction
    /// path. The churn schedule, if any, is ignored: fault injection on a
    /// `SharedCluster` happens through its own
    /// [`fail_node`](crate::concurrent::SharedCluster::fail_node) /
    /// [`rejoin_node`](crate::concurrent::SharedCluster::rejoin_node)
    /// calls (usually from a chaos thread), not an event-loop driver.
    ///
    /// # Panics
    ///
    /// Panics if the builder was created with fewer than 3 nodes (the
    /// overlay needs a ring).
    pub fn build_shared<R: Rng>(self, rng: &mut R) -> crate::concurrent::SharedCluster {
        let ClusterBuilder {
            nodes,
            capacity,
            config,
            churn: _,
            obs,
        } = self;
        let obs = obs.unwrap_or_else(Obs::global);
        crate::concurrent::SharedCluster::from_parts(nodes, capacity, config, obs, rng)
    }
}

/// A simulated Besteffs deployment: `n` storage units joined by a p2p
/// overlay, placing objects with the §5.3 algorithm.
///
/// # Examples
///
/// ```
/// use besteffs::Besteffs;
/// use sim_core::{rng, ByteSize, SimDuration, SimTime};
/// use temporal_importance::{Importance, ImportanceCurve, ObjectId, ObjectSpec};
///
/// let mut rand = rng::seeded(11);
/// let mut cluster = Besteffs::builder(50, ByteSize::from_gib(1)).build(&mut rand);
/// let spec = ObjectSpec::new(
///     ObjectId::new(0),
///     ByteSize::from_mib(100),
///     ImportanceCurve::two_step(
///         Importance::FULL,
///         SimDuration::from_days(30),
///         SimDuration::from_days(30),
///     ),
/// );
/// let placed = cluster.place(spec, SimTime::ZERO, &mut rand)?;
/// assert!(cluster.node(placed.node).contains(ObjectId::new(0)));
/// # Ok::<(), besteffs::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Besteffs {
    units: Vec<StorageUnit>,
    alive: Vec<bool>,
    /// Per-node generation counter, bumped on every rejoin so object ids
    /// placed before a failure can never resolve against the reborn node.
    incarnations: Vec<u64>,
    overlay: Overlay,
    config: PlacementConfig,
    stats: ClusterStats,
    failure_epochs: Vec<FailureEpoch>,
    obs: Obs,
}

impl Besteffs {
    /// Starts building a cluster of `nodes` units of equal `capacity`.
    /// See [`ClusterBuilder`] for the knobs.
    pub fn builder(nodes: usize, capacity: ByteSize) -> ClusterBuilder {
        ClusterBuilder {
            nodes,
            capacity,
            config: PlacementConfig::default(),
            churn: None,
            obs: None,
        }
    }

    /// Creates a cluster of `nodes` units of equal `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 3` (the overlay needs a ring).
    #[deprecated(since = "0.1.0", note = "use `Besteffs::builder(nodes, capacity)`")]
    pub fn new<R: Rng>(
        nodes: usize,
        capacity: ByteSize,
        config: PlacementConfig,
        rng: &mut R,
    ) -> Self {
        Besteffs::builder(nodes, capacity)
            .placement(config)
            .build(rng)
    }

    /// Number of nodes (live and failed).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Cluster-level counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The placement configuration.
    pub fn config(&self) -> &PlacementConfig {
        &self.config
    }

    /// Borrow a node's storage unit.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &StorageUnit {
        &self.units[node.index()]
    }

    /// Mutably borrow a node's storage unit (e.g. to enable recording on
    /// a sampled subset).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_mut(&mut self, node: NodeId) -> &mut StorageUnit {
        &mut self.units[node.index()]
    }

    /// Iterates over `(id, unit)` for all live nodes.
    pub fn live_units(&self) -> impl Iterator<Item = (NodeId, &StorageUnit)> {
        self.units
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[i])
            .map(|(i, u)| (NodeId::new(i), u))
    }

    /// True if `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Adds a fresh storage node of the given capacity to the running
    /// cluster, wiring it into the overlay. Returns its id.
    ///
    /// Models the §5.3 expectation that "the university \[will\]
    /// continuously replace older desktops with newer desktops that will
    /// likely host larger disks": new nodes may have any capacity.
    pub fn add_node<R: Rng>(&mut self, capacity: ByteSize, rng: &mut R) -> NodeId {
        let degree = 6.min(self.units.len()).max(2);
        let id = self.overlay.add_node(degree, rng);
        debug_assert_eq!(id.index(), self.units.len());
        self.units.push(
            StorageUnit::builder(capacity)
                .recording(false)
                .observer(self.obs.clone())
                .build(),
        );
        self.alive.push(true);
        self.incarnations.push(0);
        self.obs.counter("cluster.nodes_added", 1);
        id
    }

    /// Attaches an observability handle after construction, forwarding it
    /// to every existing storage unit. Units created later (rejoin
    /// replacements, [`add_node`](Besteffs::add_node)) inherit it too.
    pub fn set_observer(&mut self, obs: Obs) {
        for unit in &mut self.units {
            unit.set_observer(obs.clone());
        }
        self.obs = obs;
    }

    /// Fails a node at `now`: its objects are lost (Besteffs does not
    /// replicate) and a [`FailureEpoch`] is recorded. Returns the number
    /// of objects lost. Failing a dead node is a no-op.
    ///
    /// This low-level path leaves the [`Directory`] untouched — callers
    /// that track one should use [`fail_node_purging`] so stale entries
    /// cannot keep resolving to the dead node.
    ///
    /// [`fail_node_purging`]: Besteffs::fail_node_purging
    pub fn fail_node(&mut self, node: NodeId, now: SimTime) -> u64 {
        let i = node.index();
        if !self.alive[i] {
            return 0;
        }
        self.alive[i] = false;
        let lost_objects = self.units[i].len() as u64;
        let lost_bytes = self.units[i].used().as_bytes();
        self.stats.failed_nodes += 1;
        self.stats.objects_lost += lost_objects;
        self.stats.bytes_lost += lost_bytes;
        self.failure_epochs.push(FailureEpoch {
            at: now,
            node,
            incarnation: self.incarnations[i],
            objects_lost: lost_objects,
            bytes_lost: lost_bytes,
        });
        self.units[i] = StorageUnit::builder(self.units[i].capacity())
            .recording(false)
            .observer(self.obs.clone())
            .build();
        self.obs.counter("cluster.node_failures", 1);
        self.obs.event(
            now,
            "cluster.node_fail",
            &[
                ("node", i as u64),
                ("objects_lost", lost_objects),
                ("bytes_lost", lost_bytes),
            ],
        );
        lost_objects
    }

    /// Fails a node and drops every directory entry that still resolves
    /// to it, so lookups cannot return objects that died with the node.
    /// Returns the objects lost (failing a dead node is a no-op and
    /// purges nothing).
    pub fn fail_node_purging(
        &mut self,
        node: NodeId,
        now: SimTime,
        directory: &mut Directory,
    ) -> u64 {
        let i = node.index();
        if !self.alive[i] {
            return 0;
        }
        let lost = self.fail_node(node, now);
        let purged = directory.purge_node(node) as u64;
        self.stats.directory_entries_purged += purged;
        self.obs.counter("directory.entries_purged", purged);
        lost
    }

    /// Rejoins a failed node: it comes back *empty*, under a fresh
    /// incarnation, and immediately re-enters the live-walk candidate set
    /// (its overlay edges survive the outage — a rebooted desktop keeps
    /// its neighbors). Returns false (a no-op) if the node is already
    /// alive.
    pub fn rejoin_node(&mut self, node: NodeId) -> bool {
        let i = node.index();
        if self.alive[i] {
            return false;
        }
        debug_assert_eq!(self.units[i].len(), 0, "failed node must be empty");
        self.alive[i] = true;
        self.incarnations[i] += 1;
        self.stats.rejoined_nodes += 1;
        self.obs.counter("cluster.node_rejoins", 1);
        true
    }

    /// The node's current incarnation: 0 until its first rejoin, then one
    /// higher per recovery. Placements record it so pre-failure object
    /// ids cannot resurrect on the reborn node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn incarnation(&self, node: NodeId) -> u64 {
        self.incarnations[node.index()]
    }

    /// True if `entry` still resolves: its node is alive *and* running
    /// the same incarnation the entry was published under.
    pub fn entry_is_current(&self, entry: crate::directory::VersionEntry) -> bool {
        self.alive[entry.node.index()] && self.incarnations[entry.node.index()] == entry.incarnation
    }

    /// Every recorded node-failure event, in injection order.
    pub fn failure_epochs(&self) -> &[FailureEpoch] {
        &self.failure_epochs
    }

    /// Places an object with the §5.3 algorithm.
    ///
    /// Each try samples `x` distinct live units by random walks and asks
    /// each for the *highest importance object that would be preempted*.
    /// A unit scoring zero accepts the object immediately; otherwise up to
    /// `m` tries run and the lowest-scoring admitting unit wins. The score
    /// is deliberately *not* weighted by victim sizes, matching the paper.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::NoLiveNodes`] — the cluster has no live nodes.
    /// * [`PlacementError::ClusterFull`] — every probed unit was full for
    ///   this object's importance level.
    pub fn place<R: Rng>(
        &mut self,
        spec: ObjectSpec,
        now: SimTime,
        rng: &mut R,
    ) -> Result<PlacementOutcome, PlacementError> {
        let _span = self.obs.span("span.cluster.place");
        if self.live_nodes() == 0 {
            return Err(PlacementError::NoLiveNodes);
        }
        let incoming = spec.curve().initial_importance();
        let start = self.random_live_start(rng);

        let mut best: Option<(NodeId, Importance)> = None;
        let mut probed = 0usize;
        let mut tries_used = 0usize;

        'tries: for try_index in 0..self.config.max_tries {
            tries_used = try_index + 1;
            let alive = &self.alive;
            let (candidates, hops) = self.overlay.sample_walks_counted(
                start,
                self.config.candidates_per_try,
                self.config.walk_steps,
                rng,
                |n| alive[n.index()],
            );
            self.obs.counter("cluster.walks", candidates.len() as u64);
            self.obs.record("cluster.walk_hops", hops);
            for node in candidates {
                probed += 1;
                let unit = &mut self.units[node.index()];
                // Bring the probed unit's incremental indexes up to `now`
                // so the admission preview runs on the indexed fast path.
                unit.advance(now);
                let admission = unit.peek_admission(spec.size(), incoming, now);
                let Some(score) = admission.placement_score() else {
                    continue; // full for this object
                };
                if score.is_zero() {
                    // "If the highest preempted objects' importance value
                    // ... is zero, then the object can be directly stored."
                    best = Some((node, score));
                    break 'tries;
                }
                if best.is_none_or(|(_, b)| score < b) {
                    best = Some((node, score));
                }
            }
        }

        let Some((node, score)) = best else {
            self.stats.rejected += 1;
            self.obs.counter("cluster.rejections", 1);
            return Err(PlacementError::ClusterFull { probed, incoming });
        };
        let outcome = self.units[node.index()]
            .store(spec, now)
            .expect("peeked unit must admit");
        self.stats.placed += 1;
        self.obs.counter("cluster.placements", 1);
        self.obs.record("cluster.probes", probed as u64);
        if score.is_zero() {
            self.stats.direct_stores += 1;
            self.obs.counter("cluster.direct_stores", 1);
        }
        Ok(PlacementOutcome {
            node,
            outcome,
            tries: tries_used,
            probed,
        })
    }

    /// Brings every live node's incremental engine indexes up to `now`.
    ///
    /// Sampling loops that read [`importance_density`] between placements
    /// should call this first so density reads stay `O(live nodes)`
    /// instead of re-scanning every stored object. Large fleets advance
    /// their nodes on worker threads (node state is independent).
    ///
    /// [`importance_density`]: Besteffs::importance_density
    pub fn advance(&mut self, now: SimTime) {
        let _span = self.obs.span("span.cluster.advance");
        if self.units.len() < PARALLEL_THRESHOLD {
            for (i, unit) in self.units.iter_mut().enumerate() {
                if self.alive[i] {
                    unit.advance(now);
                }
            }
            return;
        }
        let chunk = self.units.len().div_ceil(worker_count(self.units.len()));
        let alive = &self.alive;
        crossbeam::thread::scope(|s| {
            for (ci, units) in self.units.chunks_mut(chunk).enumerate() {
                let base = ci * chunk;
                s.spawn(move |_| {
                    for (j, unit) in units.iter_mut().enumerate() {
                        if alive[base + j] {
                            unit.advance(now);
                        }
                    }
                });
            }
        })
        .expect("advance worker panicked");
    }

    /// Sweeps expired objects on all live nodes, returning the records
    /// (empty unless recording is enabled on the node — records returned
    /// here are generated regardless of the recording flag).
    ///
    /// Per-node sweeps are independent, so large fleets run them on
    /// worker threads; records are merged in node order either way, so
    /// the result does not depend on the execution strategy.
    pub fn sweep_expired(&mut self, now: SimTime) -> Vec<EvictionRecord> {
        let _span = self.obs.span("span.cluster.sweep");
        if self.units.len() < PARALLEL_THRESHOLD {
            let mut out = Vec::new();
            for (i, unit) in self.units.iter_mut().enumerate() {
                if self.alive[i] {
                    out.extend(unit.sweep_expired(now));
                }
            }
            return out;
        }
        let chunk = self.units.len().div_ceil(worker_count(self.units.len()));
        let alive = &self.alive;
        let per_chunk: Vec<Vec<EvictionRecord>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = self
                .units
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, units)| {
                    let base = ci * chunk;
                    s.spawn(move |_| {
                        let mut records = Vec::new();
                        for (j, unit) in units.iter_mut().enumerate() {
                            if alive[base + j] {
                                records.extend(unit.sweep_expired(now));
                            }
                        }
                        records
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
        .expect("sweep worker panicked");
        per_chunk.into_iter().flatten().collect()
    }

    /// Total bytes stored across live nodes.
    pub fn used(&self) -> ByteSize {
        self.live_units().map(|(_, u)| u.used()).sum()
    }

    /// Total capacity across live nodes.
    pub fn capacity(&self) -> ByteSize {
        self.live_units().map(|(_, u)| u.capacity()).sum()
    }

    /// The cluster-wide average storage importance density at `now`:
    /// importance-weighted bytes over total live capacity.
    ///
    /// Per-node densities of large fleets are computed on worker threads;
    /// the reduction always runs sequentially in node order, so the result
    /// is bit-identical to a serial evaluation.
    pub fn importance_density(&self, now: SimTime) -> f64 {
        let capacity = self.capacity().as_bytes() as f64;
        if capacity == 0.0 {
            return 0.0;
        }
        let weighted: f64 = if self.units.len() < PARALLEL_THRESHOLD {
            self.live_units()
                .map(|(_, u)| u.importance_density(now) * u.capacity().as_bytes() as f64)
                .sum()
        } else {
            let chunk = self.units.len().div_ceil(worker_count(self.units.len()));
            let alive = &self.alive;
            let per_chunk: Vec<Vec<f64>> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = self
                    .units
                    .chunks(chunk)
                    .enumerate()
                    .map(|(ci, units)| {
                        let base = ci * chunk;
                        s.spawn(move |_| {
                            units
                                .iter()
                                .enumerate()
                                .filter(|&(j, _)| alive[base + j])
                                .map(|(_, u)| {
                                    u.importance_density(now) * u.capacity().as_bytes() as f64
                                })
                                .collect::<Vec<f64>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("density worker panicked"))
                    .collect()
            })
            .expect("density worker panicked");
            // Sequential left-fold in node order: same float additions in
            // the same order as the serial path.
            per_chunk.into_iter().flatten().sum()
        };
        weighted / capacity
    }

    /// Samples the cluster into the observer and returns the cluster-wide
    /// density (the same value as [`importance_density`]).
    ///
    /// Emits one `cluster.node` event per node (density, occupancy, and
    /// liveness — dead nodes report zeros) followed by a single
    /// `cluster.density` rollup. Fractions are scaled to parts-per-million
    /// so traces stay integer-only. Emission always runs sequentially in
    /// node order, even on fleets large enough that the density *reads*
    /// fan out to worker threads, so traces are byte-identical regardless
    /// of fleet size.
    ///
    /// [`importance_density`]: Besteffs::importance_density
    pub fn observe_density(&self, now: SimTime) -> f64 {
        let density = self.importance_density(now);
        if !self.obs.is_enabled() {
            return density;
        }
        let ppm = |fraction: f64| (fraction * 1e6).round() as u64;
        for (i, unit) in self.units.iter().enumerate() {
            let live = self.alive[i];
            let (node_density, node_used) = if live {
                (
                    unit.importance_density(now),
                    unit.used().ratio(unit.capacity()),
                )
            } else {
                (0.0, 0.0)
            };
            self.obs.event(
                now,
                "cluster.node",
                &[
                    ("node", i as u64),
                    ("density_ppm", ppm(node_density)),
                    ("used_ppm", ppm(node_used)),
                    ("live", live as u64),
                ],
            );
        }
        let used = self
            .used()
            .ratio(self.capacity().max(ByteSize::from_bytes(1)));
        self.obs.event(
            now,
            "cluster.density",
            &[("density_ppm", ppm(density)), ("used_ppm", ppm(used))],
        );
        density
    }

    /// Locates the live node storing `id`, if any (directory-service
    /// lookup; the simulation keeps it simple with a scan).
    pub fn locate(&self, id: ObjectId) -> Option<NodeId> {
        self.live_units()
            .find(|(_, u)| u.contains(id))
            .map(|(n, _)| n)
    }

    fn random_live_start<R: Rng>(&self, rng: &mut R) -> NodeId {
        loop {
            let i = rng.gen_range(0..self.units.len());
            if self.alive[i] {
                return NodeId::new(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{rng, SimDuration};
    use temporal_importance::ImportanceCurve;

    fn spec(id: u64, mib: u64, importance: f64, expiry_days: u64) -> ObjectSpec {
        ObjectSpec::new(
            ObjectId::new(id),
            ByteSize::from_mib(mib),
            ImportanceCurve::Fixed {
                importance: Importance::new(importance).unwrap(),
                expiry: SimDuration::from_days(expiry_days),
            },
        )
    }

    fn small_cluster(seed: u64) -> (Besteffs, rand::rngs::StdRng) {
        let mut rand = rng::seeded(seed);
        let cluster = Besteffs::builder(20, ByteSize::from_mib(100)).build(&mut rand);
        (cluster, rand)
    }

    #[test]
    fn places_objects_and_locates_them() {
        let (mut cluster, mut rand) = small_cluster(1);
        let placed = cluster
            .place(spec(1, 50, 1.0, 30), SimTime::ZERO, &mut rand)
            .unwrap();
        assert_eq!(cluster.locate(ObjectId::new(1)), Some(placed.node));
        assert_eq!(cluster.stats().placed, 1);
        assert_eq!(cluster.stats().direct_stores, 1);
        assert_eq!(cluster.used(), ByteSize::from_mib(50));
    }

    #[test]
    fn fills_cluster_then_rejects_low_importance() {
        let (mut cluster, mut rand) = small_cluster(2);
        // Fill every node with full-importance data.
        let mut id = 0u64;
        let mut rejected = false;
        for _ in 0..3000 {
            id += 1;
            match cluster.place(spec(id, 25, 1.0, 3650), SimTime::ZERO, &mut rand) {
                Ok(_) => {}
                Err(PlacementError::ClusterFull { .. }) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected, "cluster should eventually be full");
        // Cluster is essentially full of importance-1.0 data: a lower
        // importance object is rejected...
        let err = cluster
            .place(spec(99_999, 25, 0.5, 30), SimTime::ZERO, &mut rand)
            .unwrap_err();
        assert!(matches!(err, PlacementError::ClusterFull { .. }));
        assert!(cluster.stats().rejected >= 2);
    }

    #[test]
    fn higher_importance_preempts_lower_across_cluster() {
        let (mut cluster, mut rand) = small_cluster(3);
        // Fill every node to the brim with 0.3-importance data (directly,
        // so no node retains free space that random sampling might miss).
        let mut id = 0u64;
        for i in 0..cluster.len() {
            for _ in 0..2 {
                id += 1;
                cluster
                    .node_mut(NodeId::new(i))
                    .store(spec(id, 50, 0.3, 3650), SimTime::ZERO)
                    .unwrap();
            }
        }
        assert_eq!(cluster.used(), cluster.capacity());
        // A 0.9-importance object still finds room by preempting.
        let placed = cluster
            .place(spec(50_000, 50, 0.9, 30), SimTime::ZERO, &mut rand)
            .unwrap();
        assert!(!placed.outcome.evicted.is_empty());
        assert_eq!(
            placed.outcome.highest_preempted,
            Some(Importance::new(0.3).unwrap())
        );
    }

    #[test]
    fn placement_prefers_empty_units() {
        let (mut cluster, mut rand) = small_cluster(4);
        // With mostly-empty units, placements should be direct stores.
        for i in 0..10 {
            let p = cluster
                .place(spec(i, 10, 1.0, 30), SimTime::ZERO, &mut rand)
                .unwrap();
            assert_eq!(p.outcome.highest_preempted, None);
            assert_eq!(p.tries, 1);
        }
        assert_eq!(cluster.stats().direct_stores, 10);
    }

    #[test]
    fn node_failure_loses_objects_without_replication() {
        let (mut cluster, mut rand) = small_cluster(5);
        let placed = cluster
            .place(spec(1, 50, 1.0, 30), SimTime::ZERO, &mut rand)
            .unwrap();
        let lost = cluster.fail_node(placed.node, SimTime::ZERO);
        assert_eq!(lost, 1);
        assert_eq!(cluster.locate(ObjectId::new(1)), None);
        assert_eq!(cluster.stats().objects_lost, 1);
        assert_eq!(cluster.live_nodes(), 19);
        // Idempotent.
        assert_eq!(cluster.fail_node(placed.node, SimTime::ZERO), 0);
        assert_eq!(cluster.stats().failed_nodes, 1);
        assert_eq!(cluster.failure_epochs().len(), 1);
        assert_eq!(cluster.failure_epochs()[0].objects_lost, 1);
        // Placement still works around the failure.
        let again = cluster
            .place(spec(2, 50, 1.0, 30), SimTime::ZERO, &mut rand)
            .unwrap();
        assert!(cluster.is_alive(again.node));
    }

    #[test]
    fn all_nodes_failed_yields_no_live_nodes() {
        let (mut cluster, mut rand) = small_cluster(6);
        for i in 0..20 {
            cluster.fail_node(NodeId::new(i), SimTime::ZERO);
        }
        let err = cluster
            .place(spec(1, 10, 1.0, 30), SimTime::ZERO, &mut rand)
            .unwrap_err();
        assert_eq!(err, PlacementError::NoLiveNodes);
    }

    #[test]
    fn cluster_density_aggregates_nodes() {
        let (mut cluster, mut rand) = small_cluster(7);
        assert_eq!(cluster.importance_density(SimTime::ZERO), 0.0);
        for i in 0..20 {
            let _ = cluster.place(spec(i, 50, 1.0, 3650), SimTime::ZERO, &mut rand);
        }
        let d = cluster.importance_density(SimTime::ZERO);
        // 20 × 50 MiB of importance-1.0 data over 2,000 MiB capacity.
        assert!((d - 0.5).abs() < 0.01, "density {d}");
    }

    #[test]
    fn sweep_expired_reclaims_cluster_wide() {
        let (mut cluster, mut rand) = small_cluster(8);
        for i in 0..5 {
            cluster
                .place(spec(i, 10, 1.0, 10), SimTime::ZERO, &mut rand)
                .unwrap();
        }
        let swept = cluster.sweep_expired(SimTime::from_days(30));
        assert_eq!(swept.len(), 5);
        assert_eq!(cluster.used(), ByteSize::ZERO);
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use sim_core::{rng, SimDuration};
    use temporal_importance::ImportanceCurve;

    fn spec(id: u64, mib: u64) -> ObjectSpec {
        ObjectSpec::new(
            ObjectId::new(id),
            ByteSize::from_mib(mib),
            ImportanceCurve::fixed_lifetime(SimDuration::from_days(365)),
        )
    }

    #[test]
    fn added_nodes_join_the_overlay_and_accept_placements() {
        let mut rand = rng::seeded(21);
        let mut cluster = Besteffs::builder(10, ByteSize::from_mib(50)).build(&mut rand);
        // Fill the original fleet to the brim.
        let mut id = 0u64;
        for i in 0..10 {
            id += 1;
            cluster
                .node_mut(NodeId::new(i))
                .store(spec(id, 50), SimTime::ZERO)
                .unwrap();
        }
        assert!(cluster
            .place(spec(9_000, 50), SimTime::ZERO, &mut rand)
            .is_err());

        // Add bigger replacement desktops; capacity grows and placements
        // succeed again without touching any annotation.
        for _ in 0..5 {
            let node = cluster.add_node(ByteSize::from_mib(200), &mut rand);
            assert!(cluster.is_alive(node));
        }
        assert_eq!(cluster.len(), 15);
        assert_eq!(cluster.capacity(), ByteSize::from_mib(10 * 50 + 5 * 200));
        let mut placed = 0;
        for i in 0..20u64 {
            if cluster
                .place(spec(10_000 + i, 50), SimTime::ZERO, &mut rand)
                .is_ok()
            {
                placed += 1;
            }
        }
        assert!(placed > 10, "only {placed} placements landed on new nodes");
    }

    /// Regression: `fail_node` alone used to leave `Directory` entries
    /// resolvable to the dead node; the cluster-level failure path must
    /// purge them.
    #[test]
    fn fail_node_purging_drops_stale_directory_entries() {
        let mut rand = rng::seeded(23);
        let mut cluster = Besteffs::builder(10, ByteSize::from_mib(100)).build(&mut rand);
        let mut dir = crate::directory::Directory::new();
        let placed = cluster
            .place(spec(1, 10), SimTime::ZERO, &mut rand)
            .unwrap();
        let name = crate::directory::ObjectName::from("doomed");
        dir.publish_on(
            name.clone(),
            ObjectId::new(1),
            placed.node,
            cluster.incarnation(placed.node),
        );
        assert!(cluster.entry_is_current(dir.latest(&name).unwrap()));

        let lost = cluster.fail_node_purging(placed.node, SimTime::from_days(1), &mut dir);
        assert_eq!(lost, 1);
        assert_eq!(dir.latest(&name), None, "stale entry must be purged");
        assert_eq!(cluster.stats().directory_entries_purged, 1);
        // Failing the same dead node again purges nothing more.
        assert_eq!(
            cluster.fail_node_purging(placed.node, SimTime::from_days(2), &mut dir),
            0
        );
        assert_eq!(cluster.stats().directory_entries_purged, 1);
    }

    /// A rejoined node comes back empty under a fresh incarnation, so an
    /// entry published before the failure can never resurrect even if the
    /// purge was skipped.
    #[test]
    fn rejoin_bumps_incarnation_and_blocks_resurrection() {
        let mut rand = rng::seeded(24);
        let mut cluster = Besteffs::builder(10, ByteSize::from_mib(100)).build(&mut rand);
        let mut dir = crate::directory::Directory::new();
        let placed = cluster
            .place(spec(7, 10), SimTime::ZERO, &mut rand)
            .unwrap();
        let name = crate::directory::ObjectName::from("zombie");
        dir.publish_on(
            name.clone(),
            ObjectId::new(7),
            placed.node,
            cluster.incarnation(placed.node),
        );

        // Fail WITHOUT purging — the stale entry survives in the directory.
        cluster.fail_node(placed.node, SimTime::from_days(1));
        assert!(!cluster.rejoin_node(NodeId::new((placed.node.index() + 1) % cluster.len())));
        assert!(cluster.rejoin_node(placed.node));
        assert_eq!(cluster.incarnation(placed.node), 1);
        assert_eq!(cluster.stats().rejoined_nodes, 1);
        assert!(cluster.is_alive(placed.node));
        assert_eq!(
            cluster.node(placed.node).len(),
            0,
            "rejoins come back empty"
        );

        // The pre-failure entry points at a live node but a dead
        // incarnation: it must not resolve.
        let stale = dir.latest(&name).unwrap();
        assert!(!cluster.entry_is_current(stale));

        // A fresh placement on the reborn node resolves fine.
        let again = cluster
            .place(spec(8, 10), SimTime::from_days(2), &mut rand)
            .unwrap();
        dir.publish_on(
            name.clone(),
            ObjectId::new(8),
            again.node,
            cluster.incarnation(again.node),
        );
        assert!(cluster.entry_is_current(dir.latest(&name).unwrap()));
    }

    /// Placement, advance, sweep and density all work across a rejoin:
    /// the reborn node re-enters the live-walk candidate set.
    #[test]
    fn rejoined_nodes_reenter_the_candidate_set() {
        let mut rand = rng::seeded(25);
        let mut cluster = Besteffs::builder(10, ByteSize::from_mib(50)).build(&mut rand);
        for i in 0..10 {
            cluster.fail_node(NodeId::new(i), SimTime::ZERO);
        }
        assert_eq!(cluster.live_nodes(), 0);
        for i in 0..10 {
            cluster.rejoin_node(NodeId::new(i));
        }
        assert_eq!(cluster.live_nodes(), 10);
        let mut landed = 0;
        for i in 0..20u64 {
            if cluster
                .place(spec(100 + i, 10), SimTime::from_days(1), &mut rand)
                .is_ok()
            {
                landed += 1;
            }
        }
        assert!(landed > 10, "rejoined fleet only accepted {landed}");
        cluster.advance(SimTime::from_days(2));
        assert!(cluster.importance_density(SimTime::from_days(2)) > 0.0);
    }

    /// Regression: loss accounting across repeated fail → rejoin →
    /// publish cycles must stay exact. An earlier audit worried that a
    /// node failing between `fail_node` and the directory purge (or a
    /// second failure of an already-dead node) could double-count purged
    /// entries or lost objects; this pins the books.
    #[test]
    fn repeated_failure_cycles_never_double_count_losses() {
        let mut rand = rng::seeded(29);
        let mut cluster = Besteffs::builder(10, ByteSize::from_mib(100)).build(&mut rand);
        let mut dir = crate::directory::Directory::new();

        let mut published = 0u64;
        let mut expected_lost = 0u64;
        let mut id = 0u64;
        for cycle in 0..4 {
            // Publish a couple of fresh objects each cycle.
            let mut target = None;
            for _ in 0..2 {
                id += 1;
                let placed = cluster
                    .place(spec(id, 5), SimTime::from_days(cycle * 10), &mut rand)
                    .unwrap();
                dir.publish_on(
                    crate::directory::ObjectName::new(format!("obj-{id}")),
                    ObjectId::new(id),
                    placed.node,
                    cluster.incarnation(placed.node),
                );
                published += 1;
                target = Some(placed.node);
            }
            let node = target.unwrap();
            expected_lost += cluster.node(node).len() as u64;
            let lost =
                cluster.fail_node_purging(node, SimTime::from_days(cycle * 10 + 5), &mut dir);
            // Failing the node again while it is down must be a no-op.
            assert_eq!(
                cluster.fail_node_purging(node, SimTime::from_days(cycle * 10 + 6), &mut dir),
                0
            );
            assert!(lost >= 1);
            cluster.rejoin_node(node);
        }

        let stats = cluster.stats();
        assert_eq!(stats.objects_lost, expected_lost);
        assert_eq!(
            stats.objects_lost,
            cluster
                .failure_epochs()
                .iter()
                .map(|e| e.objects_lost)
                .sum::<u64>(),
            "epochs and stats must agree"
        );
        // Every directory entry is either still resolvable or was purged
        // exactly once: no entry is lost twice, none resurrects.
        let surviving = dir.len() as u64;
        assert_eq!(surviving + stats.directory_entries_purged, published);
        for name in dir.names() {
            let entry = dir.latest(name).unwrap();
            assert!(
                cluster.entry_is_current(entry),
                "surviving entry {name:?} must resolve to a live incarnation"
            );
        }
    }

    #[test]
    fn grown_overlay_stays_connected() {
        let mut rand = rng::seeded(22);
        let mut cluster = Besteffs::builder(5, ByteSize::from_mib(10)).build(&mut rand);
        for _ in 0..50 {
            cluster.add_node(ByteSize::from_mib(10), &mut rand);
        }
        assert_eq!(cluster.len(), 55);
        // Walk sampling reaches the newcomers.
        let sampled = (0..200)
            .map(|_| {
                cluster
                    .place(
                        spec(rand.gen_range(100_000..u64::MAX), 5),
                        SimTime::ZERO,
                        &mut rand,
                    )
                    .map(|p| p.node.index())
                    .unwrap_or(0)
            })
            .filter(|&n| n >= 5)
            .count();
        assert!(sampled > 50, "new nodes rarely sampled: {sampled}");
    }
}
