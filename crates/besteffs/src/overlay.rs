//! The p2p overlay graph and its random walks.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a storage node in the overlay.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(raw: usize) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A connected, approximately-regular random overlay graph.
///
/// Built as a ring (guaranteeing connectivity) plus random chords until
/// every node has at least `degree` neighbors. Random walks over the
/// overlay provide the uniform-ish node samples the §5.3 placement
/// algorithm relies on.
///
/// # Examples
///
/// ```
/// use besteffs::Overlay;
/// use sim_core::rng;
///
/// let mut rand = rng::seeded(7);
/// let overlay = Overlay::random(100, 6, &mut rand);
/// assert_eq!(overlay.len(), 100);
/// let walk_end = overlay.random_walk(besteffs::NodeId::new(0), 10, &mut rand);
/// assert!(walk_end.index() < 100);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Overlay {
    neighbors: Vec<Vec<NodeId>>,
}

impl Overlay {
    /// Builds a random overlay of `nodes` nodes with target `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 3` or `degree < 2`.
    pub fn random<R: Rng>(nodes: usize, degree: usize, rng: &mut R) -> Self {
        assert!(nodes >= 3, "overlay needs at least 3 nodes");
        assert!(degree >= 2, "overlay degree must be at least 2");
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::with_capacity(degree); nodes];
        // Ring edges for connectivity.
        for i in 0..nodes {
            let next = (i + 1) % nodes;
            neighbors[i].push(NodeId(next));
            neighbors[next].push(NodeId(i));
        }
        // Random chords until the target degree is met.
        for i in 0..nodes {
            let mut guard = 0;
            while neighbors[i].len() < degree && guard < 100 {
                guard += 1;
                let j = rng.gen_range(0..nodes);
                if j == i || neighbors[i].contains(&NodeId(j)) {
                    continue;
                }
                neighbors[i].push(NodeId(j));
                neighbors[j].push(NodeId(i));
            }
        }
        Overlay { neighbors }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True if the overlay has no nodes (never, for constructed overlays).
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.0]
    }

    /// Performs a `steps`-hop uniform random walk from `start`.
    pub fn random_walk<R: Rng>(&self, start: NodeId, steps: usize, rng: &mut R) -> NodeId {
        let mut at = start;
        for _ in 0..steps {
            let next = self.neighbors[at.0]
                .choose(rng)
                .expect("every node has ring neighbors");
            at = *next;
        }
        at
    }

    /// Performs a `steps`-hop random walk that only ever hops onto nodes
    /// for which `alive` returns true — a failed desktop cannot forward a
    /// walk. Returns `None` if the walk gets stuck (no live neighbor) or
    /// ends on a dead node (only possible for `steps == 0` from a dead
    /// start).
    ///
    /// When every node is alive this consumes the RNG identically to
    /// [`random_walk`] (one uniform draw over the full neighbor list per
    /// hop), so churn-free simulations are bit-for-bit unchanged.
    pub fn random_walk_live<R, F>(
        &self,
        start: NodeId,
        steps: usize,
        rng: &mut R,
        alive: F,
    ) -> Option<NodeId>
    where
        R: Rng,
        F: Fn(NodeId) -> bool,
    {
        self.random_walk_live_counted(start, steps, rng, alive).0
    }

    /// [`random_walk_live`] plus the number of hops actually taken before
    /// the walk finished or got stuck — the figure placement telemetry
    /// records. Consumes the RNG identically to the uncounted form.
    ///
    /// [`random_walk_live`]: Overlay::random_walk_live
    pub fn random_walk_live_counted<R, F>(
        &self,
        start: NodeId,
        steps: usize,
        rng: &mut R,
        alive: F,
    ) -> (Option<NodeId>, u64)
    where
        R: Rng,
        F: Fn(NodeId) -> bool,
    {
        let mut at = start;
        let mut hops = 0u64;
        let mut live: Vec<NodeId> = Vec::new();
        for _ in 0..steps {
            live.clear();
            live.extend(self.neighbors[at.0].iter().copied().filter(|&n| alive(n)));
            let Some(next) = live.choose(rng) else {
                return (None, hops);
            };
            at = *next;
            hops += 1;
        }
        (alive(at).then_some(at), hops)
    }

    /// Samples up to `count` *distinct* live nodes by repeated live-aware
    /// random walks from `start` (see [`random_walk_live`]: dead nodes
    /// neither forward nor terminate a walk). Gives up after a bounded
    /// number of attempts, so the result may be shorter than `count` on
    /// small or heavily-failed overlays.
    ///
    /// [`random_walk_live`]: Overlay::random_walk_live
    pub fn sample_walks<R, F>(
        &self,
        start: NodeId,
        count: usize,
        steps: usize,
        rng: &mut R,
        alive: F,
    ) -> Vec<NodeId>
    where
        R: Rng,
        F: Fn(NodeId) -> bool,
    {
        self.sample_walks_counted(start, count, steps, rng, alive).0
    }

    /// [`sample_walks`] plus the total hops taken across every attempted
    /// walk (including walks that got stuck or landed on duplicates).
    /// Consumes the RNG identically to the uncounted form.
    ///
    /// [`sample_walks`]: Overlay::sample_walks
    pub fn sample_walks_counted<R, F>(
        &self,
        start: NodeId,
        count: usize,
        steps: usize,
        rng: &mut R,
        alive: F,
    ) -> (Vec<NodeId>, u64)
    where
        R: Rng,
        F: Fn(NodeId) -> bool,
    {
        let mut out: Vec<NodeId> = Vec::with_capacity(count);
        let mut hops = 0u64;
        let max_attempts = count * 8 + 16;
        for _ in 0..max_attempts {
            if out.len() >= count {
                break;
            }
            let (node, walked) = self.random_walk_live_counted(start, steps, rng, &alive);
            hops += walked;
            let Some(node) = node else {
                continue;
            };
            if !out.contains(&node) {
                out.push(node);
            }
        }
        (out, hops)
    }

    /// Joins a new node to the overlay, wiring it to `degree` random
    /// existing neighbors (always at least one, so it stays reachable).
    /// Returns the new node's id.
    ///
    /// This models the churn §5.3 anticipates: "we expect the university
    /// to continuously replace older desktops with newer desktops".
    pub fn add_node<R: Rng>(&mut self, degree: usize, rng: &mut R) -> NodeId {
        let id = NodeId(self.neighbors.len());
        self.neighbors.push(Vec::with_capacity(degree.max(1)));
        let existing = id.0;
        let mut guard = 0;
        while self.neighbors[id.0].len() < degree.max(1) && guard < 100 {
            guard += 1;
            let j = rng.gen_range(0..existing);
            if self.neighbors[id.0].contains(&NodeId(j)) {
                continue;
            }
            self.neighbors[id.0].push(NodeId(j));
            self.neighbors[j].push(id);
        }
        id
    }

    /// True if every node can reach every other (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.neighbors.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.neighbors.len()];
        let mut queue = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(i) = queue.pop() {
            for n in &self.neighbors[i] {
                if !seen[n.0] {
                    seen[n.0] = true;
                    visited += 1;
                    queue.push(n.0);
                }
            }
        }
        visited == self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng;

    #[test]
    fn overlay_is_connected_and_meets_degree() {
        let mut rand = rng::seeded(1);
        let overlay = Overlay::random(500, 8, &mut rand);
        assert!(overlay.is_connected());
        let min_degree = (0..500)
            .map(|i| overlay.neighbors(NodeId::new(i)).len())
            .min()
            .unwrap();
        assert!(min_degree >= 8);
    }

    #[test]
    fn walks_stay_in_range_and_mix() {
        let mut rand = rng::seeded(2);
        let overlay = Overlay::random(200, 6, &mut rand);
        let mut hits = vec![0u32; 200];
        for _ in 0..4000 {
            let end = overlay.random_walk(NodeId::new(0), 12, &mut rand);
            hits[end.index()] += 1;
        }
        // A 12-step walk over a degree-6 expander should reach a large
        // fraction of a 200-node overlay.
        let reached = hits.iter().filter(|&&h| h > 0).count();
        assert!(reached > 150, "walks reached only {reached} nodes");
    }

    #[test]
    fn sample_walks_returns_distinct_alive_nodes() {
        let mut rand = rng::seeded(3);
        let overlay = Overlay::random(100, 6, &mut rand);
        let dead = NodeId::new(5);
        let sample = overlay.sample_walks(NodeId::new(0), 10, 8, &mut rand, |n| n != dead);
        assert!(sample.len() <= 10);
        assert!(!sample.contains(&dead));
        let mut unique = sample.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), sample.len());
    }

    #[test]
    fn counted_walks_match_uncounted_and_report_hops() {
        let mut a = rng::seeded(9);
        let mut b = rng::seeded(9);
        let overlay_a = Overlay::random(50, 4, &mut a);
        let overlay_b = Overlay::random(50, 4, &mut b);
        let plain = overlay_a.sample_walks(NodeId::new(0), 5, 6, &mut a, |_| true);
        let (counted, hops) =
            overlay_b.sample_walks_counted(NodeId::new(0), 5, 6, &mut b, |_| true);
        assert_eq!(plain, counted, "counted variant must not perturb the RNG");
        // Every attempted walk runs all 6 hops on an all-alive overlay, and
        // at least `count` attempts are needed to find 5 distinct nodes.
        assert!(hops >= 30, "hops {hops}");
        assert_eq!(hops % 6, 0);
    }

    #[test]
    fn sample_walks_gives_up_gracefully_when_everything_is_dead() {
        let mut rand = rng::seeded(4);
        let overlay = Overlay::random(10, 3, &mut rand);
        let sample = overlay.sample_walks(NodeId::new(0), 5, 4, &mut rand, |_| false);
        assert!(sample.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_overlay_panics() {
        let mut rand = rng::seeded(5);
        let _ = Overlay::random(2, 2, &mut rand);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn degree_one_panics() {
        let mut rand = rng::seeded(6);
        let _ = Overlay::random(10, 1, &mut rand);
    }
}
