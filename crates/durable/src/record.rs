//! The durable log's record vocabulary.
//!
//! One design rule keeps recovery and compaction simple: **every
//! state-bearing record is authoritative**. [`LogRecord::Store`],
//! [`LogRecord::Annotate`], and [`LogRecord::Survivor`] each carry the
//! complete [`StoredObject`] — curve, arrival, annotation clock, class —
//! so replay is strictly latest-record-wins per id and a compactor can
//! rewrite any live object from its newest record alone, without chasing
//! a chain of deltas through older segments.
//!
//! Bookkeeping records close the loop: [`LogRecord::Dead`] tombstones
//! keep a dropped segment's kills visible to replay, and
//! [`LogRecord::Compacted`] is the *commit point* of a compaction — it
//! folds the victim segment's statistics and clock high-water marks into
//! the log so deleting the victim's file loses no accounting.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimTime};
use temporal_importance::{EvictionRecord, ObjectId, StoredObject, UnitStats};

/// A reclaimed object's identity and size — enough to replay the stats
/// and occupancy bookkeeping of an eviction without carrying the whole
/// object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Victim {
    /// The reclaimed object.
    pub id: ObjectId,
    /// Bytes it occupied.
    pub size: ByteSize,
}

impl From<&EvictionRecord> for Victim {
    fn from(record: &EvictionRecord) -> Self {
        Victim {
            id: record.id,
            size: record.size,
        }
    }
}

/// Why a store attempt was turned away. Every rejection still counts as
/// an attempt, so the log must remember them to replay [`UnitStats`]
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum RejectKind {
    /// Insufficient reclaimable importance below the incoming object's.
    Full,
    /// Larger than the unit's total capacity.
    TooLarge,
    /// An object with this id is already resident.
    Duplicate,
    /// Zero-byte spec.
    Empty,
    /// A rejection kind this version of the crate does not know —
    /// `StoreError` is non-exhaustive, and an attempt must still count.
    Other,
}

/// One entry in a segment. Serialized as self-describing JSON inside a
/// CRC-framed record (see [`frame`](crate::frame)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum LogRecord {
    /// An accepted store, with the objects it preempted.
    Store {
        /// Engine clock at the store.
        at: SimTime,
        /// The object as admitted (authoritative full state).
        object: StoredObject,
        /// Residents preempted to make room, in eviction order.
        evicted: Vec<Victim>,
    },
    /// A rejected store attempt.
    Reject {
        /// Engine clock at the attempt.
        at: SimTime,
        /// Which rejection path fired.
        kind: RejectKind,
    },
    /// An explicit removal.
    Remove {
        /// Engine clock at the removal.
        at: SimTime,
        /// The removed object.
        id: ObjectId,
        /// Bytes it occupied.
        size: ByteSize,
    },
    /// An expiry sweep. Recorded even when `expired` is empty so the
    /// sweep cadence clock survives a crash.
    Sweep {
        /// Engine clock at the sweep.
        at: SimTime,
        /// Objects reclaimed as expired.
        expired: Vec<Victim>,
    },
    /// A rejuvenation or reannotation; carries the object's complete
    /// post-annotation state so it supersedes the original `Store`.
    Annotate {
        /// Engine clock at the annotation.
        at: SimTime,
        /// The object after the annotation (authoritative full state).
        object: StoredObject,
    },
    /// A live object rewritten out of a compaction victim. Contributes
    /// nothing to statistics — the object's admission was already
    /// counted by its `Store`.
    Survivor {
        /// The object's current full state.
        object: StoredObject,
    },
    /// Tombstones re-asserting deaths whose killing records are being
    /// dropped with a compaction victim while stale full-state records
    /// of the same ids still exist in other segments.
    Dead {
        /// The ids that must stay dead on replay.
        ids: Vec<ObjectId>,
    },
    /// Commit point of a compaction: segment `seq` is now fully folded
    /// into this record and its file may be deleted. Recovery treats a
    /// segment with a surviving `Compacted` record as dropped.
    Compacted {
        /// The victim segment's sequence number.
        seq: u64,
        /// The victim's file size — bytes reclaimed on disk.
        bytes: u64,
        /// The statistics contribution of the victim's records.
        stats: UnitStats,
        /// The victim's engine-clock high-water mark.
        at: SimTime,
        /// The victim's sweep-clock high-water mark.
        sweep: SimTime,
    },
}

impl LogRecord {
    /// The engine-clock stamp this record advances, if any.
    pub fn at(&self) -> Option<SimTime> {
        match self {
            LogRecord::Store { at, .. }
            | LogRecord::Reject { at, .. }
            | LogRecord::Remove { at, .. }
            | LogRecord::Sweep { at, .. }
            | LogRecord::Annotate { at, .. }
            | LogRecord::Compacted { at, .. } => Some(*at),
            LogRecord::Survivor { .. } | LogRecord::Dead { .. } => None,
        }
    }

    /// The sweep-clock stamp this record advances, if any.
    pub fn sweep_at(&self) -> Option<SimTime> {
        match self {
            LogRecord::Sweep { at, .. } => Some(*at),
            LogRecord::Compacted { sweep, .. } => Some(*sweep),
            _ => None,
        }
    }

    /// This record's [`UnitStats`] contribution, mirroring the engine's
    /// counter discipline exactly: every store attempt (accepted or
    /// rejected) bumps `stores_attempted`; every byte leaving the unit
    /// bumps `bytes_evicted`. `Survivor` and `Dead` are compaction
    /// bookkeeping and contribute nothing; `Compacted` carries a folded
    /// segment's whole contribution verbatim.
    pub fn stats_delta(&self) -> UnitStats {
        let mut delta = UnitStats::default();
        match self {
            LogRecord::Store {
                object, evicted, ..
            } => {
                delta.stores_attempted = 1;
                delta.stores_accepted = 1;
                delta.bytes_accepted = object.size().as_bytes();
                delta.evictions_preempted = evicted.len() as u64;
                delta.bytes_evicted = evicted.iter().map(|v| v.size.as_bytes()).sum();
            }
            LogRecord::Reject { kind, .. } => {
                delta.stores_attempted = 1;
                match kind {
                    RejectKind::Full => delta.rejections_full = 1,
                    RejectKind::TooLarge => delta.rejections_too_large = 1,
                    RejectKind::Duplicate | RejectKind::Empty | RejectKind::Other => {}
                }
            }
            LogRecord::Remove { size, .. } => {
                delta.removals = 1;
                delta.bytes_evicted = size.as_bytes();
            }
            LogRecord::Sweep { expired, .. } => {
                delta.evictions_expired = expired.len() as u64;
                delta.bytes_evicted = expired.iter().map(|v| v.size.as_bytes()).sum();
            }
            LogRecord::Annotate { .. } | LogRecord::Survivor { .. } | LogRecord::Dead { .. } => {}
            LogRecord::Compacted { stats, .. } => delta = *stats,
        }
        delta
    }

    /// The full-state object this record asserts, if any.
    pub fn asserted(&self) -> Option<&StoredObject> {
        match self {
            LogRecord::Store { object, .. }
            | LogRecord::Annotate { object, .. }
            | LogRecord::Survivor { object } => Some(object),
            _ => None,
        }
    }

    /// The ids this record kills, appended to `out`.
    pub fn killed(&self, out: &mut Vec<ObjectId>) {
        match self {
            LogRecord::Store { evicted, .. } => out.extend(evicted.iter().map(|v| v.id)),
            LogRecord::Remove { id, .. } => out.push(*id),
            LogRecord::Sweep { expired, .. } => out.extend(expired.iter().map(|v| v.id)),
            LogRecord::Dead { ids } => out.extend(ids.iter().copied()),
            _ => {}
        }
    }
}
