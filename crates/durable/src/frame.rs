//! Record framing: `[len: u32 LE][crc32: u32 LE][payload]`.
//!
//! Every record appended to a segment is wrapped in this 8-byte header.
//! The CRC (CRC-32/IEEE, the Ethernet/zip polynomial) covers the payload
//! only; `len` covers the payload length. A reader walks frames from the
//! start of a segment and stops at the first inconsistency — a header
//! that runs past the file, a payload cut short, or a checksum mismatch.
//! Everything before that point is trusted; everything from it on is a
//! *torn tail*: the prefix a crashed writer managed to flush, plus
//! whatever bytes the filesystem happened to persist after it. Recovery
//! truncates the torn tail of the **last** segment (normal crash
//! semantics — the record was never acknowledged) and refuses anything
//! torn in an earlier segment (sealed segments are immutable, so damage
//! there is real corruption, not a crash artifact).

/// Framed-record header length: `len` + `crc32`.
pub(crate) const HEADER: usize = 8;

/// CRC-32/IEEE lookup table, generated at compile time (the container
/// vendors no checksum crate, and the table is 15 lines of shifts).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes` (reflected, init/xorout `0xffff_ffff`).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// Appends one framed record to `out`.
pub(crate) fn encode(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The framed length of a payload of `len` bytes.
pub(crate) fn framed_len(len: usize) -> u64 {
    (HEADER + len) as u64
}

/// Walks `bytes` frame by frame, yielding `(payload, framed_len)` for
/// every intact record and reporting where the clean prefix ends.
#[derive(Debug)]
pub(crate) struct FrameScan<'a> {
    /// Payload slices of the intact records, in file order.
    pub payloads: Vec<(&'a [u8], u64)>,
    /// File offset where the clean prefix ends. Equal to `bytes.len()`
    /// when every byte framed cleanly; anything after it is a torn tail.
    pub clean_len: u64,
}

impl FrameScan<'_> {
    /// True when the scan stopped before the end of the input.
    pub fn torn(&self, total: u64) -> bool {
        self.clean_len < total
    }
}

/// Scans a segment's bytes. Never fails: damage simply ends the clean
/// prefix, and the caller decides whether a torn tail is a crash artifact
/// (last segment) or corruption (sealed segment).
pub(crate) fn scan(bytes: &[u8]) -> FrameScan<'_> {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= HEADER {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let start = offset + HEADER;
        let Some(end) = start.checked_add(len as usize) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break;
        }
        payloads.push((payload, framed_len(len as usize)));
        offset = end;
    }
    FrameScan {
        payloads,
        clean_len: offset as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/IEEE check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_then_scan_round_trips() {
        let mut buf = Vec::new();
        encode(b"alpha", &mut buf);
        encode(b"", &mut buf);
        encode(b"gamma-delta", &mut buf);
        let scan = scan(&buf);
        let got: Vec<&[u8]> = scan.payloads.iter().map(|(p, _)| *p).collect();
        assert_eq!(got, vec![&b"alpha"[..], &b""[..], &b"gamma-delta"[..]]);
        assert_eq!(scan.clean_len, buf.len() as u64);
        assert!(!scan.torn(buf.len() as u64));
    }

    #[test]
    fn torn_tail_ends_the_clean_prefix() {
        let mut buf = Vec::new();
        encode(b"kept", &mut buf);
        let clean = buf.len() as u64;

        // A record cut mid-payload.
        let mut cut = buf.clone();
        encode(b"lost-in-the-crash", &mut cut);
        cut.truncate(buf.len() + HEADER + 4);
        let s = scan(&cut);
        assert_eq!(s.payloads.len(), 1);
        assert_eq!(s.clean_len, clean);
        assert!(s.torn(cut.len() as u64));

        // A record with a corrupted byte fails its checksum.
        let mut flipped = buf.clone();
        encode(b"bit-rotted", &mut flipped);
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let s = scan(&flipped);
        assert_eq!(s.payloads.len(), 1);
        assert_eq!(s.clean_len, clean);

        // A header whose length field runs past the file.
        let mut overlong = buf.clone();
        overlong.extend_from_slice(&u32::MAX.to_le_bytes());
        overlong.extend_from_slice(&[0, 0, 0, 0]);
        let s = scan(&overlong);
        assert_eq!(s.clean_len, clean);

        // Fewer than HEADER bytes of garbage.
        let mut stub = buf;
        stub.extend_from_slice(&[1, 2, 3]);
        let s = scan(&stub);
        assert_eq!(s.clean_len, clean);
        assert!(s.torn(stub.len() as u64));
    }
}
