//! Durable log-structured backend for the temporal-importance engine —
//! where storage reclamation *is* segment compaction.
//!
//! The in-memory engine (`temporal-importance`) decides what lives and
//! what dies; this crate makes those decisions survive process death.
//! A [`DurableUnit`] wraps a
//! [`StorageUnit`](temporal_importance::StorageUnit) with a
//! [`SegmentLog`](segment): an append-only directory of fixed-size
//! segment files holding CRC-framed JSON records, one per engine
//! mutation. Replaying the log reconstructs the engine byte-for-byte —
//! residents, lifetime statistics, clock high-water marks — which is
//! what makes crash recovery a *replay*, not a heuristic.
//!
//! Reclamation of disk space follows the paper's reclamation of
//! logical space: the compactor picks victim segments by the engine's
//! eviction order — the sealed segment whose least important live
//! object ranks first in the temporal-importance eviction queue — and
//! rewrites the few survivors forward, reclaiming everything dead or
//! superseded. Importance annotations thus drive both layers: the
//! engine preempts unimportant *objects*, the log compacts segments
//! whose remaining content the engine values least.
//!
//! The protocol surface is unchanged: [`DurableUnit`] implements the
//! same [`StoreApi`](temporal_importance::protocol::StoreApi) as the
//! in-memory unit and the sharded server, so every layer above it —
//! including `tempimpd` via its `durable(dir)` builder option — is
//! oblivious to the journal underneath. [`RetentionPolicy`] closes the
//! operator loop, compiling `[retention]` days-per-class TOML into
//! fixed-lifetime importance curves.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod frame;
mod record;
mod retention;
mod segment;
mod unit;

pub use error::DurableError;
pub use retention::{RetentionError, RetentionPolicy, RetentionRule};
pub use segment::{CompactionReport, DiskInfo};
pub use unit::{DurableConfig, DurableUnit};

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use sim_core::{ByteSize, SimDuration, SimTime};
    use temporal_importance::protocol::StoreApi;
    use temporal_importance::{
        EvictionPolicy, ImportanceCurve, ObjectClass, ObjectId, ObjectSpec, StorageUnit,
    };

    use crate::{DurableConfig, DurableUnit};

    /// A fresh scratch directory under the workspace `target/` (tests
    /// must not touch anything outside the repository).
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/durable-test-scratch"
        ))
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear stale scratch");
        }
        dir
    }

    fn spec(id: u64, kib: u64, lifetime_minutes: u64) -> ObjectSpec {
        ObjectSpec::new(
            ObjectId::new(id),
            ByteSize::from_kib(kib),
            ImportanceCurve::fixed_lifetime(SimDuration::from_minutes(lifetime_minutes)),
        )
        .with_class(ObjectClass::new((id % 5) as u16))
    }

    /// Serialized engine state is the equality oracle: it covers the
    /// resident arena (sorted by id), occupancy, policy, and lifetime
    /// statistics in one comparison.
    fn fingerprint(unit: &StorageUnit) -> String {
        serde_json::to_string(unit).expect("engine state serializes")
    }

    fn tiny_config() -> DurableConfig {
        // Small segments so a short workload spans many files.
        DurableConfig::default()
            .segment_bytes(2048)
            .auto_compact(false)
    }

    /// Drives the same mixed workload against a durable unit and a bare
    /// in-memory unit, checking the durable wrapper is transparent,
    /// then reopens the log and checks recovery lands on the same
    /// state.
    #[test]
    fn durable_unit_matches_memory_and_survives_reopen() {
        let dir = scratch("differential");
        let capacity = ByteSize::from_kib(64);
        let mut durable =
            DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, tiny_config())
                .expect("open fresh");
        let mut memory = StorageUnit::builder(capacity).recording(false).build();

        for step in 0..600u64 {
            let now = SimTime::from_minutes(step * 3);
            match step % 7 {
                // Mostly stores, with lifetimes short enough to churn.
                0 | 1 | 2 | 4 => {
                    let spec = spec(step % 40, 1 + step % 7, 30 + (step % 11) * 15);
                    let a = durable.store(spec.clone(), now);
                    let b = memory.store(spec, now);
                    assert_eq!(a.is_ok(), b.is_ok(), "store divergence at step {step}");
                    if let (Ok(a), Ok(b)) = (a, b) {
                        assert_eq!(a, b, "outcome divergence at step {step}");
                    }
                }
                3 => {
                    let a = durable.sweep_expired(now).expect("sweep journals");
                    let b = memory.sweep_expired(now);
                    assert_eq!(a, b, "sweep divergence at step {step}");
                }
                5 => {
                    let id = ObjectId::new(step % 40);
                    let a = durable.remove(id, now).expect("remove journals");
                    let b = memory.remove(id, now);
                    assert_eq!(a, b, "remove divergence at step {step}");
                }
                _ => {
                    let id = ObjectId::new(step % 40);
                    let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_minutes(240));
                    let a = durable.rejuvenate(id, curve.clone(), now);
                    let b = memory.rejuvenate(id, curve, now);
                    assert_eq!(a.is_ok(), b.is_ok(), "rejuvenate divergence at step {step}");
                }
            }
        }

        assert!(
            durable.disk_info().segments > 3,
            "workload should span several segments, got {:?}",
            durable.disk_info()
        );
        let clock = durable.clock();
        let last_sweep = durable.last_sweep();
        let closed = durable.close().expect("clean close");
        assert_eq!(fingerprint(&closed), fingerprint(&memory));

        let reopened = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, tiny_config())
            .expect("reopen");
        assert_eq!(fingerprint(reopened.unit()), fingerprint(&memory));
        assert_eq!(reopened.clock(), clock);
        assert_eq!(reopened.last_sweep(), last_sweep);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Compaction folds segments away without changing recovered state,
    /// and reports reclaimed bytes.
    #[test]
    fn compaction_reclaims_disk_and_preserves_state() {
        let dir = scratch("compaction");
        let capacity = ByteSize::from_kib(64);
        let mut durable =
            DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, tiny_config())
                .expect("open fresh");
        for step in 0..400u64 {
            let now = SimTime::from_minutes(step * 5);
            // Re-storing a small id range makes most records dead.
            let _ = durable.store(spec(step % 12, 2, 45), now);
            if step % 9 == 8 {
                durable.sweep_expired(now).expect("sweep journals");
            }
        }
        let now = SimTime::from_minutes(400 * 5);
        let before = durable.disk_info();
        assert!(before.segments > 3, "expected several segments: {before:?}");

        let mut reclaimed = 0u64;
        while let Some(report) = durable.compact(now).expect("compaction") {
            reclaimed += report.reclaimed_bytes;
        }
        let after = durable.disk_info();
        assert!(reclaimed > 0, "compaction reclaimed nothing");
        assert_eq!(after.reclaimed_bytes, before.reclaimed_bytes + reclaimed);
        assert!(
            after.file_bytes < before.file_bytes,
            "disk should shrink: {before:?} -> {after:?}"
        );
        assert!(after.compactions > before.compactions);
        assert!(durable.write_amplification() >= 1.0);

        let expected = fingerprint(&durable.close().expect("clean close"));
        let reopened = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, tiny_config())
            .expect("reopen after compaction");
        assert_eq!(fingerprint(reopened.unit()), expected);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// A torn final record (simulated crash mid-append) is truncated
    /// away; the recovered state is the clean prefix's state.
    #[test]
    fn torn_tail_recovers_to_the_last_complete_record() {
        let dir = scratch("torn-tail");
        let capacity = ByteSize::from_kib(64);
        let config = DurableConfig::default(); // one big segment
        let mut durable = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config)
            .expect("open fresh");
        for step in 0..20u64 {
            let now = SimTime::from_minutes(step * 10);
            durable.store(spec(step, 2, 600), now).expect("fits");
        }
        let expected = fingerprint(&durable.close().expect("clean close"));

        // Append garbage — the flushed prefix of a record the crashed
        // writer never finished.
        let seg = std::fs::read_dir(&dir)
            .expect("log dir")
            .map(|e| e.expect("entry").path())
            .find(|p| p.extension().is_some_and(|x| x == "log"))
            .expect("one segment");
        let mut bytes = std::fs::read(&seg).expect("segment bytes");
        let torn = bytes.len();
        bytes.extend_from_slice(&42u32.to_le_bytes());
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02]);
        std::fs::write(&seg, &bytes).expect("inject torn tail");

        let reopened = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config)
            .expect("reopen truncates the tear");
        assert_eq!(fingerprint(reopened.unit()), expected);
        assert_eq!(
            std::fs::metadata(&seg).expect("segment meta").len(),
            torn as u64,
            "the torn tail should be truncated off the file"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Dropping a segment that holds an id's *death* must not let a
    /// stale full-state record in an older segment resurrect it: the
    /// compactor re-asserts such kills with tombstones.
    #[test]
    fn compaction_never_resurrects_the_dead() {
        let dir = scratch("resurrection");
        let capacity = ByteSize::from_kib(256);
        // Segments small enough that store / annotate / remove land in
        // different files.
        let config = DurableConfig::default()
            .segment_bytes(512)
            .auto_compact(false);
        let mut durable = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config)
            .expect("open fresh");

        let victim_id = ObjectId::new(9999);
        let long = ImportanceCurve::fixed_lifetime(SimDuration::from_days(365));
        durable
            .store(
                ObjectSpec::new(victim_id, ByteSize::from_kib(1), long.clone()),
                SimTime::from_minutes(1),
            )
            .expect("store the future corpse");
        for filler in 0..4u64 {
            durable
                .store(spec(filler, 1, 60 * 24), SimTime::from_minutes(2 + filler))
                .expect("filler store");
        }
        // Annotate in a later segment — the Store record goes stale.
        durable
            .rejuvenate(victim_id, long, SimTime::from_minutes(10))
            .expect("rejuvenate");
        for filler in 4..8u64 {
            durable
                .store(spec(filler, 1, 60 * 24), SimTime::from_minutes(11 + filler))
                .expect("filler store");
        }
        // Kill it in a yet later segment.
        let removed = durable
            .remove(victim_id, SimTime::from_minutes(30))
            .expect("remove journals");
        assert!(removed.is_some(), "the object was resident");

        // Compact everything compactable, reopening after each round:
        // whichever order segments fold, the id must stay dead.
        let now = SimTime::from_minutes(60);
        loop {
            let report = durable.compact(now).expect("compaction");
            let expected = fingerprint(durable.unit());
            let reopened = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config)
                .expect("reopen mid-compaction-sequence");
            assert_eq!(fingerprint(reopened.unit()), expected);
            assert!(
                reopened.unit().get(victim_id).is_none(),
                "removed object resurrected after compacting segment {report:?}"
            );
            durable = reopened;
            if report.is_none() {
                break;
            }
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// The `StoreApi` protocol surface answers identically to a bare
    /// in-memory unit over a mixed request sequence.
    #[test]
    fn store_api_delegation_matches_memory() {
        use temporal_importance::protocol::Request;

        let dir = scratch("protocol");
        let capacity = ByteSize::from_kib(32);
        let mut durable =
            DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, tiny_config())
                .expect("open fresh");
        let mut memory = StorageUnit::builder(capacity).recording(false).build();

        for step in 0..200u64 {
            let now = SimTime::from_minutes(step * 2);
            let id = ObjectId::new(step % 25);
            let request = match step % 5 {
                0 | 1 => Request::Put {
                    id,
                    bytes: ByteSize::from_kib(1 + step % 4),
                    curve: ImportanceCurve::fixed_lifetime(SimDuration::from_minutes(90)),
                    class: ObjectClass::GENERIC,
                },
                2 => Request::Get { id },
                3 => Request::Density,
                _ => Request::Stats,
            };
            let a = durable.call(now, request.clone());
            let b = memory.call(now, request);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "protocol divergence at step {step}"
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
