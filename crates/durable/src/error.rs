//! Failures of the durable layer.

use std::error::Error as StdError;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use temporal_importance::{Error, RestoreError};

/// A durable-layer failure: filesystem trouble, segment damage, or an
/// inconsistent recovered state.
#[derive(Debug)]
#[non_exhaustive]
pub enum DurableError {
    /// An I/O operation on a log file or directory failed.
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A segment holds bytes that cannot be what the writer wrote: a
    /// torn sealed segment, a checksummed record that fails to parse,
    /// or a live id with no surviving full-state record.
    Corrupt {
        /// The damaged segment file.
        segment: PathBuf,
        /// What recovery found.
        detail: String,
    },
    /// Replayed state violates an engine invariant (duplicate resident
    /// id or recovered residents exceeding capacity) — the log and the
    /// engine configuration disagree.
    Restore(RestoreError),
}

impl DurableError {
    pub(crate) fn io(path: &Path, source: io::Error) -> DurableError {
        DurableError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { path, source } => {
                write!(f, "durable log I/O failed at {}: {source}", path.display())
            }
            DurableError::Corrupt { segment, detail } => {
                write!(f, "segment {} is corrupt: {detail}", segment.display())
            }
            DurableError::Restore(e) => write!(f, "recovered state rejected: {e}"),
        }
    }
}

impl StdError for DurableError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            DurableError::Io { source, .. } => Some(source),
            DurableError::Corrupt { .. } => None,
            DurableError::Restore(e) => Some(e),
        }
    }
}

impl From<RestoreError> for DurableError {
    fn from(e: RestoreError) -> Self {
        DurableError::Restore(e)
    }
}

impl From<DurableError> for Error {
    fn from(e: DurableError) -> Self {
        Error::external(e)
    }
}
