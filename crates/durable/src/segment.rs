//! The append-only segment store.
//!
//! A [`SegmentLog`] is a directory of fixed-size-ish segment files named
//! `seg-{seq:08}.log`, each a run of CRC-framed JSON records (see
//! [`frame`](crate::frame) and [`record`](crate::record)). Exactly one
//! segment — the highest sequence number — is *active* and accepts
//! appends; the rest are *sealed* and immutable. Reclamation of disk
//! space is **compaction**: a sealed victim's live objects are rewritten
//! into the active segment as `Survivor` records, its kills are
//! re-asserted as `Dead` tombstones where stale state elsewhere could
//! resurrect them, a `Compacted` commit record folds its statistics and
//! clock high-water marks into the log, and the file is deleted.
//!
//! # In-memory bookkeeping
//!
//! * `index`: id → location of that id's newest full-state record. The
//!   key set is exactly the live-resident set; replay is latest-wins.
//! * `state_copies`: id → number of full-state records on disk. This is
//!   what makes tombstoning exact: dropping a killing record needs a
//!   tombstone **iff** the killed id is dead and some (possibly stale)
//!   full-state record of it still survives in another segment —
//!   otherwise replay's last word on the id would be a resurrection.
//! * per-segment metadata: file bytes, live bytes (for victim ranking),
//!   the statistics contribution of its records, and clock high-water
//!   marks (folded forward by `Compacted` when the segment dies).

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use sim_core::fx::FxHashMap;
use sim_core::{Obs, SimTime};
use temporal_importance::{Importance, ObjectId, StoredObject, UnitStats};

use crate::frame;
use crate::record::LogRecord;
use crate::DurableError;

/// Location of a record: owning segment and framed length. Offsets are
/// not needed — replay order within a segment is file order, and a
/// record is rewritten (never patched) when its object changes.
#[derive(Debug, Clone, Copy)]
struct Loc {
    seq: u64,
    len: u64,
}

/// Per-segment bookkeeping.
#[derive(Debug, Default, Clone)]
struct SegmentMeta {
    /// Framed bytes written to the file.
    bytes: u64,
    /// Framed bytes of records that are still some live id's newest
    /// full-state record.
    live_bytes: u64,
    /// Statistics contribution of this segment's records (including
    /// contributions folded forward from segments it saw compacted).
    stats: UnitStats,
    /// Engine-clock high-water mark across this segment's records.
    max_at: SimTime,
    /// Sweep-clock high-water mark across this segment's records.
    max_sweep: SimTime,
}

/// Everything recovery reconstructs from the segment files.
#[derive(Debug)]
pub(crate) struct Recovered {
    /// The live residents, newest state, unordered.
    pub objects: Vec<StoredObject>,
    /// Lifetime statistics, identical to what the in-memory engine
    /// would report after the same request sequence.
    pub stats: UnitStats,
    /// Engine-clock high-water mark across the whole log.
    pub clock: SimTime,
    /// Sweep-clock high-water mark across the whole log.
    pub last_sweep: SimTime,
    /// Bytes of torn tail truncated from the final segment, if any.
    pub torn_bytes: u64,
}

/// Outcome of one compaction, for observability and tests.
#[derive(Debug, Clone, Copy)]
pub struct CompactionReport {
    /// Sequence number of the segment that was folded and deleted.
    pub victim: u64,
    /// File bytes reclaimed (the victim's size on disk).
    pub reclaimed_bytes: u64,
    /// Live objects rewritten into the active segment.
    pub survivors: usize,
    /// Framed bytes those survivors occupy at their new location.
    pub survivor_bytes: u64,
    /// Dead ids re-asserted by a tombstone record.
    pub tombstones: usize,
}

/// Disk-occupancy snapshot of a [`SegmentLog`]. The engine's notion of
/// occupancy (`used`, importance density) tracks *logical* object bytes;
/// this tracks the *physical* log, where superseded and dead records
/// linger until compaction folds them away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DiskInfo {
    /// Segment files on disk, including the active one.
    pub segments: usize,
    /// Total framed bytes across all segment files.
    pub file_bytes: u64,
    /// Framed bytes of current full-state records of live objects.
    pub live_bytes: u64,
    /// Framed bytes appended over this process's lifetime (stores,
    /// sweeps, annotations, survivor rewrites, tombstones, commit
    /// records). Resets on open, like the other lifetime counters here.
    pub appended_bytes: u64,
    /// The subset of `appended_bytes` written by compaction (survivor
    /// rewrites, tombstones, commit records) — the amplification.
    pub rewrite_bytes: u64,
    /// File bytes reclaimed by compaction over this process's lifetime.
    pub reclaimed_bytes: u64,
    /// Compactions committed over this process's lifetime.
    pub compactions: u64,
}

impl DiskInfo {
    /// Framed bytes occupied by superseded or dead records — what
    /// compaction can reclaim.
    pub fn dead_bytes(&self) -> u64 {
        self.file_bytes.saturating_sub(self.live_bytes)
    }

    /// Bytes written per byte of first-write record — the classic
    /// log-structured write-amplification figure, where everything
    /// above `1.0` is compaction rewriting survivors forward. `1.0`
    /// when nothing was appended.
    pub fn write_amplification(&self) -> f64 {
        let first_writes = self.appended_bytes.saturating_sub(self.rewrite_bytes);
        if first_writes == 0 {
            1.0
        } else {
            self.appended_bytes as f64 / first_writes as f64
        }
    }
}

fn add_stats(total: &mut UnitStats, delta: &UnitStats) {
    total.stores_attempted += delta.stores_attempted;
    total.stores_accepted += delta.stores_accepted;
    total.rejections_full += delta.rejections_full;
    total.rejections_too_large += delta.rejections_too_large;
    total.evictions_preempted += delta.evictions_preempted;
    total.evictions_expired += delta.evictions_expired;
    total.removals += delta.removals;
    total.bytes_accepted += delta.bytes_accepted;
    total.bytes_evicted += delta.bytes_evicted;
}

/// The append-only segment store. See the module docs for the design.
#[derive(Debug)]
pub(crate) struct SegmentLog {
    dir: PathBuf,
    segment_bytes: u64,
    obs: Obs,
    active_seq: u64,
    active: BufWriter<File>,
    segments: BTreeMap<u64, SegmentMeta>,
    index: FxHashMap<ObjectId, Loc>,
    state_copies: FxHashMap<ObjectId, u32>,
    appended_bytes: u64,
    rewrite_bytes: u64,
    reclaimed_bytes: u64,
    compactions: u64,
    /// Reused frame/serialize scratch buffer.
    buf: Vec<u8>,
}

impl SegmentLog {
    /// Opens (or creates) the log at `dir`, replaying every surviving
    /// segment into fresh bookkeeping and returning the recovered
    /// engine state alongside the log.
    ///
    /// Recovery is two passes. Pass one scans every `seg-*.log` file,
    /// truncates a torn tail on the **final** segment (an unacknowledged
    /// crash artifact), rejects tears anywhere else as corruption, and
    /// collects the set of segments some surviving `Compacted` record
    /// has folded — their files are stale leftovers of a crash between
    /// commit and delete, and are removed. Pass two replays the
    /// remaining records in sequence order through the same
    /// [`apply`](SegmentLog::apply) path live appends use, so recovered
    /// bookkeeping is in lockstep with a process that never crashed.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        obs: Obs,
    ) -> Result<(SegmentLog, Recovered), DurableError> {
        fs::create_dir_all(dir).map_err(|e| DurableError::io(dir, e))?;

        // Enumerate segment files by sequence number.
        let mut files: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| DurableError::io(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DurableError::io(dir, e))?;
            let path = entry.path();
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            files.push((seq, path));
        }
        files.sort_unstable_by_key(|(seq, _)| *seq);

        // Pass one: frame-scan every file, handle torn tails, parse
        // records, and collect the compacted (dropped) segment set.
        type ParsedSegment = (u64, PathBuf, Vec<(LogRecord, u64)>, bool);
        let last_seq = files.last().map(|(seq, _)| *seq);
        let mut parsed: Vec<ParsedSegment> = Vec::new();
        let mut dropped: Vec<u64> = Vec::new();
        let mut torn_bytes = 0u64;
        for (seq, path) in files {
            let bytes = fs::read(&path).map_err(|e| DurableError::io(&path, e))?;
            let scan = frame::scan(&bytes);
            let total = bytes.len() as u64;
            let torn = scan.torn(total);
            let mut records = Vec::with_capacity(scan.payloads.len());
            for (payload, len) in &scan.payloads {
                let record = parse_record(payload, &path)?;
                if let LogRecord::Compacted { seq: victim, .. } = record {
                    dropped.push(victim);
                }
                records.push((record, *len));
            }
            if torn && Some(seq) == last_seq {
                // Crash artifact: the writer died mid-append. The
                // record was never acknowledged; truncate it away.
                torn_bytes += total - scan.clean_len;
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| DurableError::io(&path, e))?;
                file.set_len(scan.clean_len)
                    .map_err(|e| DurableError::io(&path, e))?;
                file.sync_all().map_err(|e| DurableError::io(&path, e))?;
            }
            parsed.push((seq, path, records, torn));
        }
        // A tear in a sealed segment is real damage — unless some later
        // `Compacted` record folded that segment, in which case its file
        // is garbage awaiting deletion anyway. The check runs only now,
        // after every file is parsed, because the exonerating commit
        // record lives in a *later* segment than the torn one.
        for (seq, path, _, torn) in &parsed {
            if *torn && Some(*seq) != last_seq && !dropped.contains(seq) {
                return Err(DurableError::Corrupt {
                    segment: path.clone(),
                    detail: "sealed segment torn".to_owned(),
                });
            }
        }

        // Delete folded segments' stale files.
        for (seq, path, _, _) in &parsed {
            if dropped.contains(seq) {
                fs::remove_file(path).map_err(|e| DurableError::io(path, e))?;
            }
        }
        parsed.retain(|(seq, _, _, _)| !dropped.contains(seq));

        // The active segment is the highest survivor; `Compacted`
        // records always land in a segment newer than their victim, so
        // the highest sequence number is never dropped.
        let active_seq = parsed.last().map_or(0, |(seq, _, _, _)| *seq);
        let active_path = segment_path(dir, active_seq);
        let active = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&active_path)
                .map_err(|e| DurableError::io(&active_path, e))?,
        );

        let mut log = SegmentLog {
            dir: dir.to_path_buf(),
            segment_bytes,
            obs,
            active_seq,
            active,
            segments: BTreeMap::new(),
            index: FxHashMap::default(),
            state_copies: FxHashMap::default(),
            appended_bytes: 0,
            rewrite_bytes: 0,
            reclaimed_bytes: 0,
            compactions: 0,
            buf: Vec::new(),
        };
        log.segments.insert(active_seq, SegmentMeta::default());

        // Pass two: replay in sequence order through the shared apply
        // path, tracking each id's newest asserted state as we go.
        let mut states: FxHashMap<ObjectId, StoredObject> = FxHashMap::default();
        for (seq, _path, records, _) in parsed {
            log.segments.entry(seq).or_default();
            for (record, len) in records {
                if let Some(object) = record.asserted() {
                    states.insert(object.id(), object.clone());
                }
                log.apply(&record, Loc { seq, len });
            }
        }

        let mut objects = Vec::with_capacity(log.index.len());
        for id in log.index.keys() {
            let object = states.get(id).ok_or_else(|| DurableError::Corrupt {
                segment: active_path.clone(),
                detail: format!("live {id} has no surviving full-state record"),
            })?;
            objects.push(object.clone());
        }

        let mut stats = UnitStats::default();
        let mut clock = SimTime::ZERO;
        let mut last_sweep = SimTime::ZERO;
        for meta in log.segments.values() {
            add_stats(&mut stats, &meta.stats);
            clock = clock.max(meta.max_at);
            last_sweep = last_sweep.max(meta.max_sweep);
        }

        if torn_bytes > 0 {
            log.obs.counter("durable.torn_tail_bytes", torn_bytes);
        }
        log.obs.gauge("durable.segments", log.segments.len() as u64);

        Ok((
            log,
            Recovered {
                objects,
                stats,
                clock,
                last_sweep,
                torn_bytes,
            },
        ))
    }

    /// Serializes and appends one record to the active segment, rolling
    /// to a fresh segment first when the active one is at or past the
    /// size target. Data reaches the OS on [`flush`](SegmentLog::flush);
    /// callers batch appends per engine operation.
    pub fn append(&mut self, record: &LogRecord) -> Result<(), DurableError> {
        let at_target = self
            .segments
            .get(&self.active_seq)
            .is_some_and(|meta| meta.bytes >= self.segment_bytes);
        if at_target {
            self.roll()?;
        }
        self.buf.clear();
        let payload = serde_json::to_string(record).map_err(|e| DurableError::Corrupt {
            segment: self.active_path(),
            detail: format!("record failed to serialize: {e}"),
        })?;
        frame::encode(payload.as_bytes(), &mut self.buf);
        let len = self.buf.len() as u64;
        let path = self.active_path();
        self.active
            .write_all(&self.buf)
            .map_err(|e| DurableError::io(&path, e))?;
        self.appended_bytes += len;
        self.obs.counter("durable.appended_bytes", len);
        self.apply(
            record,
            Loc {
                seq: self.active_seq,
                len,
            },
        );
        Ok(())
    }

    /// Flushes buffered appends to the OS. Called after every engine
    /// mutation: a process crash then loses nothing, and even an OS
    /// crash loses only a suffix, which torn-tail recovery truncates to
    /// the newest consistent prefix.
    pub fn flush(&mut self) -> Result<(), DurableError> {
        let path = self.active_path();
        self.active.flush().map_err(|e| DurableError::io(&path, e))
    }

    /// Flushes and forces the active segment to stable storage. Called
    /// at the points prefix-consistency alone cannot cover: sealing a
    /// segment, committing a compaction (the victim's file is deleted
    /// right after, so the `Compacted` record must not be lost), and
    /// closing the log.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.flush()?;
        let path = self.active_path();
        self.active
            .get_ref()
            .sync_all()
            .map_err(|e| DurableError::io(&path, e))
    }

    /// Seals the active segment and opens the next one.
    fn roll(&mut self) -> Result<(), DurableError> {
        self.sync()?;
        let next = self.active_seq + 1;
        let path = segment_path(&self.dir, next);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| DurableError::io(&path, e))?;
        self.active = BufWriter::new(file);
        self.active_seq = next;
        self.segments.insert(next, SegmentMeta::default());
        self.obs.counter("durable.segment_rolls", 1);
        self.obs
            .gauge("durable.segments", self.segments.len() as u64);
        Ok(())
    }

    /// Folds one record into the bookkeeping. Shared verbatim between
    /// live appends and recovery replay, which is the property that
    /// keeps recovered state in lockstep with never-crashed state.
    fn apply(&mut self, record: &LogRecord, loc: Loc) {
        {
            let meta = self
                .segments
                .get_mut(&loc.seq)
                .expect("apply targets a tracked segment");
            meta.bytes += loc.len;
            add_stats(&mut meta.stats, &record.stats_delta());
            if let Some(at) = record.at() {
                meta.max_at = meta.max_at.max(at);
            }
            if let Some(sweep) = record.sweep_at() {
                meta.max_sweep = meta.max_sweep.max(sweep);
            }
        }
        match record {
            LogRecord::Store {
                object, evicted, ..
            } => {
                for victim in evicted {
                    self.kill(victim.id);
                }
                self.assert_state(object.id(), loc);
            }
            LogRecord::Annotate { object, .. } | LogRecord::Survivor { object } => {
                self.assert_state(object.id(), loc);
            }
            LogRecord::Remove { id, .. } => self.kill(*id),
            LogRecord::Sweep { expired, .. } => {
                for victim in expired {
                    self.kill(victim.id);
                }
            }
            LogRecord::Dead { ids } => {
                for id in ids {
                    self.kill(*id);
                }
            }
            LogRecord::Compacted { bytes, .. } => {
                self.reclaimed_bytes += bytes;
            }
            LogRecord::Reject { .. } => {}
        }
    }

    /// A new full-state record for `id` landed at `loc`: it supersedes
    /// any previous newest record and revives the id if it was dead.
    fn assert_state(&mut self, id: ObjectId, loc: Loc) {
        if let Some(old) = self.index.insert(id, loc) {
            if let Some(meta) = self.segments.get_mut(&old.seq) {
                meta.live_bytes = meta.live_bytes.saturating_sub(old.len);
            }
        }
        if let Some(meta) = self.segments.get_mut(&loc.seq) {
            meta.live_bytes += loc.len;
        }
        *self.state_copies.entry(id).or_insert(0) += 1;
    }

    /// `id` left the resident set: its newest full-state record becomes
    /// dead weight in whatever segment holds it.
    fn kill(&mut self, id: ObjectId) {
        if let Some(old) = self.index.remove(&id) {
            if let Some(meta) = self.segments.get_mut(&old.seq) {
                meta.live_bytes = meta.live_bytes.saturating_sub(old.len);
            }
        }
    }

    /// Picks the compaction victim by the temporal-importance engine's
    /// eviction order: among sealed segments carrying any dead bytes,
    /// the one holding the *least important live object* — the content
    /// the engine would reclaim next anyway, so rewriting it is cheap
    /// and likely final. Segments with no live objects at all rank
    /// first (pure reclamation, zero rewrite). Ties break toward more
    /// dead bytes, then lower sequence number (BTreeMap iteration order
    /// keeps the first-seen winner). `importance_of` maps a live id to
    /// its current importance.
    pub fn select_victim(
        &self,
        mut importance_of: impl FnMut(ObjectId) -> Importance,
    ) -> Option<u64> {
        // Each sealed segment's floor: the min current importance of
        // the live objects whose newest record it holds.
        let mut floor: FxHashMap<u64, Importance> = FxHashMap::default();
        for (&id, loc) in &self.index {
            if loc.seq == self.active_seq {
                continue;
            }
            let imp = importance_of(id);
            floor
                .entry(loc.seq)
                .and_modify(|min| {
                    if imp < *min {
                        *min = imp;
                    }
                })
                .or_insert(imp);
        }

        let mut best: Option<(u64, Option<Importance>, u64)> = None;
        for (&seq, meta) in &self.segments {
            if seq == self.active_seq {
                continue;
            }
            let dead = meta.bytes.saturating_sub(meta.live_bytes);
            // Compacting appends the survivors back (byte-neutral) plus
            // one `Compacted` commit record, so the net gain is the
            // dead bytes minus that overhead. A victim whose dead
            // weight is only its own bookkeeping would be rewritten
            // into an identical segment forever; require strict
            // progress instead, accepting a bounded sliver of
            // unreclaimable overhead per segment.
            if dead <= self.commit_overhead(seq, meta) {
                continue;
            }
            let imp = floor.get(&seq).copied();
            let better = match &best {
                None => true,
                Some((_, best_imp, best_dead)) => match (imp, best_imp) {
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                    (None, None) => dead > *best_dead,
                    (Some(a), Some(b)) => {
                        if a < *b {
                            true
                        } else if a > *b {
                            false
                        } else {
                            dead > *best_dead
                        }
                    }
                },
            };
            if better {
                best = Some((seq, imp, dead));
            }
        }
        best.map(|(seq, _, _)| seq)
    }

    /// Framed size of the `Compacted` record that compacting `seq`
    /// would append — the irreducible cost of folding the segment.
    fn commit_overhead(&self, seq: u64, meta: &SegmentMeta) -> u64 {
        let commit = LogRecord::Compacted {
            seq,
            bytes: meta.bytes,
            stats: meta.stats,
            at: meta.max_at,
            sweep: meta.max_sweep,
        };
        serde_json::to_string(&commit)
            .map(|payload| frame::framed_len(payload.len()))
            .unwrap_or(0)
    }

    /// Dead-byte fraction across sealed segments; `0.0` with no sealed
    /// bytes. The auto-compaction trigger compares against this.
    pub fn sealed_dead_ratio(&self) -> f64 {
        let mut total = 0u64;
        let mut dead = 0u64;
        for (&seq, meta) in &self.segments {
            if seq == self.active_seq {
                continue;
            }
            total += meta.bytes;
            dead += meta.bytes.saturating_sub(meta.live_bytes);
        }
        if total == 0 {
            0.0
        } else {
            dead as f64 / total as f64
        }
    }

    /// Compacts sealed segment `victim`: rewrites its live objects into
    /// the active segment, re-asserts kills that stale state elsewhere
    /// could undo, commits with a `Compacted` record, and deletes the
    /// file. `fetch` supplies the current full state of a live id (the
    /// engine's resident copy).
    ///
    /// Every crash window is safe: before the commit record survives,
    /// replay sees at worst duplicate survivor records (latest-wins) and
    /// the victim still on disk; after it, recovery deletes the stale
    /// file itself.
    pub fn compact(
        &mut self,
        victim: u64,
        mut fetch: impl FnMut(ObjectId) -> StoredObject,
    ) -> Result<CompactionReport, DurableError> {
        assert_ne!(victim, self.active_seq, "cannot compact the active segment");
        let meta = self
            .segments
            .get(&victim)
            .expect("compaction victim is a tracked segment")
            .clone();
        let path = segment_path(&self.dir, victim);

        // Re-read the victim to learn which records it holds. Sealed
        // segments must frame cleanly end to end.
        let bytes = fs::read(&path).map_err(|e| DurableError::io(&path, e))?;
        let scan = frame::scan(&bytes);
        if scan.torn(bytes.len() as u64) {
            return Err(DurableError::Corrupt {
                segment: path,
                detail: "sealed segment torn under compaction".to_owned(),
            });
        }
        let mut records = Vec::with_capacity(scan.payloads.len());
        for (payload, _) in &scan.payloads {
            records.push(parse_record(payload, &path)?);
        }

        // Live ids whose newest record lives in the victim — these get
        // rewritten. Sorted for deterministic log contents.
        let mut survivors: Vec<ObjectId> = self
            .index
            .iter()
            .filter(|(_, loc)| loc.seq == victim)
            .map(|(&id, _)| id)
            .collect();
        survivors.sort_unstable();

        // Dropping the victim's full-state records first lets the
        // tombstone test below see post-drop copy counts.
        for record in &records {
            if let Some(object) = record.asserted() {
                let id = object.id();
                if let Some(copies) = self.state_copies.get_mut(&id) {
                    if *copies <= 1 {
                        self.state_copies.remove(&id);
                    } else {
                        *copies -= 1;
                    }
                }
            }
        }

        // A kill dropped with the victim needs a tombstone iff the id
        // is dead now and a stale full-state record of it survives in
        // another segment — otherwise replay's last word on the id
        // would be that stale record, resurrecting it.
        let mut killed: Vec<ObjectId> = Vec::new();
        for record in &records {
            record.killed(&mut killed);
        }
        killed.sort_unstable();
        killed.dedup();
        killed.retain(|id| !self.index.contains_key(id) && self.state_copies.contains_key(id));

        // Rewrite survivors, then tombstones, then commit.
        let mut survivor_bytes = 0u64;
        let before = self.appended_bytes;
        for &id in &survivors {
            let object = fetch(id);
            debug_assert_eq!(object.id(), id);
            self.append(&LogRecord::Survivor { object })?;
        }
        survivor_bytes += self.appended_bytes - before;
        if !killed.is_empty() {
            self.append(&LogRecord::Dead {
                ids: killed.clone(),
            })?;
        }
        self.append(&LogRecord::Compacted {
            seq: victim,
            bytes: meta.bytes,
            stats: meta.stats,
            at: meta.max_at,
            sweep: meta.max_sweep,
        })?;
        self.sync()?;

        self.rewrite_bytes += self.appended_bytes - before;

        // The commit record is durable; the victim's file is now pure
        // garbage.
        fs::remove_file(&path).map_err(|e| DurableError::io(&path, e))?;
        self.segments.remove(&victim);
        self.compactions += 1;
        self.obs.counter("durable.compactions", 1);
        self.obs.counter("durable.reclaimed_bytes", meta.bytes);
        self.obs
            .gauge("durable.segments", self.segments.len() as u64);

        Ok(CompactionReport {
            victim,
            reclaimed_bytes: meta.bytes,
            survivors: survivors.len(),
            survivor_bytes,
            tombstones: killed.len(),
        })
    }

    /// Current disk occupancy.
    pub fn disk_info(&self) -> DiskInfo {
        let mut file_bytes = 0u64;
        let mut live_bytes = 0u64;
        for meta in self.segments.values() {
            file_bytes += meta.bytes;
            live_bytes += meta.live_bytes;
        }
        DiskInfo {
            segments: self.segments.len(),
            file_bytes,
            live_bytes,
            appended_bytes: self.appended_bytes,
            rewrite_bytes: self.rewrite_bytes,
            reclaimed_bytes: self.reclaimed_bytes,
            compactions: self.compactions,
        }
    }

    /// Number of segment files, including the active one.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn active_path(&self) -> PathBuf {
        segment_path(&self.dir, self.active_seq)
    }
}

/// `dir/seg-{seq:08}.log`.
fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.log"))
}

/// Decodes one checksummed payload; a parse failure at this point means
/// real damage (the CRC already vouched for the bytes).
fn parse_record(payload: &[u8], segment: &Path) -> Result<LogRecord, DurableError> {
    let text = std::str::from_utf8(payload).map_err(|e| DurableError::Corrupt {
        segment: segment.to_path_buf(),
        detail: format!("checksummed record is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| DurableError::Corrupt {
        segment: segment.to_path_buf(),
        detail: format!("checksummed record failed to parse: {e}"),
    })
}
