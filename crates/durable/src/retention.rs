//! Retention-policy compiler: operator-facing `[retention]` TOML into
//! [`ImportanceCurve`]s.
//!
//! Operators think in "keep build logs 30 days"; the engine thinks in
//! importance curves. This module maps the former onto the latter: each
//! `name = days` line under a `[retention]` section becomes an
//! [`ObjectClass`] paired with an
//! [`ImportanceCurve::fixed_lifetime`] curve of that many days — the
//! paper's simplest annotation, full importance until a hard expiry.
//!
//! The parser handles exactly the TOML subset such a file needs:
//! `[section]` headers, `key = value` lines with numeric values,
//! comments, and blank lines. Sections other than `[retention]` are
//! ignored, so the policy can live inside a larger deployment config.
//! The container vendors no TOML crate, and this keeps it that way.

use std::fmt;

use sim_core::SimDuration;
use temporal_importance::{ImportanceCurve, ObjectClass};

/// One compiled retention rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionRule {
    /// The rule's name, as written in the config.
    pub name: String,
    /// The class tag assigned to objects stored under this rule.
    pub class: ObjectClass,
    /// How long the rule keeps objects.
    pub lifetime: SimDuration,
}

/// A compiled `[retention]` policy: an ordered set of named rules, each
/// owning an [`ObjectClass`] and a fixed-lifetime curve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RetentionPolicy {
    rules: Vec<RetentionRule>,
}

/// A malformed `[retention]` section.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RetentionError {
    /// A line in the section was not `name = days`.
    Malformed {
        /// 1-based line number in the input.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A rule's day count was not a positive number.
    BadDays {
        /// The rule's name.
        name: String,
        /// The value as written.
        value: String,
    },
    /// Two rules share a name.
    Duplicate(String),
    /// More rules than [`ObjectClass`] tags (u16 space minus the
    /// reserved generic class).
    TooManyRules,
}

impl fmt::Display for RetentionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetentionError::Malformed { line, text } => {
                write!(f, "retention line {line} is not `name = days`: {text:?}")
            }
            RetentionError::BadDays { name, value } => {
                write!(
                    f,
                    "retention rule {name:?} needs a positive day count, got {value:?}"
                )
            }
            RetentionError::Duplicate(name) => {
                write!(f, "retention rule {name:?} is defined twice")
            }
            RetentionError::TooManyRules => write!(f, "too many retention rules"),
        }
    }
}

impl std::error::Error for RetentionError {}

impl RetentionPolicy {
    /// Compiles the `[retention]` section of `toml`. Absent section or
    /// empty input yields an empty policy. Rules are numbered in file
    /// order starting at class 1 — class 0 stays
    /// [`ObjectClass::GENERIC`], for objects no rule claims.
    ///
    /// # Errors
    ///
    /// [`RetentionError`] on a malformed line, non-positive or
    /// non-numeric day count, duplicate rule name, or class-tag
    /// exhaustion.
    pub fn parse(toml: &str) -> Result<RetentionPolicy, RetentionError> {
        let mut rules: Vec<RetentionRule> = Vec::new();
        let mut in_retention = false;
        for (number, raw) in toml.lines().enumerate() {
            let line = match raw.find('#') {
                Some(hash) => &raw[..hash],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_retention = line == "[retention]";
                continue;
            }
            if !in_retention {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                return Err(RetentionError::Malformed {
                    line: number + 1,
                    text: raw.to_owned(),
                });
            };
            let name = name.trim().trim_matches('"');
            let value = value.trim();
            if name.is_empty() {
                return Err(RetentionError::Malformed {
                    line: number + 1,
                    text: raw.to_owned(),
                });
            }
            let days: f64 = value.parse().map_err(|_| RetentionError::BadDays {
                name: name.to_owned(),
                value: value.to_owned(),
            })?;
            if !days.is_finite() || days <= 0.0 {
                return Err(RetentionError::BadDays {
                    name: name.to_owned(),
                    value: value.to_owned(),
                });
            }
            if rules.iter().any(|r| r.name == name) {
                return Err(RetentionError::Duplicate(name.to_owned()));
            }
            let class = u16::try_from(rules.len() + 1).map_err(|_| RetentionError::TooManyRules)?;
            // Fractional day counts are honored to the minute.
            let minutes = (days * 24.0 * 60.0).round().max(1.0) as u64;
            rules.push(RetentionRule {
                name: name.to_owned(),
                class: ObjectClass::new(class),
                lifetime: SimDuration::from_minutes(minutes),
            });
        }
        Ok(RetentionPolicy { rules })
    }

    /// The compiled rules, in file order.
    pub fn rules(&self) -> &[RetentionRule] {
        &self.rules
    }

    /// Looks up a rule by name.
    pub fn rule(&self, name: &str) -> Option<&RetentionRule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// The class tag for a named rule.
    pub fn class_for(&self, name: &str) -> Option<ObjectClass> {
        self.rule(name).map(|r| r.class)
    }

    /// The annotation curve for a named rule: full importance until the
    /// rule's lifetime elapses, then expired.
    pub fn curve_for(&self, name: &str) -> Option<ImportanceCurve> {
        self.rule(name)
            .map(|r| ImportanceCurve::fixed_lifetime(r.lifetime))
    }

    /// The annotation curve for a class tag assigned by this policy.
    pub fn curve_for_class(&self, class: ObjectClass) -> Option<ImportanceCurve> {
        self.rules
            .iter()
            .find(|r| r.class == class)
            .map(|r| ImportanceCurve::fixed_lifetime(r.lifetime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_days_per_class_into_fixed_lifetime_curves() {
        let policy = RetentionPolicy::parse(
            r#"
# deployment config
[serve]
shards = 4

[retention]
build_logs = 30
crash_dumps = 7.5   # fractional days are fine
"audit" = 365
"#,
        )
        .expect("well-formed policy");
        assert_eq!(policy.rules().len(), 3);

        let logs = policy.rule("build_logs").expect("rule exists");
        assert_eq!(logs.class, ObjectClass::new(1));
        assert_eq!(logs.lifetime, SimDuration::from_days(30));

        let dumps = policy.rule("crash_dumps").expect("rule exists");
        assert_eq!(
            dumps.lifetime,
            SimDuration::from_minutes(7 * 24 * 60 + 12 * 60)
        );

        let audit = policy.rule("audit").expect("quoted keys are unquoted");
        assert_eq!(audit.class, ObjectClass::new(3));

        let curve = policy.curve_for("build_logs").expect("curve exists");
        assert_eq!(
            curve,
            ImportanceCurve::fixed_lifetime(SimDuration::from_days(30))
        );
        assert_eq!(
            policy.curve_for_class(ObjectClass::new(3)),
            policy.curve_for("audit")
        );
        assert_eq!(policy.curve_for("unknown"), None);
        assert_eq!(policy.class_for("crash_dumps"), Some(ObjectClass::new(2)));
    }

    #[test]
    fn ignores_other_sections_and_missing_section() {
        let empty = RetentionPolicy::parse("[serve]\nshards = 4\n").expect("parses");
        assert!(empty.rules().is_empty());
        assert_eq!(RetentionPolicy::parse(""), Ok(RetentionPolicy::default()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            RetentionPolicy::parse("[retention]\njust-a-word\n"),
            Err(RetentionError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            RetentionPolicy::parse("[retention]\nlogs = soon\n"),
            Err(RetentionError::BadDays { .. })
        ));
        assert!(matches!(
            RetentionPolicy::parse("[retention]\nlogs = 0\n"),
            Err(RetentionError::BadDays { .. })
        ));
        assert!(matches!(
            RetentionPolicy::parse("[retention]\nlogs = -3\n"),
            Err(RetentionError::BadDays { .. })
        ));
        assert!(matches!(
            RetentionPolicy::parse("[retention]\nlogs = 1\nlogs = 2\n"),
            Err(RetentionError::Duplicate(_))
        ));
    }
}
