//! [`DurableUnit`]: a [`StorageUnit`] whose every mutation is journaled
//! to a [`SegmentLog`](crate::segment::SegmentLog).
//!
//! The in-memory engine stays the single source of truth for admission,
//! preemption, and expiry — the durable layer never second-guesses it.
//! Each mutation runs against the engine first, then its outcome (the
//! admitted object, the victims it preempted, the sweep's harvest, the
//! rejection) is appended to the log, so replaying the log reproduces
//! the engine's state and statistics *exactly*, not approximately.
//!
//! Reads are not journaled. The recovered clock is therefore the clock
//! of the last persisted mutation: a crash forgets that reads advanced
//! time, which is harmless — the next mutation re-advances it.

use std::path::{Path, PathBuf};

use sim_core::{ByteSize, Obs, SimTime};
use temporal_importance::protocol::{Request, Response, StoreApi};
use temporal_importance::{
    Error, EvictionPolicy, EvictionRecord, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit,
    StoreError, StoreOutcome, UnitStats,
};

use crate::record::{LogRecord, RejectKind, Victim};
use crate::segment::{CompactionReport, DiskInfo, SegmentLog};
use crate::DurableError;

/// Tuning for a [`DurableUnit`]'s log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurableConfig {
    segment_bytes: u64,
    compact_trigger: f64,
    auto_compact: bool,
}

impl Default for DurableConfig {
    /// 8 MiB segments, compaction once half the sealed bytes are dead,
    /// triggered automatically after mutations.
    fn default() -> Self {
        DurableConfig {
            segment_bytes: 8 * 1024 * 1024,
            compact_trigger: 0.5,
            auto_compact: true,
        }
    }
}

impl DurableConfig {
    /// Sets the segment-size target. The active segment seals once it
    /// reaches this many bytes (the record in flight may overshoot).
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// Sets the sealed dead-byte fraction at which auto-compaction
    /// kicks in (clamped to `[0, 1]`).
    pub fn compact_trigger(mut self, ratio: f64) -> Self {
        self.compact_trigger = ratio.clamp(0.0, 1.0);
        self
    }

    /// Enables or disables automatic compaction after mutations.
    /// Disabled, the log only compacts on explicit
    /// [`DurableUnit::compact`] calls — what a crash test wants.
    pub fn auto_compact(mut self, on: bool) -> Self {
        self.auto_compact = on;
        self
    }
}

/// A storage unit whose state survives process death.
///
/// See the [module docs](self) for the engine/log split and the
/// [crate docs](crate) for the log-structured design.
#[derive(Debug)]
pub struct DurableUnit {
    unit: StorageUnit,
    log: SegmentLog,
    config: DurableConfig,
    clock: SimTime,
    last_sweep: SimTime,
    dir: PathBuf,
    recovered_torn_bytes: u64,
}

impl DurableUnit {
    /// Opens (or creates) a durable unit rooted at `dir`, replaying any
    /// existing segments into a fresh engine.
    ///
    /// # Errors
    ///
    /// [`DurableError`] on filesystem trouble, segment corruption, or a
    /// recovered resident set the engine configuration cannot hold.
    pub fn open(
        dir: impl AsRef<Path>,
        capacity: ByteSize,
        policy: EvictionPolicy,
        config: DurableConfig,
    ) -> Result<DurableUnit, DurableError> {
        Self::with_observer(dir, capacity, policy, config, Obs::global())
    }

    /// [`open`](DurableUnit::open) with an explicit observability sink
    /// for both the engine and the log.
    pub fn with_observer(
        dir: impl AsRef<Path>,
        capacity: ByteSize,
        policy: EvictionPolicy,
        config: DurableConfig,
        obs: Obs,
    ) -> Result<DurableUnit, DurableError> {
        let dir = dir.as_ref();
        let (log, recovered) = SegmentLog::open(dir, config.segment_bytes, obs.clone())?;
        let unit = StorageUnit::builder(capacity)
            .policy(policy)
            .recording(false)
            .observer(obs)
            .restore(recovered.stats, recovered.objects)?;
        Ok(DurableUnit {
            unit,
            log,
            config,
            clock: recovered.clock,
            last_sweep: recovered.last_sweep,
            dir: dir.to_path_buf(),
            recovered_torn_bytes: recovered.torn_bytes,
        })
    }

    /// Stores an object: engine admission first, then the journal. The
    /// appended record carries the admitted object's full state and the
    /// victims it preempted; rejections are journaled too, because they
    /// count in [`UnitStats`].
    ///
    /// # Errors
    ///
    /// [`Error::Store`] when the engine refuses the object, or an
    /// external-wrapped [`DurableError`] when journaling fails.
    pub fn store(&mut self, spec: ObjectSpec, now: SimTime) -> Result<StoreOutcome, Error> {
        self.clock = self.clock.max(now);
        match self.unit.store(spec, now) {
            Ok(outcome) => {
                let object = self
                    .unit
                    .get(outcome.id)
                    .expect("accepted object is resident")
                    .clone();
                let evicted = outcome.evicted.iter().map(Victim::from).collect();
                self.log.append(&LogRecord::Store {
                    at: now,
                    object,
                    evicted,
                })?;
                self.log.flush()?;
                self.maybe_compact(now)?;
                Ok(outcome)
            }
            Err(e) => {
                let kind = match &e {
                    StoreError::Full { .. } => RejectKind::Full,
                    StoreError::TooLarge { .. } => RejectKind::TooLarge,
                    StoreError::DuplicateId(_) => RejectKind::Duplicate,
                    StoreError::EmptyObject(_) => RejectKind::Empty,
                    _ => RejectKind::Other,
                };
                self.log.append(&LogRecord::Reject { at: now, kind })?;
                self.log.flush()?;
                Err(Error::from(e))
            }
        }
    }

    /// Sweeps expired objects, journaling the harvest. An empty sweep
    /// still writes a record so the sweep cadence clock survives a
    /// crash.
    ///
    /// # Errors
    ///
    /// An external-wrapped [`DurableError`] when journaling fails.
    pub fn sweep_expired(&mut self, now: SimTime) -> Result<Vec<EvictionRecord>, DurableError> {
        self.clock = self.clock.max(now);
        let records = self.unit.sweep_expired(now);
        self.log.append(&LogRecord::Sweep {
            at: now,
            expired: records.iter().map(Victim::from).collect(),
        })?;
        self.last_sweep = self.last_sweep.max(now);
        self.log.flush()?;
        self.maybe_compact(now)?;
        Ok(records)
    }

    /// Removes an object explicitly; `Ok(None)` means it was not
    /// resident (and nothing was journaled).
    ///
    /// # Errors
    ///
    /// [`DurableError`] when journaling fails.
    pub fn remove(
        &mut self,
        id: ObjectId,
        now: SimTime,
    ) -> Result<Option<EvictionRecord>, DurableError> {
        self.clock = self.clock.max(now);
        let record = self.unit.remove(id, now);
        if let Some(rec) = &record {
            self.log.append(&LogRecord::Remove {
                at: now,
                id,
                size: rec.size,
            })?;
            self.log.flush()?;
            self.maybe_compact(now)?;
        }
        Ok(record)
    }

    /// Rejuvenates an object (importance may only rise), journaling its
    /// complete post-annotation state.
    ///
    /// # Errors
    ///
    /// [`Error::Rejuvenate`] from the engine, or an external-wrapped
    /// [`DurableError`] when journaling fails.
    pub fn rejuvenate(
        &mut self,
        id: ObjectId,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<(), Error> {
        self.clock = self.clock.max(now);
        self.unit.rejuvenate(id, curve, now)?;
        self.journal_annotation(id, now)
    }

    /// Reannotates an object (importance may also fall), journaling its
    /// complete post-annotation state.
    ///
    /// # Errors
    ///
    /// [`Error::Rejuvenate`] from the engine, or an external-wrapped
    /// [`DurableError`] when journaling fails.
    pub fn reannotate(
        &mut self,
        id: ObjectId,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<(), Error> {
        self.clock = self.clock.max(now);
        self.unit.reannotate(id, curve, now)?;
        self.journal_annotation(id, now)
    }

    fn journal_annotation(&mut self, id: ObjectId, now: SimTime) -> Result<(), Error> {
        let object = self
            .unit
            .get(id)
            .expect("annotated object is resident")
            .clone();
        self.log.append(&LogRecord::Annotate { at: now, object })?;
        self.log.flush()?;
        Ok(())
    }

    /// Compacts the segment the engine's eviction order points at (the
    /// sealed segment holding the least important live content), if any
    /// sealed segment carries dead bytes. Returns what was reclaimed.
    ///
    /// # Errors
    ///
    /// [`DurableError`] when rewriting or committing fails.
    pub fn compact(&mut self, now: SimTime) -> Result<Option<CompactionReport>, DurableError> {
        let unit = &self.unit;
        let Some(victim) = self.log.select_victim(|id| {
            unit.get(id)
                .expect("live id is resident")
                .current_importance(now)
        }) else {
            return Ok(None);
        };
        let unit = &self.unit;
        let report = self.log.compact(victim, |id| {
            unit.get(id).expect("live id is resident").clone()
        })?;
        Ok(Some(report))
    }

    /// Runs compactions until the sealed dead-byte ratio drops below
    /// the configured trigger (no-op when auto-compaction is off).
    fn maybe_compact(&mut self, now: SimTime) -> Result<(), DurableError> {
        if !self.config.auto_compact {
            return Ok(());
        }
        let mut rounds = self.log.segment_count();
        while rounds > 0 && self.log.sealed_dead_ratio() >= self.config.compact_trigger {
            if self.compact(now)?.is_none() {
                break;
            }
            rounds -= 1;
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// [`DurableError`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.log.sync()
    }

    /// Syncs the log and surrenders the in-memory engine.
    ///
    /// # Errors
    ///
    /// [`DurableError`] on I/O failure (the engine is lost in that
    /// case — the log on disk remains the recovery source).
    pub fn close(mut self) -> Result<StorageUnit, DurableError> {
        self.log.sync()?;
        Ok(self.unit)
    }

    /// The wrapped in-memory engine (read-only; mutations must go
    /// through the durable methods so they reach the journal).
    pub fn unit(&self) -> &StorageUnit {
        &self.unit
    }

    /// The engine's lifetime statistics.
    pub fn stats(&self) -> &UnitStats {
        self.unit.stats()
    }

    /// Current disk occupancy of the segment log.
    pub fn disk_info(&self) -> DiskInfo {
        self.log.disk_info()
    }

    /// Bytes appended per byte of first-write record (compaction
    /// rewrites are the amplification).
    pub fn write_amplification(&self) -> f64 {
        self.disk_info().write_amplification()
    }

    /// Engine-clock high-water mark across persisted mutations.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Sweep-clock high-water mark across persisted sweeps.
    pub fn last_sweep(&self) -> SimTime {
        self.last_sweep
    }

    /// The directory holding the segment files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes of torn tail this open truncated from the final segment —
    /// nonzero exactly when the previous process died mid-append.
    pub fn recovered_torn_bytes(&self) -> u64 {
        self.recovered_torn_bytes
    }

    /// Re-points the *engine's* observability sink (the log keeps the
    /// sink it was opened with).
    pub fn set_observer(&mut self, obs: Obs) {
        self.unit.set_observer(obs);
    }

    /// Advances the engine clock in memory (not journaled; see the
    /// module docs on reads and recovery).
    pub fn advance(&mut self, now: SimTime) {
        self.unit.advance(now);
    }
}

impl StoreApi for DurableUnit {
    /// Dispatches exactly like the wrapped [`StorageUnit`]: `Put` goes
    /// through [`store`](DurableUnit::store) (and thus the journal),
    /// every read verb delegates straight to the engine.
    fn call(&mut self, now: SimTime, request: Request) -> Response {
        match request {
            Request::Put {
                id,
                bytes,
                curve,
                class,
            } => {
                let spec = ObjectSpec::new(id, bytes, curve).with_class(class);
                Response::Put(self.store(spec, now))
            }
            read => self.unit.call(now, read),
        }
    }
}
