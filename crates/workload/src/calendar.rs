//! The academic calendar and Table 1's lifetime parameters.
//!
//! §5.2.1: "spring semester starts after the first week in January and
//! proceeds till May. After a month break, the summer term runs for two
//! months. After another break, the fall semester starts in the second week
//! of September and runs till the end of the year."
//!
//! Table 1 encodes this as day-of-year arithmetic — for an object captured
//! on day `d` of a term, `t_persist` runs to a fixed end-of-importance day
//! and `t_wane` is a per-term constant:
//!
//! | Term   | begins (doy) | `t_persist` (days) | `t_wane` (days) |
//! |--------|--------------|--------------------|-----------------|
//! | Spring | 8            | `120 − today`      | 730             |
//! | Summer | 150          | `210 − today`      | 365             |
//! | Fall   | 248          | `360 − today`      | 850             |
//!
//! Student-created streams carry 50% importance until the end of the
//! semester "with values gradually dropping in importance two weeks after
//! the end of the term".

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use temporal_importance::{Importance, ImportanceCurve};

/// A university term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// Spring semester (early January through April).
    Spring,
    /// Summer term (two months from late May).
    Summer,
    /// Fall semester (early September through year end).
    Fall,
}

impl Term {
    /// All terms in calendar order.
    pub const ALL: [Term; 3] = [Term::Spring, Term::Summer, Term::Fall];

    /// Day-of-year the term begins (Table 1's *TermBegin*).
    pub fn begin_day(self) -> u64 {
        match self {
            Term::Spring => 8,
            Term::Summer => 150,
            Term::Fall => 248,
        }
    }

    /// Day-of-year importance stops persisting (Table 1's `t_persist`
    /// reference point: `t_persist = end_day − today`). This is also the
    /// day lectures stop being captured for the term.
    pub fn end_day(self) -> u64 {
        match self {
            Term::Spring => 120,
            Term::Summer => 210,
            Term::Fall => 360,
        }
    }

    /// Table 1's `t_wane` for university-created objects.
    pub fn wane(self) -> SimDuration {
        match self {
            Term::Spring => SimDuration::from_days(730),
            Term::Summer => SimDuration::from_days(365),
            Term::Fall => SimDuration::from_days(850),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Term::Spring => "spring",
            Term::Summer => "summer",
            Term::Fall => "fall",
        }
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Who created a lecture object — determines plateau importance and wane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Creator {
    /// University-maintained cameras: 100% importance, Table 1 wane.
    University,
    /// Student interpretations: 50% importance, two-week wane after term.
    Student,
}

/// The academic calendar: Table 1 plus the student policy from §5.2.1.
///
/// # Examples
///
/// ```
/// use sim_core::SimTime;
/// use workload::calendar::{AcademicCalendar, Creator, Term};
///
/// let cal = AcademicCalendar::paper();
/// // Day 10 falls in spring term.
/// assert_eq!(cal.term_on(SimTime::from_days(10)), Some(Term::Spring));
/// // Day 130 is between terms.
/// assert_eq!(cal.term_on(SimTime::from_days(130)), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AcademicCalendar {
    _private: (),
}

impl AcademicCalendar {
    /// The paper's calendar (Table 1).
    pub fn paper() -> Self {
        AcademicCalendar { _private: () }
    }

    /// The term in session on the given simulated day, if any.
    /// Years repeat on a 365-day cycle.
    pub fn term_on(&self, at: SimTime) -> Option<Term> {
        let doy = at.day_of_year();
        Term::ALL
            .into_iter()
            .find(|t| (t.begin_day()..t.end_day()).contains(&doy))
    }

    /// Table 1's `t_persist` for an object captured at `at`: the time
    /// until the current term's end-of-importance day. `None` when no
    /// term is in session.
    pub fn persist_for(&self, at: SimTime) -> Option<SimDuration> {
        let term = self.term_on(at)?;
        let doy = at.day_of_year();
        Some(SimDuration::from_days(term.end_day() - doy))
    }

    /// The full two-step lifetime annotation for an object captured at
    /// `at` by the given creator, or `None` when no term is in session
    /// (no lectures are captured between terms).
    ///
    /// University objects: plateau 1.0 for `end_day − today`, then Table
    /// 1's per-term wane. Student objects: plateau 0.5 for the same
    /// persist period, then a two-week wane.
    pub fn lifetime_for(&self, at: SimTime, creator: Creator) -> Option<ImportanceCurve> {
        let term = self.term_on(at)?;
        let persist = self.persist_for(at)?;
        Some(match creator {
            Creator::University => {
                ImportanceCurve::two_step(Importance::FULL, persist, term.wane())
            }
            Creator::Student => ImportanceCurve::two_step(
                Importance::new_clamped(0.5),
                persist,
                SimDuration::from_days(14),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(d: u64) -> SimTime {
        SimTime::from_days(d)
    }

    #[test]
    fn table_1_parameters() {
        assert_eq!(Term::Spring.begin_day(), 8);
        assert_eq!(Term::Summer.begin_day(), 150);
        assert_eq!(Term::Fall.begin_day(), 248);
        assert_eq!(Term::Spring.wane(), SimDuration::from_days(730));
        assert_eq!(Term::Summer.wane(), SimDuration::from_days(365));
        assert_eq!(Term::Fall.wane(), SimDuration::from_days(850));
    }

    #[test]
    fn term_boundaries() {
        let cal = AcademicCalendar::paper();
        assert_eq!(cal.term_on(day(7)), None);
        assert_eq!(cal.term_on(day(8)), Some(Term::Spring));
        assert_eq!(cal.term_on(day(119)), Some(Term::Spring));
        assert_eq!(cal.term_on(day(120)), None);
        assert_eq!(cal.term_on(day(150)), Some(Term::Summer));
        assert_eq!(cal.term_on(day(209)), Some(Term::Summer));
        assert_eq!(cal.term_on(day(210)), None);
        assert_eq!(cal.term_on(day(248)), Some(Term::Fall));
        assert_eq!(cal.term_on(day(359)), Some(Term::Fall));
        assert_eq!(cal.term_on(day(360)), None);
    }

    #[test]
    fn calendar_repeats_every_year() {
        let cal = AcademicCalendar::paper();
        assert_eq!(cal.term_on(day(365 + 10)), Some(Term::Spring));
        assert_eq!(cal.term_on(day(3 * 365 + 250)), Some(Term::Fall));
    }

    #[test]
    fn persist_is_end_day_minus_today() {
        let cal = AcademicCalendar::paper();
        // Table 1: Spring t_persist = 120 − today.
        assert_eq!(cal.persist_for(day(8)), Some(SimDuration::from_days(112)));
        assert_eq!(cal.persist_for(day(100)), Some(SimDuration::from_days(20)));
        // Summer: 210 − today.
        assert_eq!(cal.persist_for(day(160)), Some(SimDuration::from_days(50)));
        // Fall: 360 − today.
        assert_eq!(cal.persist_for(day(300)), Some(SimDuration::from_days(60)));
        assert_eq!(cal.persist_for(day(130)), None);
    }

    #[test]
    fn university_lifetime_uses_term_wane() {
        let cal = AcademicCalendar::paper();
        let curve = cal.lifetime_for(day(50), Creator::University).unwrap();
        match curve {
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            } => {
                assert_eq!(importance, Importance::FULL);
                assert_eq!(persist, SimDuration::from_days(70));
                assert_eq!(wane, SimDuration::from_days(730));
            }
            other => panic!("expected TwoStep, got {other:?}"),
        }
    }

    #[test]
    fn student_lifetime_is_half_importance_two_week_wane() {
        let cal = AcademicCalendar::paper();
        let curve = cal.lifetime_for(day(50), Creator::Student).unwrap();
        match curve {
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            } => {
                assert_eq!(importance.value(), 0.5);
                assert_eq!(persist, SimDuration::from_days(70));
                assert_eq!(wane, SimDuration::from_days(14));
            }
            other => panic!("expected TwoStep, got {other:?}"),
        }
    }

    #[test]
    fn no_lifetime_between_terms() {
        let cal = AcademicCalendar::paper();
        assert_eq!(cal.lifetime_for(day(140), Creator::University), None);
        assert_eq!(cal.lifetime_for(day(220), Creator::Student), None);
    }

    #[test]
    fn spring_object_expiry_matches_paper_narrative() {
        // "All objects captured in spring are considered to be important
        // till the end of the semester. Their importance gradually wanes
        // over the next two years."
        let cal = AcademicCalendar::paper();
        let curve = cal.lifetime_for(day(30), Creator::University).unwrap();
        // Expiry = persist (120-30=90 d) + wane (730 d).
        assert_eq!(curve.expiry(), Some(SimDuration::from_days(90 + 730)));
        // Still at full importance at semester's end...
        assert_eq!(
            curve.importance_at(SimDuration::from_days(90)),
            Importance::FULL
        );
        // ...half-waned a year later.
        let one_year_in = curve.importance_at(SimDuration::from_days(90 + 365));
        assert!((one_year_in.value() - 0.5).abs() < 0.01);
    }
}
