//! §5.1's single-application-class arrival process.
//!
//! "Objects constantly arrive into the system at a rate that is randomly
//! distributed up to 0.5 GB an hour for the first three months. Over the
//! following three month intervals, this rate increases to 0.7 GB/hr,
//! 1.0 GB/hr and 1.3 GB/hr, respectively."
//!
//! Each *active* simulated hour the generator draws a volume uniformly in
//! `[0, cap]` for the quarter's cap and emits it as one object at a
//! uniformly random minute within the hour. For runs longer than the
//! schedule (the paper simulates five and ten years), the final cap holds.
//!
//! The paper does not specify the arrival duty cycle, but it does report
//! that "in a traditional storage system, this space [80 GB] will be fully
//! used up in about 40 to 50 days" (§5.1). Continuous 24 h arrivals at a
//! mean of 0.25 GB/hr would fill 80 GB in ~13 days, so arrivals must be
//! concentrated in part of the day ("these rates may depend on the time of
//! the day", §5.1). We default to an 8-hour active window, which lands the
//! fill at ~40 days; the window is configurable.

use rand::rngs::StdRng;
use rand::Rng;

use serde::{Deserialize, Serialize};
use sim_core::{rng, ByteSize, SimDuration, SimTime};

/// A timestamped raw volume arrival (no annotation yet — §5.1 attaches a
/// different curve per policy under test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeArrival {
    /// Arrival instant (minute granularity).
    pub at: SimTime,
    /// Object size.
    pub size: ByteSize,
}

/// A piecewise-constant hourly-volume cap schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    /// `(phase length, cap per hour)` segments; the last cap holds forever.
    segments: Vec<(SimDuration, ByteSize)>,
}

impl RateSchedule {
    /// Builds a schedule from `(phase length, hourly cap)` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    pub fn new(segments: Vec<(SimDuration, ByteSize)>) -> Self {
        assert!(!segments.is_empty(), "schedule needs at least one segment");
        RateSchedule { segments }
    }

    /// The paper's §5.1 schedule: quarterly caps of 0.5, 0.7, 1.0 and
    /// 1.3 GB/hr (91-day quarters), with 1.3 GB/hr holding afterwards.
    pub fn paper_single_class() -> Self {
        let quarter = SimDuration::from_days(91);
        RateSchedule::new(vec![
            (quarter, ByteSize::from_mib(512)),  // 0.5 GB/hr
            (quarter, ByteSize::from_mib(717)),  // 0.7 GB/hr
            (quarter, ByteSize::from_gib(1)),    // 1.0 GB/hr
            (quarter, ByteSize::from_mib(1331)), // 1.3 GB/hr
        ])
    }

    /// The hourly cap in force at `at`.
    pub fn cap_at(&self, at: SimTime) -> ByteSize {
        let mut elapsed = SimDuration::ZERO;
        for &(len, cap) in &self.segments {
            elapsed += len;
            if at.saturating_since(SimTime::ZERO) < elapsed {
                return cap;
            }
        }
        self.segments.last().expect("non-empty").1
    }
}

/// The §5.1 arrival generator: an infinite iterator of [`VolumeArrival`]s.
///
/// # Examples
///
/// ```
/// use workload::ramp::RampedArrivals;
/// use sim_core::SimTime;
///
/// let mut arrivals = RampedArrivals::paper(42);
/// let first = arrivals.next().expect("infinite stream");
/// assert!(first.at < SimTime::from_days(1));
/// ```
#[derive(Debug)]
pub struct RampedArrivals {
    schedule: RateSchedule,
    rng: StdRng,
    next_hour: SimTime,
    active_hours: (u64, u64),
}

impl RampedArrivals {
    /// Creates a generator over the given schedule with a derived seed and
    /// the default 8-hour daily active window.
    pub fn new(schedule: RateSchedule, seed: u64) -> Self {
        RampedArrivals {
            schedule,
            rng: rng::stream(seed, "ramp-arrivals"),
            next_hour: SimTime::ZERO,
            active_hours: (8, 16),
        }
    }

    /// Creates a generator with the paper's §5.1 schedule.
    pub fn paper(seed: u64) -> Self {
        RampedArrivals::new(RateSchedule::paper_single_class(), seed)
    }

    /// Sets the daily active window `[start, end)` in hours-of-day
    /// (builder style). `(0, 24)` means arrivals around the clock.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end <= 24`.
    #[must_use]
    pub fn with_active_hours(mut self, start: u64, end: u64) -> Self {
        assert!(start < end && end <= 24, "invalid active window");
        self.active_hours = (start, end);
        self
    }

    /// The schedule driving this generator.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// Expected volume generated per active hour at `at` (half the cap).
    pub fn expected_hourly_volume(&self, at: SimTime) -> ByteSize {
        ByteSize::from_bytes(self.schedule.cap_at(at).as_bytes() / 2)
    }

    /// Expected cumulative volume by `at` — the analytic counterpart of
    /// Figure 2's storage-requirement curve.
    pub fn expected_volume_by(&self, at: SimTime) -> ByteSize {
        let mut total = 0u64;
        let mut hour_start = SimTime::ZERO;
        while hour_start < at {
            let hour_of_day = hour_start.as_hours() % 24;
            if hour_of_day >= self.active_hours.0 && hour_of_day < self.active_hours.1 {
                total += self.schedule.cap_at(hour_start).as_bytes() / 2;
            }
            hour_start += SimDuration::HOUR;
        }
        ByteSize::from_bytes(total)
    }
}

impl Iterator for RampedArrivals {
    type Item = VolumeArrival;

    fn next(&mut self) -> Option<VolumeArrival> {
        loop {
            let hour = self.next_hour;
            self.next_hour += SimDuration::HOUR;
            let hour_of_day = hour.as_hours() % 24;
            if hour_of_day < self.active_hours.0 || hour_of_day >= self.active_hours.1 {
                continue;
            }
            let cap = self.schedule.cap_at(hour).as_bytes();
            let size = self.rng.gen_range(0..=cap);
            // Skip degenerate zero-volume hours rather than emit an
            // unstorable zero-sized object.
            if size == 0 {
                continue;
            }
            let minute = self.rng.gen_range(0..60);
            return Some(VolumeArrival {
                at: hour + SimDuration::from_minutes(minute),
                size: ByteSize::from_bytes(size),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_ramps_quarterly() {
        let s = RateSchedule::paper_single_class();
        assert_eq!(s.cap_at(SimTime::ZERO), ByteSize::from_mib(512));
        assert_eq!(s.cap_at(SimTime::from_days(90)), ByteSize::from_mib(512));
        assert_eq!(s.cap_at(SimTime::from_days(91)), ByteSize::from_mib(717));
        assert_eq!(s.cap_at(SimTime::from_days(200)), ByteSize::from_gib(1));
        assert_eq!(s.cap_at(SimTime::from_days(300)), ByteSize::from_mib(1331));
        // Holds beyond the schedule.
        assert_eq!(s.cap_at(SimTime::from_days(5000)), ByteSize::from_mib(1331));
    }

    #[test]
    fn arrivals_are_in_window_sized_under_cap_and_ordered() {
        let mut gen = RampedArrivals::paper(7);
        let mut prev = SimTime::ZERO;
        for arrival in (&mut gen).take(500) {
            assert!(arrival.at >= prev, "arrivals must be time-ordered");
            prev = arrival.at;
            assert!(!arrival.size.is_zero());
            let hour_of_day = arrival.at.as_hours() % 24;
            assert!((8..16).contains(&hour_of_day));
            let cap = RateSchedule::paper_single_class().cap_at(arrival.at);
            assert!(arrival.size <= cap);
        }
    }

    #[test]
    fn custom_window_covers_whole_day() {
        let gen = RampedArrivals::paper(7).with_active_hours(0, 24);
        let hours: Vec<u64> = gen.take(100).map(|a| a.at.as_hours() % 24).collect();
        assert!(hours.iter().any(|&h| !(8..16).contains(&h)));
    }

    #[test]
    #[should_panic(expected = "invalid active window")]
    fn bad_window_panics() {
        let _ = RampedArrivals::paper(1).with_active_hours(10, 8);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a: Vec<_> = RampedArrivals::paper(9).take(100).collect();
        let b: Vec<_> = RampedArrivals::paper(9).take(100).collect();
        let c: Vec<_> = RampedArrivals::paper(10).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn daily_volume_tracks_half_cap_over_window() {
        // First quarter: cap 512 MiB/hr over 8 active hours → ≈2 GiB/day.
        let total: u64 = RampedArrivals::paper(3)
            .take_while(|a| a.at < SimTime::from_days(30))
            .map(|a| a.size.as_bytes())
            .sum();
        let daily_gib = total as f64 / 30.0 / (1024.0 * 1024.0 * 1024.0);
        assert!(
            (1.6..2.4).contains(&daily_gib),
            "daily volume {daily_gib} GiB out of expected band"
        );
    }

    #[test]
    fn expected_volume_by_is_monotone_and_plausible() {
        let gen = RampedArrivals::paper(0);
        let q1 = gen.expected_volume_by(SimTime::from_days(91));
        let year = gen.expected_volume_by(SimTime::from_days(364));
        assert!(year > q1);
        // Year one: (0.5+0.7+1.0+1.3)/2 caps × 8 h × 91 d ≈ 1.24 TiB.
        let gib = year.as_gib_f64();
        assert!((1100.0..1500.0).contains(&gib), "year volume {gib} GiB");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_schedule_panics() {
        let _ = RateSchedule::new(vec![]);
    }

    #[test]
    fn traditional_storage_fills_in_40_to_50_days() {
        // §5.1: "In a traditional storage system, this space will be fully
        // used up in about 40 to 50 days" (80 GB disk).
        let mut cumulative = ByteSize::ZERO;
        let mut fill_day = None;
        for arrival in RampedArrivals::paper(1).take(24 * 120) {
            cumulative += arrival.size;
            if cumulative >= ByteSize::from_gib(80) {
                fill_day = Some(arrival.at.as_days());
                break;
            }
        }
        let day = fill_day.expect("80 GB must fill within the sample");
        assert!((35..55).contains(&day), "80 GiB filled on day {day}");
    }
}
