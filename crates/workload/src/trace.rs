//! Recording and replaying arrival traces.
//!
//! Every generator in this crate is synthetic, but a downstream user of
//! the library will eventually want to drive the reclamation engine with
//! their own trace. This module defines a minimal JSON-lines trace format
//! (one [`Arrival`] per line) with embedded annotations, plus validated
//! replay.

use std::io::{BufRead, Write};

use crate::Arrival;

/// An error while reading a trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Arrivals were not in non-decreasing time order.
    OutOfOrder {
        /// 1-based line number of the offending arrival.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error on line {line}: {message}")
            }
            TraceError::OutOfOrder { line } => {
                write!(f, "trace arrivals out of time order at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for temporal_importance::Error {
    fn from(e: TraceError) -> Self {
        temporal_importance::Error::external(e)
    }
}

/// Writes arrivals as JSON lines.
///
/// # Errors
///
/// Returns any underlying I/O or serialization failure.
///
/// # Examples
///
/// ```
/// use workload::trace;
/// use workload::lecture::{generate, LectureConfig};
///
/// let arrivals = generate(&LectureConfig::default(), 1);
/// let mut buffer = Vec::new();
/// trace::write(&mut buffer, &arrivals)?;
/// let replayed = trace::read(buffer.as_slice())?;
/// assert_eq!(arrivals, replayed);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write<W: Write>(mut writer: W, arrivals: &[Arrival]) -> Result<(), TraceError> {
    for arrival in arrivals {
        let line = serde_json::to_string(arrival).map_err(|e| TraceError::Parse {
            line: 0,
            message: e.to_string(),
        })?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSON-lines trace, validating time order. Blank lines and
/// `#`-prefixed comment lines are skipped.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] for malformed lines and
/// [`TraceError::OutOfOrder`] if arrival times ever decrease.
pub fn read<R: BufRead>(reader: R) -> Result<Vec<Arrival>, TraceError> {
    let mut arrivals: Vec<Arrival> = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let arrival: Arrival = serde_json::from_str(trimmed).map_err(|e| TraceError::Parse {
            line: index + 1,
            message: e.to_string(),
        })?;
        if let Some(prev) = arrivals.last() {
            if arrival.at < prev.at {
                return Err(TraceError::OutOfOrder { line: index + 1 });
            }
        }
        arrivals.push(arrival);
    }
    Ok(arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CLASS_UNIVERSITY;
    use sim_core::{ByteSize, SimDuration, SimTime};
    use temporal_importance::{Importance, ImportanceCurve};

    fn arrival(day: u64) -> Arrival {
        Arrival {
            at: SimTime::from_days(day),
            size: ByteSize::from_mib(100),
            class: CLASS_UNIVERSITY,
            curve: ImportanceCurve::two_step(
                Importance::FULL,
                SimDuration::from_days(10),
                SimDuration::from_days(10),
            ),
        }
    }

    #[test]
    fn round_trips_all_curve_shapes() {
        let arrivals = vec![
            Arrival {
                curve: ImportanceCurve::Persistent,
                ..arrival(0)
            },
            Arrival {
                curve: ImportanceCurve::Ephemeral,
                ..arrival(1)
            },
            arrival(2),
            Arrival {
                curve: ImportanceCurve::exp_decay(
                    Importance::FULL,
                    SimDuration::from_days(1),
                    SimDuration::from_days(10),
                    SimDuration::from_days(2),
                )
                .unwrap(),
                ..arrival(3)
            },
        ];
        let mut buffer = Vec::new();
        write(&mut buffer, &arrivals).unwrap();
        let replayed = read(buffer.as_slice()).unwrap();
        assert_eq!(arrivals, replayed);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let mut buffer = Vec::new();
        write(&mut buffer, &[arrival(1)]).unwrap();
        let text = format!(
            "# a comment\n\n{}\n",
            String::from_utf8(buffer).unwrap().trim()
        );
        let replayed = read(text.as_bytes()).unwrap();
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn rejects_garbage_lines_with_line_numbers() {
        let err = read("not json\n".as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_order_traces() {
        let mut buffer = Vec::new();
        write(&mut buffer, &[arrival(5), arrival(3)]).unwrap();
        let err = read(buffer.as_slice()).unwrap_err();
        match err {
            TraceError::OutOfOrder { line } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_importance_in_trace() {
        // Hand-crafted line with an out-of-range importance: the curve's
        // serde validation must refuse it.
        let line =
            r#"{"at":0,"size":100,"class":1,"curve":{"Fixed":{"importance":1.5,"expiry":10}}}"#;
        let err = read(line.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { .. }));
    }
}
