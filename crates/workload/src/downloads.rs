//! A generative stand-in for Figure 8's observed download trace.
//!
//! The paper plots the number of times lecture videos for a 38-student
//! undergraduate OS course were downloaded each day, noting exam-driven
//! surges and a brief slashdotting. The original is an observational trace
//! we cannot replay, so this module synthesizes the closest generative
//! equivalent: per-lecture interest that decays after release, surges
//! before exams, and a one-off slashdot spike (see DESIGN.md §6).

use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::rng;

/// Configuration of the download-popularity model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownloadModel {
    /// RNG seed.
    pub seed: u64,
    /// Students enrolled (paper: 38).
    pub students: u64,
    /// Days (within the plotted window) lectures were released on.
    pub release_days: Vec<u64>,
    /// Exam days; interest surges in the week before each.
    pub exam_days: Vec<u64>,
    /// Day of the slashdot event, if any.
    pub slashdot_day: Option<u64>,
    /// Mean immediate downloads per released lecture.
    pub base_interest: f64,
    /// Interest e-folding time in days.
    pub decay_days: f64,
}

impl Default for DownloadModel {
    fn default() -> Self {
        DownloadModel {
            seed: 0,
            students: 38,
            // MWF releases across a 16-week semester.
            release_days: (0..112).filter(|d| matches!(d % 7, 0 | 2 | 4)).collect(),
            // Two midterms and a final.
            exam_days: vec![35, 70, 110],
            slashdot_day: Some(55),
            base_interest: 6.0,
            decay_days: 4.0,
        }
    }
}

impl DownloadModel {
    /// The expected downloads on `day` (before Poisson noise).
    pub fn expected_downloads(&self, day: u64) -> f64 {
        let mut lambda = 0.0;
        for &release in &self.release_days {
            if day < release {
                continue;
            }
            let age = (day - release) as f64;
            lambda += self.base_interest * (-age / self.decay_days).exp();
        }
        // Exam surge: the week before an exam, students revisit old
        // lectures roughly in proportion to class size.
        for &exam in &self.exam_days {
            if day <= exam && exam - day < 7 {
                lambda += self.students as f64 * 0.6;
            }
        }
        // A brief slashdotting dwarfs organic traffic.
        if let Some(slash) = self.slashdot_day {
            if day >= slash && day - slash < 2 {
                lambda += self.students as f64 * 10.0;
            }
        }
        lambda
    }

    /// Generates the daily download counts for `days` days.
    pub fn generate(&self, days: u64) -> Vec<u64> {
        let mut rand = rng::stream(self.seed, "downloads");
        (0..days)
            .map(|day| {
                let lambda = self.expected_downloads(day);
                poisson(&mut rand, lambda)
            })
            .collect()
    }
}

/// Draws from a Poisson distribution (Knuth's method for small λ, normal
/// approximation above 30 to stay O(1)).
fn poisson<R: Rng>(rand: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let sample: f64 = lambda + lambda.sqrt() * standard_normal(rand);
        return sample.max(0.0).round() as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rand.gen();
    let mut count = 0;
    while product > limit {
        product *= rand.gen::<f64>();
        count += 1;
    }
    count
}

/// Box–Muller standard normal draw.
fn standard_normal<R: Rng>(rand: &mut R) -> f64 {
    let u1: f64 = rand.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rand.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_semester_shape() {
        let model = DownloadModel::default();
        let trace = model.generate(140);
        // Activity during the semester...
        let in_term: u64 = trace[..112].iter().sum();
        assert!(in_term > 0);
        // ...decays after it ends.
        let after: u64 = trace[125..].iter().sum();
        assert!(
            after < in_term / 10,
            "after-term {after} vs in-term {in_term}"
        );
    }

    #[test]
    fn exam_weeks_surge() {
        let model = DownloadModel {
            slashdot_day: None,
            seed: 3,
            ..DownloadModel::default()
        };
        // Expected (noise-free) rate: exam-week day beats an ordinary day.
        let exam_week = model.expected_downloads(68);
        let ordinary = model.expected_downloads(50);
        assert!(
            exam_week > ordinary * 1.5,
            "exam week {exam_week} vs ordinary {ordinary}"
        );
    }

    #[test]
    fn slashdot_day_is_the_global_peak() {
        let model = DownloadModel::default();
        let trace = model.generate(140);
        let peak_day = (0..trace.len()).max_by_key(|&d| trace[d]).unwrap() as u64;
        assert!(
            (55..57).contains(&peak_day),
            "peak on day {peak_day}, expected the slashdot event"
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let m = DownloadModel::default();
        assert_eq!(m.generate(100), m.generate(100));
        let other = DownloadModel {
            seed: 42,
            ..DownloadModel::default()
        };
        assert_ne!(m.generate(100), other.generate(100));
    }

    #[test]
    fn poisson_sampler_is_sane() {
        let mut rand = rng::seeded(1);
        assert_eq!(poisson(&mut rand, 0.0), 0);
        // Small-λ mean.
        let n = 4000;
        let mean_small: f64 =
            (0..n).map(|_| poisson(&mut rand, 3.0) as f64).sum::<f64>() / n as f64;
        assert!((2.7..3.3).contains(&mean_small), "mean {mean_small}");
        // Large-λ mean (normal approximation).
        let mean_large: f64 = (0..n)
            .map(|_| poisson(&mut rand, 100.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((97.0..103.0).contains(&mean_large), "mean {mean_large}");
    }
}
