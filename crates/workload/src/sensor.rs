//! The §6 sensor scenario: trigger-driven importance.
//!
//! "Storage in sensor scenarios might treat unprocessed data as important
//! but retain processed data to accommodate for communications failure in
//! propagating the results... These scenarios might require the ability
//! to dynamically change the importance values based on triggers such as
//! the receipt of an acknowledgment."
//!
//! This module defines the annotation policy of such a node: raw captures
//! enter at full importance; once processed, the raw object is demoted to
//! a *retention buffer* curve, and once the uplink acknowledges a summary,
//! the summary is demoted to cache-like importance. The event-driven
//! experiment lives in `experiments::sensor`.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration};
use temporal_importance::{Importance, ImportanceCurve, ObjectClass};

/// Class tag for unprocessed sensor captures.
pub const CLASS_RAW: ObjectClass = ObjectClass::new(3);

/// Class tag for processed summaries awaiting acknowledgment.
pub const CLASS_PROCESSED: ObjectClass = ObjectClass::new(4);

/// Configuration of a sensor node's storage behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// RNG seed.
    pub seed: u64,
    /// Independent sensors feeding this node.
    pub sensors: usize,
    /// Size of one raw capture (one per sensor per capture interval).
    pub raw_size: ByteSize,
    /// Interval between captures.
    pub capture_every: SimDuration,
    /// Processing latency range (uniform), raw → summary.
    pub process_delay: (SimDuration, SimDuration),
    /// Summary size (compression of the raw capture).
    pub summary_size: ByteSize,
    /// Uplink acknowledgment latency range (uniform).
    pub ack_delay: (SimDuration, SimDuration),
    /// Probability an acknowledgment is lost and must be retried.
    pub ack_loss: f64,
    /// Retry interval after a lost acknowledgment.
    pub ack_retry: SimDuration,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            seed: 0,
            sensors: 4,
            raw_size: ByteSize::from_mib(64),
            capture_every: SimDuration::from_hours(1),
            process_delay: (
                SimDuration::from_minutes(10),
                SimDuration::from_minutes(120),
            ),
            summary_size: ByteSize::from_mib(4),
            ack_delay: (SimDuration::from_minutes(1), SimDuration::from_minutes(30)),
            ack_loss: 0.05,
            ack_retry: SimDuration::from_hours(2),
        }
    }
}

impl SensorConfig {
    /// The annotation for a fresh raw capture: non-preemptible until
    /// processing should long since have happened, then a short wane as a
    /// safety margin. Losing unprocessed data is the failure §6 guards
    /// against, so the plateau is full importance.
    pub fn raw_curve(&self) -> ImportanceCurve {
        let worst_processing = self.process_delay.1;
        ImportanceCurve::two_step(
            Importance::FULL,
            worst_processing.mul(4),
            worst_processing.mul(8),
        )
    }

    /// The annotation a raw object is *demoted to* once its summary
    /// exists: a modest-importance retention buffer (re-processing is
    /// possible but cheap to lose).
    pub fn raw_retired_curve(&self) -> ImportanceCurve {
        ImportanceCurve::Fixed {
            importance: Importance::new_clamped(0.2),
            expiry: SimDuration::from_days(7),
        }
    }

    /// The annotation for a summary awaiting acknowledgment: high
    /// importance with a generous plateau covering communication failures.
    pub fn summary_curve(&self) -> ImportanceCurve {
        ImportanceCurve::two_step(
            Importance::new_clamped(0.9),
            SimDuration::from_days(30),
            SimDuration::from_days(30),
        )
    }

    /// The annotation a summary is demoted to after the uplink
    /// acknowledges it: retained opportunistically, freely replaceable
    /// under pressure.
    pub fn summary_acked_curve(&self) -> ImportanceCurve {
        ImportanceCurve::Fixed {
            importance: Importance::new_clamped(0.05),
            expiry: SimDuration::from_days(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_curve_is_non_preemptible_through_worst_case_processing() {
        let cfg = SensorConfig::default();
        let curve = cfg.raw_curve();
        let worst = cfg.process_delay.1;
        assert_eq!(curve.importance_at(worst), Importance::FULL);
        assert_eq!(curve.importance_at(worst.mul(2)), Importance::FULL);
    }

    #[test]
    fn demotion_curves_are_strictly_lower() {
        let cfg = SensorConfig::default();
        let at = SimDuration::ZERO;
        assert!(cfg.raw_retired_curve().importance_at(at) < cfg.raw_curve().importance_at(at));
        assert!(
            cfg.summary_acked_curve().importance_at(at) < cfg.summary_curve().importance_at(at)
        );
    }

    #[test]
    fn summary_outlives_expected_ack_by_a_wide_margin() {
        let cfg = SensorConfig::default();
        let curve = cfg.summary_curve();
        // Even several retry cycles in, the summary stays important.
        let several_retries = cfg.ack_retry.mul(10);
        assert!(curve.importance_at(several_retries) >= Importance::new_clamped(0.9));
    }

    #[test]
    fn class_tags_are_distinct_from_lecture_classes() {
        assert_ne!(CLASS_RAW, CLASS_PROCESSED);
        assert_ne!(CLASS_RAW, crate::CLASS_UNIVERSITY);
        assert_ne!(CLASS_PROCESSED, crate::CLASS_STUDENT);
    }
}
