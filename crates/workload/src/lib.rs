//! Workload generators for the temporal-importance reproduction.
//!
//! Every evaluation scenario in the paper is driven by a synthetic object
//! stream; this crate generates them deterministically from explicit seeds:
//!
//! * [`ramp`] — §5.1's single-application-class arrivals: hourly volumes
//!   uniformly distributed up to a cap that ramps 0.5 → 0.7 → 1.0 →
//!   1.3 GB/hr across quarters.
//! * [`calendar`] — the academic calendar and the Table 1 lifetime
//!   parameters (per-term `t_persist`/`t_wane` for university and student
//!   content).
//! * [`lecture`] — §5.2's single-instructor lecture capture stream
//!   (1 Mbps university streams plus up to three 320×240 student streams
//!   per lecture at 50% importance).
//! * [`university`] — §5.3's university-wide stream (2,321 courses,
//!   ≈300 TB/year).
//! * [`downloads`] — a generative stand-in for Figure 8's observed
//!   download trace (per-lecture interest decay, exam surges, one
//!   slashdot spike).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod calendar;
pub mod downloads;
pub mod lecture;
pub mod ramp;
pub mod sensor;
pub mod trace;
pub mod university;

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimTime};
use temporal_importance::{ImportanceCurve, ObjectClass, ObjectIdGen, ObjectSpec};

/// One annotated object arrival: when, how big, what class, and the
/// lifetime annotation its creator chose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// When the object reaches the store.
    pub at: SimTime,
    /// Object size.
    pub size: ByteSize,
    /// Creator class tag (e.g. university camera vs. student upload).
    pub class: ObjectClass,
    /// The creator's lifetime annotation.
    pub curve: ImportanceCurve,
}

impl Arrival {
    /// Materializes this arrival into an [`ObjectSpec`], drawing a fresh id.
    pub fn into_spec(self, ids: &mut ObjectIdGen) -> ObjectSpec {
        ObjectSpec::new(ids.next_id(), self.size, self.curve).with_class(self.class)
    }
}

/// Class tag for university-operated camera captures (importance 1.0).
pub const CLASS_UNIVERSITY: ObjectClass = ObjectClass::new(1);

/// Class tag for student-contributed interpretations (importance 0.5).
pub const CLASS_STUDENT: ObjectClass = ObjectClass::new(2);

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_importance::Importance;

    #[test]
    fn arrival_materializes_with_class_and_curve() {
        let mut ids = ObjectIdGen::new();
        let arrival = Arrival {
            at: SimTime::from_days(3),
            size: ByteSize::from_mib(500),
            class: CLASS_STUDENT,
            curve: ImportanceCurve::Fixed {
                importance: Importance::new(0.5).unwrap(),
                expiry: sim_core::SimDuration::from_days(90),
            },
        };
        let spec = arrival.clone().into_spec(&mut ids);
        assert_eq!(spec.size(), ByteSize::from_mib(500));
        assert_eq!(spec.class(), CLASS_STUDENT);
        assert_eq!(spec.curve(), &arrival.curve);
    }

    #[test]
    fn class_tags_are_distinct() {
        assert_ne!(CLASS_UNIVERSITY, CLASS_STUDENT);
        assert_ne!(CLASS_UNIVERSITY, ObjectClass::GENERIC);
    }
}
