//! §5.2's lecture-capture stream for a single instructor.
//!
//! University cameras capture every lecture as a 1 Mbps stream; up to
//! three students may add their own 320×240 interpretation at 50%
//! importance. Lifetimes come from the academic calendar (Table 1).

use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::{rng, ByteSize, SimDuration, SimTime};

use crate::calendar::{AcademicCalendar, Creator, Term};
use crate::{Arrival, CLASS_STUDENT, CLASS_UNIVERSITY};

/// Configuration for a single instructor's capture stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LectureConfig {
    /// RNG seed.
    pub seed: u64,
    /// Lectures per week (3 = MWF-style schedule).
    pub lectures_per_week: u64,
    /// Terms the instructor teaches.
    pub teaches: Vec<Term>,
    /// University camera bitrate in kbit/s (paper: 1 Mbps).
    pub university_kbps: u64,
    /// Student stream bitrate in kbit/s (320×240 MPEG4; ≈384 kbit/s).
    pub student_kbps: u64,
    /// Lecture length range in minutes, inclusive.
    pub lecture_minutes: (u64, u64),
    /// Maximum student interpretations per lecture ("up to three").
    pub max_student_streams: u64,
}

impl Default for LectureConfig {
    fn default() -> Self {
        LectureConfig {
            seed: 0,
            lectures_per_week: 3,
            teaches: vec![Term::Spring, Term::Summer, Term::Fall],
            university_kbps: 1000,
            student_kbps: 384,
            lecture_minutes: (50, 75),
            max_student_streams: 3,
        }
    }
}

impl LectureConfig {
    /// Size of a stream of `minutes` at `kbps` kilobits per second.
    pub fn stream_size(kbps: u64, minutes: u64) -> ByteSize {
        ByteSize::from_bytes(kbps * 1000 / 8 * minutes * 60)
    }
}

/// Generates the full annotated arrival stream for `years` simulated
/// years, time-ordered.
///
/// # Examples
///
/// ```
/// use workload::lecture::{generate, LectureConfig};
///
/// let arrivals = generate(&LectureConfig::default(), 1);
/// assert!(!arrivals.is_empty());
/// // Streams are time-ordered.
/// assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
pub fn generate(config: &LectureConfig, years: u64) -> Vec<Arrival> {
    let calendar = AcademicCalendar::paper();
    let mut rand = rng::stream(config.seed, "lecture-capture");
    let mut arrivals = Vec::new();

    for day in 0..(years * 365) {
        let at_day = SimTime::from_days(day);
        let Some(term) = calendar.term_on(at_day) else {
            continue;
        };
        if !config.teaches.contains(&term) {
            continue;
        }
        if !is_lecture_day(term, at_day.day_of_year(), config.lectures_per_week) {
            continue;
        }

        // University capture at a mid-morning slot.
        let start =
            at_day + SimDuration::from_hours(10) + SimDuration::from_minutes(rand.gen_range(0..30));
        let minutes = rand.gen_range(config.lecture_minutes.0..=config.lecture_minutes.1);
        let curve = calendar
            .lifetime_for(start, Creator::University)
            .expect("term is in session");
        arrivals.push(Arrival {
            at: start,
            size: LectureConfig::stream_size(config.university_kbps, minutes),
            class: CLASS_UNIVERSITY,
            curve,
        });

        // "The system allows up to three students to randomly add their
        // own video interpretation of the lecture."
        let students = rand.gen_range(0..=config.max_student_streams);
        for _ in 0..students {
            let upload = start + SimDuration::from_minutes(rand.gen_range(60..600));
            let Some(curve) = calendar.lifetime_for(upload, Creator::Student) else {
                // An evening upload can slip past the term boundary; the
                // student then has no in-term annotation and skips it.
                continue;
            };
            arrivals.push(Arrival {
                at: upload,
                size: LectureConfig::stream_size(config.student_kbps, minutes),
                class: CLASS_STUDENT,
                curve,
            });
        }
    }

    arrivals.sort_by_key(|a| a.at);
    arrivals
}

/// Whether `day_of_year` is a lecture day for a term with the given
/// weekly cadence (lectures fall on the first `per_week` alternating
/// weekdays of each term week).
fn is_lecture_day(term: Term, day_of_year: u64, per_week: u64) -> bool {
    let offset = day_of_year.saturating_sub(term.begin_day());
    let weekday = offset % 7;
    // Alternate days: 0, 2, 4, 6 (capped at 5/week on weekdays 0..=6).
    (0..per_week.min(4)).any(|k| weekday == 2 * k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_importance::ImportanceCurve;

    #[test]
    fn stream_size_matches_bitrate_math() {
        // 1 Mbps for 75 minutes = 1000 kbit/s × 4500 s / 8 = 562.5 MB.
        let size = LectureConfig::stream_size(1000, 75);
        assert_eq!(size.as_bytes(), 562_500_000);
    }

    #[test]
    fn one_course_consumes_about_25_gb_per_semester() {
        // §1: "The lectures consumed over 25 GB of storage in a single
        // semester" for one course.
        let cfg = LectureConfig {
            teaches: vec![Term::Spring],
            ..LectureConfig::default()
        };
        let arrivals = generate(&cfg, 1);
        let university: u64 = arrivals
            .iter()
            .filter(|a| a.class == CLASS_UNIVERSITY)
            .map(|a| a.size.as_bytes())
            .sum();
        let gb = university as f64 / 1e9;
        assert!((18.0..34.0).contains(&gb), "semester volume {gb} GB");
    }

    #[test]
    fn lectures_only_on_term_days() {
        let cal = AcademicCalendar::paper();
        for arrival in generate(&LectureConfig::default(), 2) {
            assert!(
                cal.term_on(arrival.at).is_some(),
                "arrival at {} outside any term",
                arrival.at
            );
        }
    }

    #[test]
    fn student_streams_are_half_importance_and_smaller() {
        let arrivals = generate(&LectureConfig::default(), 1);
        let students: Vec<_> = arrivals
            .iter()
            .filter(|a| a.class == CLASS_STUDENT)
            .collect();
        assert!(!students.is_empty(), "expected some student uploads");
        for s in &students {
            match &s.curve {
                ImportanceCurve::TwoStep {
                    importance, wane, ..
                } => {
                    assert_eq!(importance.value(), 0.5);
                    assert_eq!(*wane, SimDuration::from_days(14));
                }
                other => panic!("unexpected curve {other:?}"),
            }
            assert!(s.size < LectureConfig::stream_size(1000, 50));
        }
        // Between zero and three students per lecture on average.
        let university = arrivals
            .iter()
            .filter(|a| a.class == CLASS_UNIVERSITY)
            .count();
        assert!(students.len() <= 3 * university);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LectureConfig::default();
        assert_eq!(generate(&cfg, 1), generate(&cfg, 1));
        let other = LectureConfig {
            seed: 99,
            ..LectureConfig::default()
        };
        assert_ne!(generate(&cfg, 1), generate(&other, 1));
    }

    #[test]
    fn weekly_cadence_bounds_lecture_count() {
        let cfg = LectureConfig {
            teaches: vec![Term::Spring],
            ..LectureConfig::default()
        };
        let lectures = generate(&cfg, 1)
            .iter()
            .filter(|a| a.class == CLASS_UNIVERSITY)
            .count();
        // Spring is 112 days = 16 weeks at 3/week = 48 lectures.
        assert!((40..=52).contains(&lectures), "got {lectures} lectures");
    }
}
