//! §5.3's university-wide capture stream.
//!
//! The university offers 2,321 courses; capturing all of them consumes
//! roughly 58 TB per semester (≈250 TB/year including student streams),
//! far more than a 2,000-node deployment of 80 GB units (160 TB) can hold.
//! The generator is lazy — a year of full-scale capture is over a million
//! objects, so arrivals are produced day by day.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sim_core::{rng, SimDuration, SimTime};

use crate::calendar::{AcademicCalendar, Creator, Term};
use crate::lecture::LectureConfig;
use crate::{Arrival, CLASS_STUDENT, CLASS_UNIVERSITY};

/// Configuration for the university-wide stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniversityConfig {
    /// RNG seed.
    pub seed: u64,
    /// Courses running in spring and fall semesters each (paper: 2,321).
    pub courses_per_semester: usize,
    /// Courses running in the summer term (a small fraction).
    pub courses_summer: usize,
    /// University camera bitrate in kbit/s.
    pub university_kbps: u64,
    /// Student stream bitrate in kbit/s.
    pub student_kbps: u64,
    /// Lecture length range in minutes, inclusive.
    pub lecture_minutes: (u64, u64),
    /// Maximum student interpretations per lecture.
    pub max_student_streams: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            seed: 0,
            courses_per_semester: 2321,
            courses_summer: 232,
            university_kbps: 1000,
            student_kbps: 384,
            lecture_minutes: (50, 75),
            max_student_streams: 3,
        }
    }
}

impl UniversityConfig {
    /// Scales the course counts down by `factor` (for laptop-scale runs
    /// that keep the demand-to-capacity ratio of the full deployment).
    #[must_use]
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        self.courses_per_semester = (self.courses_per_semester / factor).max(1);
        self.courses_summer = (self.courses_summer / factor).max(1);
        self
    }
}

#[derive(Debug, Clone)]
struct Course {
    /// Weekday pattern offset: lectures on term-week days `{p, p+2, p+4}`.
    pattern: u64,
    /// Lecture hour of day (8..18).
    hour: u64,
    /// Minute within the hour.
    minute: u64,
}

/// Lazy iterator over a university-wide annotated arrival stream.
///
/// # Examples
///
/// ```
/// use workload::university::{UniversityCapture, UniversityConfig};
///
/// let cfg = UniversityConfig::default().scaled_down(100);
/// let arrivals: Vec<_> = UniversityCapture::new(cfg, 1).take(50).collect();
/// assert_eq!(arrivals.len(), 50);
/// assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[derive(Debug)]
pub struct UniversityCapture {
    config: UniversityConfig,
    calendar: AcademicCalendar,
    courses: Vec<Course>,
    rng: StdRng,
    day: u64,
    end_day: u64,
    buffer: VecDeque<Arrival>,
}

impl UniversityCapture {
    /// Creates a stream covering `years` simulated years.
    pub fn new(config: UniversityConfig, years: u64) -> Self {
        let mut course_rng = rng::stream(config.seed, "university-courses");
        let max_courses = config.courses_per_semester.max(config.courses_summer);
        let courses = (0..max_courses)
            .map(|_| Course {
                pattern: course_rng.gen_range(0..2),
                hour: course_rng.gen_range(8..18),
                minute: course_rng.gen_range(0..60),
            })
            .collect();
        UniversityCapture {
            rng: rng::stream(config.seed, "university-arrivals"),
            config,
            calendar: AcademicCalendar::paper(),
            courses,
            day: 0,
            end_day: years * 365,
            buffer: VecDeque::new(),
        }
    }

    /// The configuration driving this stream.
    pub fn config(&self) -> &UniversityConfig {
        &self.config
    }

    fn active_courses(&self, term: Term) -> usize {
        match term {
            Term::Spring | Term::Fall => self.config.courses_per_semester,
            Term::Summer => self.config.courses_summer,
        }
    }

    fn fill_day(&mut self) {
        let at_day = SimTime::from_days(self.day);
        let Some(term) = self.calendar.term_on(at_day) else {
            return;
        };
        let doy = at_day.day_of_year();
        let week_day = doy.saturating_sub(term.begin_day()) % 7;
        let mut day_arrivals: Vec<Arrival> = Vec::new();

        let active = self.active_courses(term);
        for course in self.courses.iter().take(active) {
            // Three lectures a week on alternating days, phase per course.
            let lecture_today = (0..3).any(|k| week_day == course.pattern + 2 * k);
            if !lecture_today {
                continue;
            }
            let start = at_day
                + SimDuration::from_hours(course.hour)
                + SimDuration::from_minutes(course.minute);
            let minutes = self
                .rng
                .gen_range(self.config.lecture_minutes.0..=self.config.lecture_minutes.1);
            let curve = self
                .calendar
                .lifetime_for(start, Creator::University)
                .expect("term in session");
            day_arrivals.push(Arrival {
                at: start,
                size: LectureConfig::stream_size(self.config.university_kbps, minutes),
                class: CLASS_UNIVERSITY,
                curve,
            });

            let students = self.rng.gen_range(0..=self.config.max_student_streams);
            for _ in 0..students {
                let upload = start + SimDuration::from_minutes(self.rng.gen_range(60..360));
                if let Some(curve) = self.calendar.lifetime_for(upload, Creator::Student) {
                    day_arrivals.push(Arrival {
                        at: upload,
                        size: LectureConfig::stream_size(self.config.student_kbps, minutes),
                        class: CLASS_STUDENT,
                        curve,
                    });
                }
            }
        }

        day_arrivals.sort_by_key(|a| a.at);
        self.buffer.extend(day_arrivals);
    }
}

impl Iterator for UniversityCapture {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        while self.buffer.is_empty() {
            if self.day >= self.end_day {
                return None;
            }
            self.fill_day();
            self.day += 1;
        }
        self.buffer.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_stream_is_ordered_and_in_term() {
        let cfg = UniversityConfig::default().scaled_down(200);
        let arrivals: Vec<_> = UniversityCapture::new(cfg, 1).collect();
        assert!(!arrivals.is_empty());
        assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        let cal = AcademicCalendar::paper();
        assert!(arrivals.iter().all(|a| cal.term_on(a.at).is_some()));
    }

    #[test]
    fn full_scale_demand_is_hundreds_of_terabytes_per_year() {
        // Estimate annual volume from a 1/100-scale run (same per-course
        // statistics): paper quotes ≈58 TB/semester university content and
        // ≈300 TB/yr total demand.
        let cfg = UniversityConfig::default().scaled_down(100);
        let scale = 2321.0 / cfg.courses_per_semester as f64;
        let total: u64 = UniversityCapture::new(cfg, 1)
            .map(|a| a.size.as_bytes())
            .sum();
        let full_tb = total as f64 * scale / 1e12;
        assert!(
            (150.0..400.0).contains(&full_tb),
            "extrapolated annual demand {full_tb} TB"
        );
    }

    #[test]
    fn summer_runs_fewer_courses() {
        let cfg = UniversityConfig::default().scaled_down(100);
        let arrivals: Vec<_> = UniversityCapture::new(cfg, 1).collect();
        let cal = AcademicCalendar::paper();
        let spring = arrivals
            .iter()
            .filter(|a| cal.term_on(a.at) == Some(Term::Spring))
            .count();
        let summer = arrivals
            .iter()
            .filter(|a| cal.term_on(a.at) == Some(Term::Summer))
            .count();
        assert!(spring > summer * 2, "spring {spring} vs summer {summer}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = UniversityConfig::default().scaled_down(300);
        let a: Vec<_> = UniversityCapture::new(cfg.clone(), 1).take(200).collect();
        let b: Vec<_> = UniversityCapture::new(cfg, 1).take(200).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_panics() {
        let _ = UniversityConfig::default().scaled_down(0);
    }
}
