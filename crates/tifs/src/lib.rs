//! `tifs` — a user-level temporal-importance file system.
//!
//! §6 of the paper announces "a user level file system prototype of the
//! system". This crate is that prototype as a library: a hierarchical
//! namespace whose files carry temporal importance annotations and whose
//! free space is managed entirely by the preemptive reclamation engine.
//! Files are write-once (Besteffs semantics); when the store reclaims a
//! file's object, the file silently vanishes from the namespace — exactly
//! the "no guarantees after `t_expire`" contract of §3.
//!
//! # Examples
//!
//! ```
//! use sim_core::{ByteSize, SimDuration, SimTime};
//! use temporal_importance::{Importance, ImportanceCurve};
//! use tifs::TiFs;
//!
//! let mut fs = TiFs::new(ByteSize::from_mib(10));
//! fs.mkdir_all("/lectures/os", SimTime::ZERO)?;
//!
//! let curve = ImportanceCurve::two_step(
//!     Importance::FULL,
//!     SimDuration::from_days(120),
//!     SimDuration::from_days(730),
//! );
//! fs.create("/lectures/os/lecture-01.mp4", vec![0u8; 1024], curve, SimTime::ZERO)?;
//!
//! let data = fs.read("/lectures/os/lecture-01.mp4", SimTime::ZERO)?;
//! assert_eq!(data.len(), 1024);
//! # Ok::<(), tifs::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod fs;
mod path;

pub use error::FsError;
pub use fs::{DirEntry, EntryKind, FileStat, TiFs};
pub use path::normalize;
