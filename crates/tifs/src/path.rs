//! Path normalization and validation.

use crate::error::FsError;

/// Normalizes an absolute path into its segments.
///
/// Accepts `/`-separated absolute paths; collapses repeated separators;
/// rejects empty paths, relative paths, `.`/`..` components and interior
/// NULs.
///
/// # Errors
///
/// Returns [`FsError::InvalidPath`] for anything that is not a clean
/// absolute path.
///
/// # Examples
///
/// ```
/// let segments = tifs::normalize("/a//b/c/")?;
/// assert_eq!(segments, vec!["a", "b", "c"]);
/// assert!(tifs::normalize("relative/path").is_err());
/// # Ok::<(), tifs::FsError>(())
/// ```
pub fn normalize(path: &str) -> Result<Vec<String>, FsError> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath {
            path: path.to_string(),
            reason: "paths must be absolute",
        });
    }
    let mut segments = Vec::new();
    for segment in path.split('/') {
        match segment {
            "" => continue,
            "." | ".." => {
                return Err(FsError::InvalidPath {
                    path: path.to_string(),
                    reason: "dot segments are not supported",
                })
            }
            s if s.contains('\0') => {
                return Err(FsError::InvalidPath {
                    path: path.to_string(),
                    reason: "NUL bytes are not allowed",
                })
            }
            s => segments.push(s.to_string()),
        }
    }
    Ok(segments)
}

/// Splits normalized segments into (parent directory, file name).
///
/// # Errors
///
/// Returns [`FsError::InvalidPath`] when `segments` is empty (the root
/// cannot be a file).
pub(crate) fn split_parent(
    path: &str,
    segments: Vec<String>,
) -> Result<(Vec<String>, String), FsError> {
    let mut segments = segments;
    match segments.pop() {
        Some(name) => Ok((segments, name)),
        None => Err(FsError::InvalidPath {
            path: path.to_string(),
            reason: "the root directory cannot be used as a file",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_separators() {
        assert_eq!(normalize("/").unwrap(), Vec::<String>::new());
        assert_eq!(normalize("/a/b").unwrap(), vec!["a", "b"]);
        assert_eq!(normalize("//a///b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn rejects_bad_paths() {
        assert!(normalize("relative").is_err());
        assert!(normalize("").is_err());
        assert!(normalize("/a/./b").is_err());
        assert!(normalize("/a/../b").is_err());
        assert!(normalize("/a\0b").is_err());
    }

    #[test]
    fn split_parent_extracts_name() {
        let (parent, name) = split_parent("/a/b/c", normalize("/a/b/c").unwrap()).unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert!(split_parent("/", normalize("/").unwrap()).is_err());
    }
}
