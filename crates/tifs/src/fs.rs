//! The file system proper.

use std::collections::{BTreeMap, HashMap};

use sim_core::{ByteSize, SimTime};
use temporal_importance::{
    EvictionRecord, Importance, ImportanceCurve, ObjectId, ObjectIdGen, ObjectSpec, StorageUnit,
};

use crate::error::FsError;
use crate::path::{normalize, split_parent};

/// A directory tree node.
#[derive(Debug)]
enum Node {
    Dir(BTreeMap<String, Node>),
    File(ObjectId),
}

/// What kind of entry a directory listing row is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A subdirectory.
    Directory,
    /// A regular (annotated) file.
    File,
}

/// One row of a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name within its directory.
    pub name: String,
    /// Directory or file.
    pub kind: EntryKind,
}

/// Metadata for a file, as of a given instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FileStat {
    /// Backing object id.
    pub object: ObjectId,
    /// File size.
    pub size: ByteSize,
    /// Current importance under the active annotation.
    pub importance: Importance,
    /// When the file was created.
    pub created: SimTime,
    /// When the annotation expires (`None` = never). After this instant
    /// the file may vanish at any time.
    pub expires: Option<SimTime>,
}

/// A user-level temporal-importance file system over one storage unit.
///
/// Files are write-once and carry an [`ImportanceCurve`]; directories are
/// pure metadata and consume no storage. When the engine preempts a
/// file's backing object, the file disappears from the namespace — the
/// §3 contract that the system "makes no guarantees on object
/// availability" after expiry, generalized to preemption.
#[derive(Debug)]
pub struct TiFs {
    unit: StorageUnit,
    ids: ObjectIdGen,
    root: BTreeMap<String, Node>,
    contents: HashMap<ObjectId, Vec<u8>>,
    locations: HashMap<ObjectId, Vec<String>>,
}

impl TiFs {
    /// Creates an empty file system backed by `capacity` of storage.
    pub fn new(capacity: ByteSize) -> Self {
        TiFs {
            unit: StorageUnit::new(capacity),
            ids: ObjectIdGen::new(),
            root: BTreeMap::new(),
            contents: HashMap::new(),
            locations: HashMap::new(),
        }
    }

    /// The underlying storage unit (read-only: all mutation flows through
    /// the file system so the namespace stays consistent).
    pub fn unit(&self) -> &StorageUnit {
        &self.unit
    }

    /// Bytes used by file contents.
    pub fn used(&self) -> ByteSize {
        self.unit.used()
    }

    /// Total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.unit.capacity()
    }

    /// The storage importance density at `now` — the feedback signal for
    /// choosing annotations (§5.1.2).
    pub fn density(&self, now: SimTime) -> f64 {
        self.unit.importance_density(now)
    }

    /// Creates a directory, requiring the parent to exist.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::NotADirectory`] for a bad
    /// parent; [`FsError::AlreadyExists`] if the name is taken.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = split_parent(path, normalize(path)?)?;
        let dir = resolve_dir_mut(&mut self.root, &parent, path)?;
        if dir.contains_key(&name) {
            return Err(FsError::AlreadyExists {
                path: path.to_string(),
            });
        }
        dir.insert(name, Node::Dir(BTreeMap::new()));
        Ok(())
    }

    /// Creates a directory and any missing ancestors.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if a path component is a file.
    pub fn mkdir_all(&mut self, path: &str, _now: SimTime) -> Result<(), FsError> {
        let segments = normalize(path)?;
        let mut dir = &mut self.root;
        for (depth, segment) in segments.iter().enumerate() {
            let entry = dir
                .entry(segment.clone())
                .or_insert_with(|| Node::Dir(BTreeMap::new()));
            match entry {
                Node::Dir(children) => dir = children,
                Node::File(_) => {
                    return Err(FsError::NotADirectory {
                        path: format!("/{}", segments[..=depth].join("/")),
                    })
                }
            }
        }
        Ok(())
    }

    /// Creates a write-once file with the given annotation, possibly
    /// preempting less important files to make room.
    ///
    /// Returns the backing object id.
    ///
    /// # Errors
    ///
    /// * [`FsError::AlreadyExists`] — files are write-once; use
    ///   [`remove`](TiFs::remove) first to replace.
    /// * [`FsError::Storage`] — the engine refused the write (storage full
    ///   for this importance level, zero-length data, or data larger than
    ///   the whole file system).
    pub fn create(
        &mut self,
        path: &str,
        data: Vec<u8>,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<ObjectId, FsError> {
        let segments = normalize(path)?;
        let (parent, name) = split_parent(path, segments.clone())?;
        {
            let dir = resolve_dir_mut(&mut self.root, &parent, path)?;
            if dir.contains_key(&name) {
                return Err(FsError::AlreadyExists {
                    path: path.to_string(),
                });
            }
        }

        let id = self.ids.next_id();
        let spec = ObjectSpec::new(id, ByteSize::from_bytes(data.len() as u64), curve);
        let outcome = self.unit.store(spec, now)?;
        for victim in &outcome.evicted {
            self.prune_object(victim);
        }

        let dir =
            resolve_dir_mut(&mut self.root, &parent, path).expect("parent verified before store");
        dir.insert(name, Node::File(id));
        self.contents.insert(id, data);
        self.locations.insert(id, segments);
        Ok(id)
    }

    /// Reads a file's contents.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the path does not exist — including when
    /// the storage has reclaimed the file since it was written.
    pub fn read(&mut self, path: &str, _now: SimTime) -> Result<&[u8], FsError> {
        let id = self.resolve_live_file(path)?;
        Ok(self
            .contents
            .get(&id)
            .expect("live file has contents")
            .as_slice())
    }

    /// A file's metadata at `now`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::IsADirectory`].
    pub fn stat(&mut self, path: &str, now: SimTime) -> Result<FileStat, FsError> {
        let id = self.resolve_live_file(path)?;
        let object = self.unit.get(id).expect("live file is resident");
        Ok(FileStat {
            object: id,
            size: object.size(),
            importance: object.current_importance(now),
            created: object.arrival(),
            expires: object.curve().expiry().map(|e| object.annotated_at() + e),
        })
    }

    /// Lists a directory, pruning entries whose backing objects have been
    /// reclaimed since the last call.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::NotADirectory`].
    pub fn list(&mut self, path: &str, _now: SimTime) -> Result<Vec<DirEntry>, FsError> {
        let segments = normalize(path)?;
        // Prune dead children first.
        let dead: Vec<ObjectId> = {
            let dir = resolve_dir_mut(&mut self.root, &segments, path)?;
            dir.values()
                .filter_map(|node| match node {
                    Node::File(id) if !self.unit.contains(*id) => Some(*id),
                    _ => None,
                })
                .collect()
        };
        for id in dead {
            self.prune_by_id(id);
        }
        let dir = resolve_dir_mut(&mut self.root, &segments, path)?;
        Ok(dir
            .iter()
            .map(|(name, node)| DirEntry {
                name: name.clone(),
                kind: match node {
                    Node::Dir(_) => EntryKind::Directory,
                    Node::File(_) => EntryKind::File,
                },
            })
            .collect())
    }

    /// Removes a file, freeing its storage immediately.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::IsADirectory`].
    pub fn remove(&mut self, path: &str, now: SimTime) -> Result<(), FsError> {
        let id = self.resolve_live_file(path)?;
        self.unit.remove(id, now);
        self.prune_by_id(id);
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`] if it still has entries,
    /// [`FsError::NotADirectory`] if the path is a file.
    pub fn rmdir(&mut self, path: &str, now: SimTime) -> Result<(), FsError> {
        // Give reclaimed files a chance to disappear first.
        let _ = self.list(path, now)?;
        let (parent, name) = split_parent(path, normalize(path)?)?;
        let dir = resolve_dir_mut(&mut self.root, &parent, path)?;
        match dir.get(&name) {
            Some(Node::Dir(children)) => {
                if !children.is_empty() {
                    return Err(FsError::NotEmpty {
                        path: path.to_string(),
                    });
                }
                dir.remove(&name);
                Ok(())
            }
            Some(Node::File(_)) => Err(FsError::NotADirectory {
                path: path.to_string(),
            }),
            None => Err(FsError::NotFound {
                path: path.to_string(),
            }),
        }
    }

    /// Raises a file's annotation (rejuvenation, §3): the new curve must
    /// not start below the file's current importance.
    ///
    /// # Errors
    ///
    /// [`FsError::Annotation`] if the curve would lower importance;
    /// [`FsError::NotFound`] / [`FsError::IsADirectory`].
    pub fn rejuvenate(
        &mut self,
        path: &str,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<(), FsError> {
        let id = self.resolve_live_file(path)?;
        self.unit.rejuvenate(id, curve, now)?;
        Ok(())
    }

    /// Demotes a file's annotation unconditionally (the §6 trigger, e.g.
    /// after a successful backup).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::IsADirectory`].
    pub fn demote(
        &mut self,
        path: &str,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<(), FsError> {
        let id = self.resolve_live_file(path)?;
        self.unit.reannotate(id, curve, now)?;
        Ok(())
    }

    /// Reclaims all expired files right now and prunes them from the
    /// namespace. Returns how many files were reclaimed.
    pub fn reclaim_expired(&mut self, now: SimTime) -> usize {
        let swept = self.unit.sweep_expired(now);
        for record in &swept {
            self.prune_object(record);
        }
        swept.len()
    }

    fn resolve_live_file(&mut self, path: &str) -> Result<ObjectId, FsError> {
        let (parent, name) = split_parent(path, normalize(path)?)?;
        let dir = resolve_dir_mut(&mut self.root, &parent, path)?;
        match dir.get(&name) {
            Some(Node::File(id)) => {
                let id = *id;
                if self.unit.contains(id) {
                    Ok(id)
                } else {
                    // The storage reclaimed it; make the namespace agree.
                    self.prune_by_id(id);
                    Err(FsError::NotFound {
                        path: path.to_string(),
                    })
                }
            }
            Some(Node::Dir(_)) => Err(FsError::IsADirectory {
                path: path.to_string(),
            }),
            None => Err(FsError::NotFound {
                path: path.to_string(),
            }),
        }
    }

    fn prune_object(&mut self, record: &EvictionRecord) {
        self.prune_by_id(record.id);
    }

    fn prune_by_id(&mut self, id: ObjectId) {
        self.contents.remove(&id);
        let Some(segments) = self.locations.remove(&id) else {
            return;
        };
        let (parent, name) = match segments.split_last() {
            Some((name, parent)) => (parent, name),
            None => return,
        };
        if let Ok(dir) = resolve_dir_mut(&mut self.root, parent, "") {
            if matches!(dir.get(name), Some(Node::File(fid)) if *fid == id) {
                dir.remove(name);
            }
        }
    }
}

fn resolve_dir_mut<'a, S: AsRef<str>>(
    root: &'a mut BTreeMap<String, Node>,
    segments: &[S],
    path: &str,
) -> Result<&'a mut BTreeMap<String, Node>, FsError> {
    let mut dir = root;
    for segment in segments {
        match dir.get_mut(segment.as_ref()) {
            Some(Node::Dir(children)) => dir = children,
            Some(Node::File(_)) => {
                return Err(FsError::NotADirectory {
                    path: path.to_string(),
                })
            }
            None => {
                return Err(FsError::NotFound {
                    path: path.to_string(),
                })
            }
        }
    }
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;
    use temporal_importance::Importance;

    fn fixed(importance: f64, days: u64) -> ImportanceCurve {
        ImportanceCurve::Fixed {
            importance: Importance::new(importance).unwrap(),
            expiry: SimDuration::from_days(days),
        }
    }

    fn fs_mib(capacity: u64) -> TiFs {
        TiFs::new(ByteSize::from_mib(capacity))
    }

    fn kb(n: usize) -> Vec<u8> {
        vec![0xAB; n * 1024]
    }

    #[test]
    fn create_read_stat_roundtrip() {
        let mut fs = fs_mib(1);
        fs.mkdir("/docs").unwrap();
        let id = fs
            .create(
                "/docs/a.txt",
                b"hello".to_vec(),
                fixed(1.0, 30),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(fs.read("/docs/a.txt", SimTime::ZERO).unwrap(), b"hello");
        let stat = fs.stat("/docs/a.txt", SimTime::ZERO).unwrap();
        assert_eq!(stat.object, id);
        assert_eq!(stat.size, ByteSize::from_bytes(5));
        assert_eq!(stat.importance, Importance::FULL);
        assert_eq!(stat.expires, Some(SimTime::from_days(30)));
        assert_eq!(fs.used(), ByteSize::from_bytes(5));
    }

    #[test]
    fn files_are_write_once() {
        let mut fs = fs_mib(1);
        fs.create("/a", b"1".to_vec(), fixed(1.0, 30), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            fs.create("/a", b"2".to_vec(), fixed(1.0, 30), SimTime::ZERO),
            Err(FsError::AlreadyExists { .. })
        ));
        // Remove-then-create replaces.
        fs.remove("/a", SimTime::ZERO).unwrap();
        fs.create("/a", b"2".to_vec(), fixed(1.0, 30), SimTime::ZERO)
            .unwrap();
        assert_eq!(fs.read("/a", SimTime::ZERO).unwrap(), b"2");
    }

    #[test]
    fn directories_are_metadata_only() {
        let mut fs = fs_mib(1);
        fs.mkdir_all("/a/b/c/d", SimTime::ZERO).unwrap();
        assert_eq!(fs.used(), ByteSize::ZERO);
        let entries = fs.list("/a/b/c", SimTime::ZERO).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, EntryKind::Directory);
    }

    #[test]
    fn path_errors() {
        let mut fs = fs_mib(1);
        fs.create("/file", b"x".to_vec(), fixed(1.0, 30), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            fs.create("/file/child", b"x".to_vec(), fixed(1.0, 30), SimTime::ZERO),
            Err(FsError::NotADirectory { .. })
        ));
        assert!(matches!(
            fs.read("/missing", SimTime::ZERO),
            Err(FsError::NotFound { .. })
        ));
        assert!(matches!(
            fs.read("/", SimTime::ZERO),
            Err(FsError::InvalidPath { .. })
        ));
        fs.mkdir("/dir").unwrap();
        assert!(matches!(
            fs.read("/dir", SimTime::ZERO),
            Err(FsError::IsADirectory { .. })
        ));
        assert!(matches!(
            fs.mkdir("/dir"),
            Err(FsError::AlreadyExists { .. })
        ));
        assert!(matches!(
            fs.mkdir_all("/file/x", SimTime::ZERO),
            Err(FsError::NotADirectory { .. })
        ));
    }

    #[test]
    fn reclamation_removes_files_from_the_namespace() {
        let mut fs = fs_mib(1);
        fs.mkdir("/cache").unwrap();
        fs.mkdir("/docs").unwrap();
        // 600 KiB of low-importance cache data.
        fs.create("/cache/blob", kb(600), fixed(0.2, 365), SimTime::ZERO)
            .unwrap();
        // An important 700 KiB document forces reclamation of the blob.
        fs.create("/docs/thesis", kb(700), fixed(1.0, 365), SimTime::ZERO)
            .unwrap();

        assert!(matches!(
            fs.read("/cache/blob", SimTime::ZERO),
            Err(FsError::NotFound { .. })
        ));
        assert!(fs.list("/cache", SimTime::ZERO).unwrap().is_empty());
        assert_eq!(
            fs.read("/docs/thesis", SimTime::ZERO).unwrap().len(),
            700 * 1024
        );
    }

    #[test]
    fn full_for_this_importance_level() {
        let mut fs = fs_mib(1);
        fs.create("/important", kb(900), fixed(1.0, 365), SimTime::ZERO)
            .unwrap();
        // Equal importance cannot displace it.
        let err = fs
            .create("/another", kb(600), fixed(1.0, 365), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FsError::Storage(_)));
        // The namespace was not polluted by the failed create.
        assert!(matches!(
            fs.read("/another", SimTime::ZERO),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn expired_files_remain_readable_until_reclaimed() {
        let mut fs = fs_mib(1);
        fs.create("/tmp-report", kb(100), fixed(1.0, 10), SimTime::ZERO)
            .unwrap();
        let later = SimTime::from_days(30);
        // Expired but still resident: §3 "objects need not be deleted at
        // the end of t_expire".
        assert!(fs.read("/tmp-report", later).is_ok());
        assert_eq!(
            fs.stat("/tmp-report", later).unwrap().importance,
            Importance::ZERO
        );
        // An explicit reclaim sweeps it.
        assert_eq!(fs.reclaim_expired(later), 1);
        assert!(matches!(
            fs.read("/tmp-report", later),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn rejuvenate_and_demote() {
        let mut fs = fs_mib(1);
        fs.create("/video", kb(100), fixed(1.0, 10), SimTime::ZERO)
            .unwrap();
        let later = SimTime::from_days(5);
        // Raise: extend the lifetime.
        fs.rejuvenate("/video", fixed(1.0, 30), later).unwrap();
        assert_eq!(
            fs.stat("/video", SimTime::from_days(20))
                .unwrap()
                .importance,
            Importance::FULL
        );
        // Lowering via rejuvenate is refused...
        assert!(matches!(
            fs.rejuvenate("/video", fixed(0.1, 30), later),
            Err(FsError::Annotation(_))
        ));
        // ...but demote (the backup-completed trigger) succeeds.
        fs.demote("/video", fixed(0.1, 30), later).unwrap();
        assert_eq!(fs.stat("/video", later).unwrap().importance.value(), 0.1);
    }

    #[test]
    fn rmdir_only_removes_empty_directories() {
        let mut fs = fs_mib(1);
        fs.mkdir_all("/a/b", SimTime::ZERO).unwrap();
        fs.create("/a/b/f", b"x".to_vec(), fixed(1.0, 30), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            fs.rmdir("/a/b", SimTime::ZERO),
            Err(FsError::NotEmpty { .. })
        ));
        fs.remove("/a/b/f", SimTime::ZERO).unwrap();
        fs.rmdir("/a/b", SimTime::ZERO).unwrap();
        assert!(fs.list("/a", SimTime::ZERO).unwrap().is_empty());
        assert!(matches!(
            fs.rmdir("/a/b", SimTime::ZERO),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn rmdir_succeeds_after_contents_are_reclaimed() {
        let mut fs = fs_mib(1);
        fs.mkdir("/cache").unwrap();
        fs.create("/cache/junk", kb(600), fixed(0.1, 365), SimTime::ZERO)
            .unwrap();
        fs.create("/big", kb(700), fixed(1.0, 365), SimTime::ZERO)
            .unwrap();
        // junk was preempted; rmdir sees the pruned directory.
        fs.rmdir("/cache", SimTime::ZERO).unwrap();
    }

    #[test]
    fn density_reflects_file_annotations() {
        let mut fs = fs_mib(1);
        fs.create("/half", kb(512), fixed(0.5, 365), SimTime::ZERO)
            .unwrap();
        let d = fs.density(SimTime::ZERO);
        assert!((d - 0.25).abs() < 0.01, "density {d}");
        assert_eq!(fs.capacity(), ByteSize::from_mib(1));
    }

    #[test]
    fn listing_is_sorted_and_typed() {
        let mut fs = fs_mib(1);
        fs.mkdir("/z-dir").unwrap();
        fs.create("/a-file", b"x".to_vec(), fixed(1.0, 30), SimTime::ZERO)
            .unwrap();
        let entries = fs.list("/", SimTime::ZERO).unwrap();
        assert_eq!(
            entries,
            vec![
                DirEntry {
                    name: "a-file".to_string(),
                    kind: EntryKind::File
                },
                DirEntry {
                    name: "z-dir".to_string(),
                    kind: EntryKind::Directory
                },
            ]
        );
    }
}
