//! File-system error type.

use std::error::Error;
use std::fmt;

use temporal_importance::{RejuvenateError, StoreError};

/// Errors returned by [`TiFs`](crate::TiFs) operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum FsError {
    /// No entry at the path (possibly because the storage reclaimed it —
    /// a temporal-importance file system makes no guarantees after
    /// `t_expire`).
    NotFound {
        /// The missing path.
        path: String,
    },
    /// The path (or one of its ancestors) is a file, not a directory.
    NotADirectory {
        /// The offending path.
        path: String,
    },
    /// The path names a directory where a file was expected.
    IsADirectory {
        /// The offending path.
        path: String,
    },
    /// An entry already exists at the path (files are write-once).
    AlreadyExists {
        /// The occupied path.
        path: String,
    },
    /// The directory is not empty and cannot be removed.
    NotEmpty {
        /// The non-empty directory.
        path: String,
    },
    /// The path is malformed.
    InvalidPath {
        /// The malformed path.
        path: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The reclamation engine refused the write (e.g. the storage is full
    /// for the file's importance level).
    Storage(StoreError),
    /// A re-annotation was refused.
    Annotation(RejuvenateError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { path } => write!(f, "no such file or directory: {path}"),
            FsError::NotADirectory { path } => write!(f, "not a directory: {path}"),
            FsError::IsADirectory { path } => write!(f, "is a directory: {path}"),
            FsError::AlreadyExists { path } => write!(f, "already exists: {path}"),
            FsError::NotEmpty { path } => write!(f, "directory not empty: {path}"),
            FsError::InvalidPath { path, reason } => {
                write!(f, "invalid path {path:?}: {reason}")
            }
            FsError::Storage(e) => write!(f, "storage refused the operation: {e}"),
            FsError::Annotation(e) => write!(f, "annotation refused: {e}"),
        }
    }
}

impl Error for FsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FsError::Storage(e) => Some(e),
            FsError::Annotation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for FsError {
    fn from(e: StoreError) -> Self {
        FsError::Storage(e)
    }
}

impl From<RejuvenateError> for FsError {
    fn from(e: RejuvenateError) -> Self {
        FsError::Annotation(e)
    }
}

impl From<FsError> for temporal_importance::Error {
    fn from(e: FsError) -> Self {
        temporal_importance::Error::external(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FsError::NotFound {
            path: "/x".to_string(),
        };
        assert!(e.to_string().contains("/x"));
        let e = FsError::InvalidPath {
            path: "bad".to_string(),
            reason: "paths must be absolute",
        };
        assert!(e.to_string().contains("absolute"));
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<FsError>();
    }
}
