//! Equal-width histograms.

use serde::{Deserialize, Serialize};

/// An equal-width histogram over a closed range.
///
/// Values below the range clamp into the first bin, values above into the
/// last — reported counts therefore always sum to the number of
/// observations.
///
/// # Examples
///
/// ```
/// use analysis::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 30.0, 6).expect("valid spec");
/// for v in [1.0, 6.0, 7.0, 29.0, 35.0] {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.counts()[1], 2); // 6.0 and 7.0 fall in [5, 10)
/// assert_eq!(h.counts()[5], 2); // 29.0 plus the clamped 35.0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// Returns `None` when the range is empty/non-finite or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Records one observation (NaN is ignored).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let fraction = (value - self.lo) / (self.hi - self.lo);
        let index = ((fraction * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[index] += 1;
        self.total += 1;
    }

    /// Records every value in an iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for value in values {
            self.record(value);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `[start, end)` value range of bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bin_range(&self, index: usize) -> (f64, f64) {
        assert!(index < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (
            self.lo + width * index as f64,
            self.lo + width * (index + 1) as f64,
        )
    }

    /// Iterates `(bin start, bin end, count, fraction)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64, f64)> + '_ {
        let total = self.total.max(1) as f64;
        (0..self.counts.len()).map(move |i| {
            let (start, end) = self.bin_range(i);
            (start, end, self.counts[i], self.counts[i] as f64 / total)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_specs() {
        assert!(Histogram::new(0.0, 10.0, 0).is_none());
        assert!(Histogram::new(5.0, 5.0, 4).is_none());
        assert!(Histogram::new(10.0, 0.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn bins_values_and_clamps_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record_all([-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 100.0]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts(), &[3, 1, 0, 0, 3]);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn bin_ranges_partition_the_domain() {
        let h = Histogram::new(0.0, 30.0, 6).unwrap();
        assert_eq!(h.bin_range(0), (0.0, 5.0));
        assert_eq!(h.bin_range(5), (25.0, 30.0));
        let rows: Vec<_> = h.rows().collect();
        assert_eq!(rows.len(), 6);
        for window in rows.windows(2) {
            assert_eq!(window[0].1, window[1].0, "bins must be contiguous");
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 4).unwrap();
        h.record_all((0..100).map(|i| i as f64 / 10.0));
        let sum: f64 = h.rows().map(|(_, _, _, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bin_index_panics() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_range(2);
    }
}
