//! Weighted empirical CDFs.

use serde::{Deserialize, Serialize};

/// A weighted empirical cumulative distribution function.
///
/// Built from `(value, weight)` pairs — e.g. `(importance, bytes)` for
/// Figure 7's "cumulative distribution of the importance values of the
/// stored bytes".
///
/// # Examples
///
/// ```
/// use analysis::WeightedCdf;
///
/// let cdf = WeightedCdf::from_pairs(vec![(1.0, 57.0), (0.5, 30.0), (0.25, 13.0)])
///     .expect("positive total weight");
/// assert!((cdf.fraction_at_most(0.5) - 0.43).abs() < 1e-12);
/// assert_eq!(cdf.fraction_at_most(1.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedCdf {
    /// `(value, cumulative fraction)` steps, ascending in value.
    steps: Vec<(f64, f64)>,
}

impl WeightedCdf {
    /// Builds a CDF from unsorted `(value, weight)` pairs.
    ///
    /// Returns `None` if the total weight is zero, or any value/weight is
    /// NaN, or any weight is negative.
    pub fn from_pairs(mut pairs: Vec<(f64, f64)>) -> Option<WeightedCdf> {
        if pairs
            .iter()
            .any(|(v, w)| v.is_nan() || w.is_nan() || *w < 0.0)
        {
            return None;
        }
        pairs.retain(|(_, w)| *w > 0.0);
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut steps: Vec<(f64, f64)> = Vec::new();
        let mut acc = 0.0;
        for (value, weight) in pairs {
            acc += weight;
            match steps.last_mut() {
                Some((v, frac)) if *v == value => *frac = acc / total,
                _ => steps.push((value, acc / total)),
            }
        }
        Some(WeightedCdf { steps })
    }

    /// The cumulative fraction of weight at values `<= value`.
    pub fn fraction_at_most(&self, value: f64) -> f64 {
        match self.steps.binary_search_by(|(v, _)| v.total_cmp(&value)) {
            Ok(i) => self.steps[i].1,
            Err(0) => 0.0,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The smallest value whose cumulative fraction reaches `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile order out of range");
        for &(value, frac) in &self.steps {
            if frac + 1e-12 >= q {
                return value;
            }
        }
        self.steps.last().expect("non-empty").0
    }

    /// The `(value, cumulative fraction)` steps, ascending.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// The smallest observed value.
    pub fn min_value(&self) -> f64 {
        self.steps.first().expect("non-empty").0
    }

    /// The fraction of weight at exactly the largest value.
    pub fn fraction_at_max(&self) -> f64 {
        let n = self.steps.len();
        if n == 1 {
            1.0
        } else {
            self.steps[n - 1].1 - self.steps[n - 2].1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_steps_and_merges_duplicates() {
        let cdf = WeightedCdf::from_pairs(vec![(0.5, 1.0), (0.2, 1.0), (0.5, 2.0)]).unwrap();
        assert_eq!(cdf.steps().len(), 2);
        assert_eq!(cdf.steps()[0].0, 0.2);
        assert!((cdf.fraction_at_most(0.2) - 0.25).abs() < 1e-12);
        assert_eq!(cdf.fraction_at_most(0.5), 1.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(WeightedCdf::from_pairs(vec![]).is_none());
        assert!(WeightedCdf::from_pairs(vec![(1.0, 0.0)]).is_none());
        assert!(WeightedCdf::from_pairs(vec![(1.0, -1.0)]).is_none());
        assert!(WeightedCdf::from_pairs(vec![(f64::NAN, 1.0)]).is_none());
    }

    #[test]
    fn fraction_below_min_is_zero() {
        let cdf = WeightedCdf::from_pairs(vec![(0.5, 1.0)]).unwrap();
        assert_eq!(cdf.fraction_at_most(0.4), 0.0);
        assert_eq!(cdf.fraction_at_most(0.6), 1.0);
        assert_eq!(cdf.min_value(), 0.5);
        assert_eq!(cdf.fraction_at_max(), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf = WeightedCdf::from_pairs(vec![(0.25, 13.0), (0.5, 30.0), (1.0, 57.0)]).unwrap();
        assert_eq!(cdf.quantile(0.0), 0.25);
        assert_eq!(cdf.quantile(0.13), 0.25);
        assert_eq!(cdf.quantile(0.43), 0.5);
        assert_eq!(cdf.quantile(0.44), 1.0);
        assert_eq!(cdf.quantile(1.0), 1.0);
        // Figure 7's headline: 57% of bytes at importance one.
        assert!((cdf.fraction_at_max() - 0.57).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        let cdf = WeightedCdf::from_pairs(vec![(1.0, 1.0)]).unwrap();
        let _ = cdf.quantile(1.5);
    }
}
