//! Analysis toolkit for the temporal-importance reproduction.
//!
//! Small, dependency-free statistics used to regenerate the paper's
//! figures:
//!
//! * [`stats`] — summaries (mean/variance/quantiles) and least-squares
//!   regression.
//! * [`cdf`] — weighted empirical CDFs (Figure 7).
//! * [`timeseries`] — time-indexed series with bucketed downsampling
//!   (Figures 3, 4, 6, 12).
//! * [`time_constant`] — Palimpsest's time-constant estimator over
//!   hour/day/month windows, plus the heteroscedasticity diagnostic that
//!   §5.1.2 uses to argue the metric is unpredictable (Figures 5, 11).
//! * [`report`] — aligned text tables and CSV writers for the `repro`
//!   binary's output.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cdf;
pub mod histogram;
pub mod predict;
pub mod report;
pub mod stats;
pub mod time_constant;
pub mod timeseries;

pub use cdf::WeightedCdf;
pub use histogram::Histogram;
pub use predict::PredictionReport;
pub use stats::{LinearFit, Summary};
pub use time_constant::{TimeConstantEstimator, TimeConstantSeries};
pub use timeseries::TimeSeries;
