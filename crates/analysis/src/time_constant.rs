//! Palimpsest's time-constant estimator (Figures 5 and 11).
//!
//! Palimpsest applications must predict when their data will be reclaimed
//! by watching the storage *time constant* — the time a FIFO store of
//! capacity `C` takes to turn over at the observed arrival rate `r`:
//! `τ = C / r`. The paper estimates `τ` over hour, day and month analysis
//! windows and shows the estimate is wildly variable at short windows and
//! heteroscedastic at medium ones (§5.1.2), which is the argument for the
//! storage importance density as a better feedback signal.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration, SimTime};

use crate::stats::{LinearFit, Summary};

/// One analysis window's estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowEstimate {
    /// Window start.
    pub start: SimTime,
    /// Observed arrival rate within the window, bytes per day.
    pub rate_bytes_per_day: f64,
    /// The estimated time constant, in days.
    pub tau_days: f64,
}

/// Estimates the Palimpsest time constant over fixed analysis windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeConstantEstimator {
    capacity: ByteSize,
    window: SimDuration,
}

impl TimeConstantEstimator {
    /// Creates an estimator for a store of `capacity` analyzed over
    /// windows of `window`.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or the capacity is zero bytes.
    pub fn new(capacity: ByteSize, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "analysis window must be positive");
        assert!(!capacity.is_zero(), "capacity must be positive");
        TimeConstantEstimator { capacity, window }
    }

    /// Runs the estimator over a time-ordered arrival stream.
    ///
    /// Windows with no arrivals yield an infinite time constant; they are
    /// excluded from the series but counted in
    /// [`TimeConstantSeries::empty_windows`].
    pub fn estimate<I>(&self, arrivals: I) -> TimeConstantSeries
    where
        I: IntoIterator<Item = (SimTime, ByteSize)>,
    {
        let window_minutes = self.window.as_minutes();
        let window_days = self.window.as_days_f64();
        let capacity = self.capacity.as_bytes() as f64;

        let mut points: Vec<WindowEstimate> = Vec::new();
        let mut empty_windows = 0usize;
        let mut current: Option<u64> = None;
        let mut acc = 0u64;

        let flush = |index: u64, acc: u64, points: &mut Vec<WindowEstimate>| {
            let rate_per_day = acc as f64 / window_days;
            points.push(WindowEstimate {
                start: SimTime::from_minutes(index * window_minutes),
                rate_bytes_per_day: rate_per_day,
                tau_days: capacity / rate_per_day,
            });
        };

        for (at, size) in arrivals {
            let index = at.as_minutes() / window_minutes;
            match current {
                Some(cur) if cur == index => acc += size.as_bytes(),
                Some(cur) => {
                    flush(cur, acc, &mut points);
                    empty_windows += (index - cur - 1) as usize;
                    current = Some(index);
                    acc = size.as_bytes();
                }
                None => {
                    empty_windows += index as usize;
                    current = Some(index);
                    acc = size.as_bytes();
                }
            }
        }
        if let Some(cur) = current {
            flush(cur, acc, &mut points);
        }

        TimeConstantSeries {
            window: self.window,
            points,
            empty_windows,
        }
    }
}

/// The per-window estimates produced by a [`TimeConstantEstimator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeConstantSeries {
    /// The analysis window length.
    pub window: SimDuration,
    /// Non-empty window estimates, in time order.
    pub points: Vec<WindowEstimate>,
    /// Windows (within the observed span) that saw no arrivals at all —
    /// their time constant is infinite.
    pub empty_windows: usize,
}

impl TimeConstantSeries {
    /// Summary of the τ estimates (days); `None` if no windows had data.
    pub fn summary(&self) -> Option<Summary> {
        Summary::from_slice(&self.points.iter().map(|p| p.tau_days).collect::<Vec<_>>())
    }

    /// Coefficient of variation of τ — the "varies considerably" headline
    /// of Figure 5.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        self.summary()?.coefficient_of_variation()
    }

    /// Heteroscedasticity diagnostic: splits windows into `groups` rate
    /// bands and returns `(mean rate, τ variance)` per band, ascending by
    /// rate. A homoscedastic estimator would show similar variances across
    /// bands; §5.1.2 observes the day-window estimates do not.
    ///
    /// Returns `None` when there are fewer windows than groups.
    pub fn variance_by_rate(&self, groups: usize) -> Option<Vec<(f64, f64)>> {
        if groups == 0 || self.points.len() < groups * 2 {
            return None;
        }
        let mut sorted: Vec<&WindowEstimate> = self.points.iter().collect();
        sorted.sort_by(|a, b| a.rate_bytes_per_day.total_cmp(&b.rate_bytes_per_day));
        let per = sorted.len() / groups;
        let mut out = Vec::with_capacity(groups);
        for g in 0..groups {
            let slice = &sorted[g * per..if g == groups - 1 {
                sorted.len()
            } else {
                (g + 1) * per
            }];
            let rates: Vec<f64> = slice.iter().map(|p| p.rate_bytes_per_day).collect();
            let taus: Vec<f64> = slice.iter().map(|p| p.tau_days).collect();
            let rate_mean = Summary::from_slice(&rates)?.mean;
            let tau_var = Summary::from_slice(&taus)?.variance;
            out.push((rate_mean, tau_var));
        }
        Some(out)
    }

    /// Ratio of the largest to smallest per-band τ variance (from
    /// [`variance_by_rate`](TimeConstantSeries::variance_by_rate)); large
    /// ratios indicate heteroscedasticity. `None` when undefined.
    pub fn heteroscedasticity_ratio(&self, groups: usize) -> Option<f64> {
        let bands = self.variance_by_rate(groups)?;
        let max = bands.iter().map(|b| b.1).fold(f64::MIN, f64::max);
        let min = bands.iter().map(|b| b.1).fold(f64::MAX, f64::min);
        if min <= 0.0 {
            return None;
        }
        Some(max / min)
    }

    /// A Breusch–Pagan-style score: R² of regressing the squared τ
    /// deviations on the arrival rate. Values near zero mean the τ
    /// dispersion does not depend on the rate; the paper's day-window
    /// estimates show clear dependence.
    pub fn dispersion_rate_r2(&self) -> Option<f64> {
        let mean_tau = self.summary()?.mean;
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.rate_bytes_per_day, (p.tau_days - mean_tau).powi(2)))
            .collect();
        LinearFit::fit(&pts).map(|f| f.r_squared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals_every_hour(days: u64, bytes: u64) -> Vec<(SimTime, ByteSize)> {
        (0..days * 24)
            .map(|h| (SimTime::from_hours(h), ByteSize::from_bytes(bytes)))
            .collect()
    }

    #[test]
    fn constant_rate_gives_constant_tau() {
        // 1 GiB/day into a 30 GiB store → τ = 30 days in every window.
        let arrivals = arrivals_every_hour(10, ByteSize::from_gib(1).as_bytes() / 24);
        let est = TimeConstantEstimator::new(ByteSize::from_gib(30), SimDuration::DAY);
        let series = est.estimate(arrivals);
        assert_eq!(series.points.len(), 10);
        for p in &series.points {
            assert!((p.tau_days - 30.0).abs() < 0.2, "tau {}", p.tau_days);
        }
        let cv = series.coefficient_of_variation().unwrap();
        assert!(cv < 0.01, "cv {cv}");
        assert_eq!(series.empty_windows, 0);
    }

    #[test]
    fn bursty_rate_inflates_cv_at_short_windows() {
        // Alternate loud and quiet days.
        let mut arrivals = Vec::new();
        for d in 0..30u64 {
            let bytes = if d % 2 == 0 { 10u64 << 30 } else { 1u64 << 30 };
            arrivals.push((SimTime::from_days(d), ByteSize::from_bytes(bytes)));
        }
        let cap = ByteSize::from_gib(100);
        let daily = TimeConstantEstimator::new(cap, SimDuration::DAY).estimate(arrivals.clone());
        let monthly =
            TimeConstantEstimator::new(cap, SimDuration::from_days(30)).estimate(arrivals);
        let cv_daily = daily.coefficient_of_variation().unwrap();
        assert!(cv_daily > 0.5, "daily cv {cv_daily}");
        // One month window: a single estimate, no variation to speak of.
        assert_eq!(monthly.points.len(), 1);
    }

    #[test]
    fn empty_windows_are_counted_not_estimated() {
        let arrivals = vec![
            (SimTime::from_days(0), ByteSize::from_gib(1)),
            (SimTime::from_days(5), ByteSize::from_gib(1)),
        ];
        let est = TimeConstantEstimator::new(ByteSize::from_gib(10), SimDuration::DAY);
        let series = est.estimate(arrivals);
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.empty_windows, 4);
    }

    #[test]
    fn heteroscedasticity_detected_when_dispersion_tracks_rate() {
        // Low-rate windows get very noisy τ; high-rate windows are stable.
        let mut arrivals = Vec::new();
        for d in 0..200u64 {
            let base = if d % 2 == 0 {
                // Low rate, jittered heavily: 1..6 GiB.
                1 + (d * 7 % 6)
            } else {
                // High rate, stable: 50 or 51 GiB.
                50 + (d % 2)
            };
            arrivals.push((SimTime::from_days(d), ByteSize::from_gib(base)));
        }
        let est = TimeConstantEstimator::new(ByteSize::from_tib(1), SimDuration::DAY);
        let series = est.estimate(arrivals);
        let ratio = series.heteroscedasticity_ratio(4).unwrap();
        assert!(ratio > 10.0, "variance ratio {ratio}");
        let r2 = series.dispersion_rate_r2().unwrap();
        assert!(r2 > 0.1, "dispersion r² {r2}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = TimeConstantEstimator::new(ByteSize::from_gib(1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = TimeConstantEstimator::new(ByteSize::ZERO, SimDuration::DAY);
    }

    #[test]
    fn variance_by_rate_requires_enough_windows() {
        let est = TimeConstantEstimator::new(ByteSize::from_gib(1), SimDuration::DAY);
        let series = est.estimate(vec![(SimTime::ZERO, ByteSize::from_gib(1))]);
        assert!(series.variance_by_rate(4).is_none());
        assert!(series.heteroscedasticity_ratio(4).is_none());
    }
}
