//! Time-indexed series with bucketed downsampling.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

use crate::stats::Summary;

/// A series of `(time, value)` samples, append-only in time order.
///
/// # Examples
///
/// ```
/// use analysis::TimeSeries;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut series = TimeSeries::new();
/// for day in 0..10 {
///     series.push(SimTime::from_days(day), day as f64);
/// }
/// let buckets = series.bucket_mean(SimDuration::from_days(5));
/// assert_eq!(buckets.len(), 2);
/// assert_eq!(buckets[0].1, 2.0); // mean of 0..=4
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last sample (series are time-ordered).
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "samples must be pushed in time order");
        }
        self.points.push((at, value));
    }

    /// The raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Summary over all values; `None` if empty.
    pub fn summary(&self) -> Option<Summary> {
        Summary::from_slice(&self.values())
    }

    /// Means over fixed-width buckets starting at the epoch. Buckets with
    /// no samples are omitted. Returns `(bucket start, mean)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn bucket_mean(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!width.is_zero(), "bucket width must be positive");
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut bucket_index: Option<u64> = None;
        let mut sum = 0.0;
        let mut count = 0u64;
        for &(at, value) in &self.points {
            let index = at.as_minutes() / width.as_minutes();
            if Some(index) != bucket_index {
                if let Some(prev) = bucket_index {
                    out.push((
                        SimTime::from_minutes(prev * width.as_minutes()),
                        sum / count as f64,
                    ));
                }
                bucket_index = Some(index);
                sum = 0.0;
                count = 0;
            }
            sum += value;
            count += 1;
        }
        if let Some(prev) = bucket_index {
            out.push((
                SimTime::from_minutes(prev * width.as_minutes()),
                sum / count as f64,
            ));
        }
        out
    }

    /// Like [`bucket_mean`](TimeSeries::bucket_mean) but sums the values —
    /// the right reduction for counts (e.g. rejections per week).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn bucket_sum(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!width.is_zero(), "bucket width must be positive");
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut bucket_index: Option<u64> = None;
        let mut sum = 0.0;
        for &(at, value) in &self.points {
            let index = at.as_minutes() / width.as_minutes();
            if Some(index) != bucket_index {
                if let Some(prev) = bucket_index {
                    out.push((SimTime::from_minutes(prev * width.as_minutes()), sum));
                }
                bucket_index = Some(index);
                sum = 0.0;
            }
            sum += value;
        }
        if let Some(prev) = bucket_index {
            out.push((SimTime::from_minutes(prev * width.as_minutes()), sum));
        }
        out
    }

    /// The last value at or before `at`, if any (step interpolation).
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|(t, _)| t.cmp(&at)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut series = TimeSeries::new();
        for (at, value) in iter {
            series.push(at, value);
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_enforces_time_order() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_days(1), 1.0);
        s.push(SimTime::from_days(1), 2.0); // equal is fine
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_days(2), 1.0);
        s.push(SimTime::from_days(1), 2.0);
    }

    #[test]
    fn bucket_mean_and_sum() {
        let s: TimeSeries = (0..10u64)
            .map(|d| (SimTime::from_days(d), d as f64))
            .collect();
        let means = s.bucket_mean(SimDuration::from_days(5));
        assert_eq!(
            means,
            vec![(SimTime::ZERO, 2.0), (SimTime::from_days(5), 7.0),]
        );
        let sums = s.bucket_sum(SimDuration::from_days(5));
        assert_eq!(sums[0].1, 10.0);
        assert_eq!(sums[1].1, 35.0);
    }

    #[test]
    fn buckets_skip_gaps() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_days(0), 1.0);
        s.push(SimTime::from_days(20), 3.0);
        let means = s.bucket_mean(SimDuration::from_days(5));
        assert_eq!(means.len(), 2);
        assert_eq!(means[1].0, SimTime::from_days(20));
    }

    #[test]
    fn value_at_steps() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_days(1), 10.0);
        s.push(SimTime::from_days(5), 20.0);
        assert_eq!(s.value_at(SimTime::ZERO), None);
        assert_eq!(s.value_at(SimTime::from_days(1)), Some(10.0));
        assert_eq!(s.value_at(SimTime::from_days(3)), Some(10.0));
        assert_eq!(s.value_at(SimTime::from_days(9)), Some(20.0));
    }

    #[test]
    fn summary_of_series() {
        let s: TimeSeries = (0..5u64)
            .map(|d| (SimTime::from_days(d), d as f64))
            .collect();
        let sum = s.summary().unwrap();
        assert_eq!(sum.count, 5);
        assert_eq!(sum.mean, 2.0);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_panics() {
        let s = TimeSeries::new();
        let _ = s.bucket_mean(SimDuration::ZERO);
    }
}
