//! Aligned text tables and CSV writers for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use analysis::report::Table;
///
/// let mut table = Table::new(vec!["day", "density"]);
/// table.row(vec!["10".into(), "0.41".into()]);
/// table.row(vec!["20".into(), "0.83".into()]);
/// let text = table.render();
/// assert!(text.contains("density"));
/// assert!(text.contains("0.83"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with right-padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i + 1 < cols {
                    let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
                } else {
                    // Last column unpadded: no trailing whitespace.
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (no quoting — callers pass plain numbers
    /// and identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt_f64(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All value columns start at the same offset.
        let offset = lines[0].find("value").unwrap();
        assert_eq!(lines[2].len().min(offset), offset);
        assert!(lines[3].ends_with('2'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f64(0.83691, 4), "0.8369");
        assert_eq!(fmt_f64(2.0, 1), "2.0");
    }
}
