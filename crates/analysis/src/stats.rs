//! Summary statistics and least-squares regression.

use serde::{Deserialize, Serialize};

/// A five-number-plus summary of a sample.
///
/// # Examples
///
/// ```
/// use analysis::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).expect("non-empty");
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample variance (n−1 denominator; 0 for singletons).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (interpolated).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; `None` if it is empty or contains NaN.
    pub fn from_slice(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(Summary {
            count,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[count - 1],
        })
    }

    /// Coefficient of variation (`std_dev / mean`); `None` when the mean
    /// is zero.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev / self.mean.abs())
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, linearly interpolated.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile order out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&sorted, q)
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// An ordinary least-squares line fit `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a line to `(x, y)` pairs; `None` with fewer than two points or
    /// a degenerate (constant-x) design.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
        })
    }

    /// The fitted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::from_slice(&[]).is_none());
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_singleton() {
        let s = Summary::from_slice(&[3.0]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[1.0, 3.0]).unwrap();
        assert!(s.coefficient_of_variation().unwrap() > 0.0);
        let zero = Summary::from_slice(&[-1.0, 1.0]).unwrap();
        assert_eq!(zero.coefficient_of_variation(), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(LinearFit::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        // Constant y: slope 0, R² defined as 1 (perfect fit of a constant).
        let fit = LinearFit::fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
