//! Forecast quality of the Palimpsest time constant.
//!
//! §5.1.2: a Palimpsest application must schedule its own rejuvenation
//! from observed time constants; "unless the arrival rates are
//! predictable... an application might misinterpret the arrival rates and
//! wake up later than necessary, potentially losing the object to
//! reclamation". This module quantifies that risk: a rolling-mean
//! forecaster predicts the next window's time constant from history, and
//! the report measures both the relative error and — the dangerous
//! direction — how often the true turnover was *faster* than predicted
//! (the application oversleeps).

use serde::{Deserialize, Serialize};

use crate::stats::Summary;
use crate::time_constant::TimeConstantSeries;

/// Forecast-quality report for a time-constant series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// History windows used per forecast.
    pub history: usize,
    /// Forecasts evaluated.
    pub forecasts: usize,
    /// Mean absolute relative error `|τ̂ − τ| / τ`.
    pub mean_abs_rel_error: f64,
    /// 90th-percentile absolute relative error.
    pub p90_abs_rel_error: f64,
    /// Fraction of forecasts where the true time constant came in *below*
    /// the prediction — the window in which a rejuvenation scheduled from
    /// τ̂ arrives too late.
    pub oversleep_fraction: f64,
    /// Mean oversleep margin (relative) over oversleeping forecasts:
    /// how much sooner than predicted the storage actually turned over.
    pub mean_oversleep_margin: f64,
}

/// Evaluates a rolling-mean forecaster over a time-constant series: each
/// window's τ is predicted as the mean of the preceding `history`
/// windows. Returns `None` when the series is too short to produce any
/// forecast or `history` is zero.
///
/// # Examples
///
/// ```
/// use analysis::{predict, TimeConstantEstimator};
/// use sim_core::{ByteSize, SimDuration, SimTime};
///
/// // A perfectly constant arrival rate is perfectly predictable.
/// let arrivals: Vec<_> = (0..30u64)
///     .map(|d| (SimTime::from_days(d), ByteSize::from_gib(1)))
///     .collect();
/// let series = TimeConstantEstimator::new(ByteSize::from_gib(30), SimDuration::DAY)
///     .estimate(arrivals);
/// let report = predict::rolling_mean_report(&series, 5).expect("enough windows");
/// assert!(report.mean_abs_rel_error < 1e-9);
/// assert_eq!(report.oversleep_fraction, 0.0);
/// ```
pub fn rolling_mean_report(
    series: &TimeConstantSeries,
    history: usize,
) -> Option<PredictionReport> {
    if history == 0 || series.points.len() <= history {
        return None;
    }
    let taus: Vec<f64> = series.points.iter().map(|p| p.tau_days).collect();
    let mut abs_errors = Vec::new();
    let mut oversleeps = Vec::new();
    for i in history..taus.len() {
        let predicted: f64 = taus[i - history..i].iter().sum::<f64>() / history as f64;
        let actual = taus[i];
        if actual <= 0.0 {
            continue;
        }
        abs_errors.push((predicted - actual).abs() / actual);
        if actual < predicted {
            // The storage turned over sooner than the app expected.
            oversleeps.push((predicted - actual) / predicted);
        }
    }
    if abs_errors.is_empty() {
        return None;
    }
    let summary = Summary::from_slice(&abs_errors)?;
    let p90 = crate::stats::quantile(&abs_errors, 0.9);
    let oversleep_fraction = oversleeps.len() as f64 / abs_errors.len() as f64;
    let mean_oversleep_margin = if oversleeps.is_empty() {
        0.0
    } else {
        oversleeps.iter().sum::<f64>() / oversleeps.len() as f64
    };
    Some(PredictionReport {
        history,
        forecasts: abs_errors.len(),
        mean_abs_rel_error: summary.mean,
        p90_abs_rel_error: p90,
        oversleep_fraction,
        mean_oversleep_margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time_constant::TimeConstantEstimator;
    use sim_core::{ByteSize, SimDuration, SimTime};

    fn series_from_daily_gib(volumes: &[u64]) -> TimeConstantSeries {
        let arrivals: Vec<_> = volumes
            .iter()
            .enumerate()
            .map(|(d, &gib)| (SimTime::from_days(d as u64), ByteSize::from_gib(gib)))
            .collect();
        TimeConstantEstimator::new(ByteSize::from_gib(100), SimDuration::DAY).estimate(arrivals)
    }

    #[test]
    fn constant_rate_is_perfectly_predictable() {
        let series = series_from_daily_gib(&[5; 40]);
        let report = rolling_mean_report(&series, 7).unwrap();
        assert!(report.mean_abs_rel_error < 1e-12);
        assert_eq!(report.oversleep_fraction, 0.0);
        assert_eq!(report.mean_oversleep_margin, 0.0);
        assert_eq!(report.forecasts, 40 - 7);
    }

    #[test]
    fn accelerating_rate_causes_oversleep() {
        // Volume doubles every 10 days: τ keeps shrinking, so a rolling
        // mean of past τ always over-estimates — the app oversleeps on
        // (almost) every forecast.
        let volumes: Vec<u64> = (0..40).map(|d| 2 + d / 5).collect();
        let series = series_from_daily_gib(&volumes);
        let report = rolling_mean_report(&series, 7).unwrap();
        assert!(
            report.oversleep_fraction > 0.8,
            "oversleep fraction {:.2}",
            report.oversleep_fraction
        );
        assert!(report.mean_oversleep_margin > 0.0);
    }

    #[test]
    fn bursty_rate_has_large_errors() {
        let volumes: Vec<u64> = (0..60).map(|d| if d % 2 == 0 { 1 } else { 20 }).collect();
        let series = series_from_daily_gib(&volumes);
        let report = rolling_mean_report(&series, 3).unwrap();
        assert!(
            report.mean_abs_rel_error > 0.5,
            "error {:.2}",
            report.mean_abs_rel_error
        );
        assert!(report.p90_abs_rel_error >= report.mean_abs_rel_error);
    }

    #[test]
    fn longer_history_smooths_bursty_noise() {
        let volumes: Vec<u64> = (0..120).map(|d| if d % 2 == 0 { 4 } else { 8 }).collect();
        let series = series_from_daily_gib(&volumes);
        let short = rolling_mean_report(&series, 1).unwrap();
        let long = rolling_mean_report(&series, 30).unwrap();
        assert!(
            long.mean_abs_rel_error < short.mean_abs_rel_error,
            "long {:.3} vs short {:.3}",
            long.mean_abs_rel_error,
            short.mean_abs_rel_error
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let series = series_from_daily_gib(&[5; 3]);
        assert!(rolling_mean_report(&series, 0).is_none());
        assert!(rolling_mean_report(&series, 3).is_none());
        assert!(rolling_mean_report(&series, 10).is_none());
    }
}
