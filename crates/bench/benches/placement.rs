//! Benchmarks of the §5.3 distributed placement path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sim_core::{rng, ByteSize, SimTime};

use bench_harness::incoming_spec;
use besteffs::{Besteffs, PlacementConfig};

fn loaded_cluster(nodes: usize, config: PlacementConfig) -> Besteffs {
    let mut rand = rng::seeded(42);
    let mut cluster = Besteffs::builder(nodes, ByteSize::from_gib(1))
        .placement(config)
        .build(&mut rand);
    // Half-fill so placements mix direct stores and preemption probes.
    let mut id = 1_000_000u64;
    for _ in 0..nodes * 5 {
        id += 1;
        let _ = cluster.place(incoming_spec(id, 100), SimTime::ZERO, &mut rand);
    }
    cluster
}

fn bench_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("besteffs_place");
    for (nodes, x) in [(100usize, 4usize), (100, 16), (1000, 8)] {
        let config = PlacementConfig {
            candidates_per_try: x,
            max_tries: 3,
            walk_steps: 10,
        };
        group.bench_function(format!("{nodes}_nodes_x{x}"), |b| {
            b.iter_batched(
                || (loaded_cluster(nodes, config), rng::seeded(7), 0u64),
                |(mut cluster, mut rand, _)| {
                    let _ = cluster.place(incoming_spec(0, 100), SimTime::ZERO, &mut rand);
                    cluster
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_random_walks(c: &mut Criterion) {
    let mut rand = rng::seeded(3);
    let overlay = besteffs::Overlay::random(2000, 6, &mut rand);
    c.bench_function("overlay_random_walk/2000_nodes_10_steps", |b| {
        b.iter(|| overlay.random_walk(besteffs::NodeId::new(0), 10, &mut rand))
    });
}

criterion_group!(benches, bench_place, bench_random_walks);
criterion_main!(benches);
