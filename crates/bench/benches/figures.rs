//! One bench per paper table/figure: times the full regeneration of each
//! artifact at a reduced (CI-friendly) horizon. `cargo bench` therefore
//! both exercises and times every experiment end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures;

const SEED: u64 = experiments::DEFAULT_SEED;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig2_storage_requirements", |b| {
        b.iter(|| figures::fig2(SEED))
    });
    group.bench_function("fig3_lifetimes_achieved", |b| {
        b.iter(|| figures::fig3(SEED, 365))
    });
    group.bench_function("fig4_requests_turned_down", |b| {
        b.iter(|| figures::fig4(SEED, 365))
    });
    group.bench_function("fig5_time_constant", |b| {
        b.iter(|| figures::fig5(SEED, 365))
    });
    group.bench_function("fig6_importance_density", |b| {
        b.iter(|| figures::fig6(SEED, 365))
    });
    group.bench_function("fig7_byte_importance_cdf", |b| {
        b.iter(|| figures::fig7(SEED, 365))
    });
    group.bench_function("table1_lecture_lifetimes", |b| b.iter(figures::table1));
    group.bench_function("fig8_lecture_downloads", |b| b.iter(|| figures::fig8(SEED)));
    group.bench_function("fig9_lecture_lifetimes", |b| {
        b.iter(|| figures::fig9(SEED, 2))
    });
    group.bench_function("fig10_importance_at_reclamation", |b| {
        b.iter(|| figures::fig10(SEED, 2))
    });
    group.bench_function("fig11_lecture_time_constant", |b| {
        b.iter(|| figures::fig11(SEED, 2))
    });
    group.bench_function("fig12_lecture_density", |b| {
        b.iter(|| figures::fig12(SEED, 2))
    });
    group.bench_function("sec53_university_wide", |b| {
        b.iter(|| figures::sec53(SEED, 1, 100))
    });
    group.bench_function("ablate_decay", |b| {
        b.iter(|| figures::ablate_decay(SEED, 365))
    });
    group.bench_function("ablate_placement", |b| {
        b.iter(|| figures::ablate_placement(SEED))
    });
    group.bench_function("sec6_sensor", |b| b.iter(|| figures::sec6_sensor(SEED)));
    group.bench_function("fairness", |b| b.iter(|| figures::fairness(SEED)));
    group.bench_function("advisor", |b| b.iter(|| figures::advisor(SEED, 365)));
    group.bench_function("mixed_apps", |b| b.iter(|| figures::mixed_apps(SEED, 200)));
    group.bench_function("predictability", |b| {
        b.iter(|| figures::predictability(SEED, 365))
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
