//! Benchmarks of the storage-importance-density metric (Figures 6/7/12's
//! per-sample cost).

use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::{ByteSize, SimTime};

use bench_harness::mixed_unit;

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("importance_density");
    for residents in [100u64, 400, 1600] {
        let unit = mixed_unit(ByteSize::from_mib(residents * 10), residents, 10);
        group.bench_function(format!("{residents}_residents"), |b| {
            b.iter(|| unit.importance_density(SimTime::from_days(5)))
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let unit = mixed_unit(ByteSize::from_mib(4000), 400, 10);
    c.bench_function("byte_importance_histogram/400_residents", |b| {
        b.iter(|| unit.byte_importance_histogram(SimTime::from_days(5)))
    });
}

fn bench_snapshot_cdf(c: &mut Criterion) {
    let unit = mixed_unit(ByteSize::from_mib(4000), 400, 10);
    let snapshot = unit.density_snapshot(SimTime::from_days(5));
    c.bench_function("density_snapshot_cdf/400_residents", |b| {
        b.iter(|| snapshot.byte_cdf())
    });
}

criterion_group!(benches, bench_density, bench_histogram, bench_snapshot_cdf);
criterion_main!(benches);
