//! Microbenchmarks of the reclamation engine's hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sim_core::{ByteSize, SimTime};
use temporal_importance::{EvictionPolicy, Importance, StorageUnit};

use bench_harness::{incoming_spec, mixed_unit};

fn bench_store_free_space(c: &mut Criterion) {
    c.bench_function("store/into_free_space", |b| {
        b.iter_batched(
            || {
                let mut unit = StorageUnit::new(ByteSize::from_gib(10));
                unit.set_recording(false);
                unit
            },
            |mut unit| {
                unit.store(incoming_spec(0, 64), SimTime::ZERO).unwrap();
                unit
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_store_with_preemption(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/with_preemption");
    for residents in [100u64, 400, 1600] {
        group.bench_function(format!("{residents}_residents"), |b| {
            let capacity = ByteSize::from_mib(residents * 10);
            b.iter_batched(
                || mixed_unit(capacity, residents, 10),
                |mut unit| {
                    // Forces a plan over all residents plus an eviction.
                    unit.store(incoming_spec(u64::MAX, 30), SimTime::ZERO)
                        .unwrap();
                    unit
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_peek_admission(c: &mut Criterion) {
    let unit = mixed_unit(ByteSize::from_mib(4000), 400, 10);
    c.bench_function("peek_admission/400_residents", |b| {
        b.iter(|| {
            unit.peek_admission(
                ByteSize::from_mib(30),
                Importance::new_clamped(0.9),
                SimTime::ZERO,
            )
        })
    });
}

fn bench_fifo_store(c: &mut Criterion) {
    c.bench_function("store/fifo_eviction_400_residents", |b| {
        b.iter_batched(
            || {
                let mut unit =
                    StorageUnit::with_policy(ByteSize::from_mib(4000), EvictionPolicy::Fifo);
                unit.set_recording(false);
                for i in 0..400 {
                    unit.store(incoming_spec(i, 10), SimTime::ZERO).unwrap();
                }
                unit
            },
            |mut unit| {
                unit.store(incoming_spec(u64::MAX, 30), SimTime::from_minutes(1))
                    .unwrap();
                unit
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_store_free_space,
    bench_store_with_preemption,
    bench_peek_admission,
    bench_fifo_store
);
criterion_main!(benches);
