//! Microbenchmarks of the reclamation engine's hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sim_core::{ByteSize, SimTime};
use temporal_importance::{EvictionPolicy, Importance, StorageUnit};

use bench_harness::{incoming_spec, mixed_unit, mixed_unit_naive};

fn bench_store_free_space(c: &mut Criterion) {
    c.bench_function("store/into_free_space", |b| {
        b.iter_batched(
            || {
                let mut unit = StorageUnit::new(ByteSize::from_gib(10));
                unit.set_recording(false);
                unit
            },
            |mut unit| {
                unit.store(incoming_spec(0, 64), SimTime::ZERO).unwrap();
                unit
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_store_with_preemption(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/with_preemption");
    for residents in [100u64, 400, 1600] {
        group.bench_function(format!("{residents}_residents"), |b| {
            let capacity = ByteSize::from_mib(residents * 10);
            b.iter_batched(
                || mixed_unit(capacity, residents, 10),
                |mut unit| {
                    // Forces a plan over all residents plus an eviction.
                    unit.store(incoming_spec(u64::MAX, 30), SimTime::ZERO)
                        .unwrap();
                    unit
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_peek_admission(c: &mut Criterion) {
    let unit = mixed_unit(ByteSize::from_mib(4000), 400, 10);
    c.bench_function("peek_admission/400_residents", |b| {
        b.iter(|| {
            unit.peek_admission(
                ByteSize::from_mib(30),
                Importance::new_clamped(0.9),
                SimTime::ZERO,
            )
        })
    });
}

fn bench_fifo_store(c: &mut Criterion) {
    c.bench_function("store/fifo_eviction_400_residents", |b| {
        b.iter_batched(
            || {
                let mut unit = StorageUnit::builder(ByteSize::from_mib(4000))
                    .policy(EvictionPolicy::Fifo)
                    .build();
                unit.set_recording(false);
                for i in 0..400 {
                    unit.store(incoming_spec(i, 10), SimTime::ZERO).unwrap();
                }
                unit
            },
            |mut unit| {
                unit.store(incoming_spec(u64::MAX, 30), SimTime::from_minutes(1))
                    .unwrap();
                unit
            },
            BatchSize::SmallInput,
        )
    });
}

/// Sustained store churn at 10k/100k residents: every store of a
/// same-sized full-importance object preempts exactly one victim, so the
/// resident count stays constant and each iteration exercises the whole
/// admission plan. The `_naive` variants run the scan-everything oracle
/// for comparison.
fn bench_store_churn_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/churn");
    group.measurement_time(std::time::Duration::from_millis(250));
    // Each measured store consumes one preemptible resident; keep the
    // iteration cap (sample_size × 100) well inside the 10k fixture pool.
    group.sample_size(20);
    for residents in [10_000u64, 100_000] {
        for naive in [false, true] {
            let label = format!(
                "{residents}_residents_{}",
                if naive { "naive" } else { "indexed" }
            );
            group.bench_function(label, |b| {
                let capacity = ByteSize::from_mib(residents * 10);
                let mut unit = if naive {
                    mixed_unit_naive(capacity, residents, 10)
                } else {
                    mixed_unit(capacity, residents, 10)
                };
                let mut next_id = residents;
                let mut minute = 0u64;
                b.iter(|| {
                    next_id += 1;
                    minute += 1;
                    unit.store(incoming_spec(next_id, 10), SimTime::from_minutes(minute))
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

/// Admission probes (the §5.3 placement RPC) at 10k/100k residents.
fn bench_peek_admission_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("peek_admission");
    group.measurement_time(std::time::Duration::from_millis(250));
    for residents in [10_000u64, 100_000] {
        for naive in [false, true] {
            let label = format!(
                "{residents}_residents_{}",
                if naive { "naive" } else { "indexed" }
            );
            group.bench_function(label, |b| {
                let capacity = ByteSize::from_mib(residents * 10);
                let unit = if naive {
                    mixed_unit_naive(capacity, residents, 10)
                } else {
                    mixed_unit(capacity, residents, 10)
                };
                b.iter(|| {
                    unit.peek_admission(
                        ByteSize::from_mib(30),
                        Importance::new_clamped(0.9),
                        SimTime::ZERO,
                    )
                })
            });
        }
    }
    group.finish();
}

/// Repeated density sampling at an advancing clock — the dashboard /
/// feedback-signal loop. The indexed engine answers from the O(1)
/// incremental accumulators; the naive engine rescans every resident.
fn bench_density_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("importance_density");
    group.measurement_time(std::time::Duration::from_millis(250));
    for residents in [10_000u64, 100_000] {
        for naive in [false, true] {
            let label = format!(
                "{residents}_residents_{}",
                if naive { "naive" } else { "indexed" }
            );
            group.bench_function(label, |b| {
                let capacity = ByteSize::from_mib(residents * 10);
                let mut unit = if naive {
                    mixed_unit_naive(capacity, residents, 10)
                } else {
                    mixed_unit(capacity, residents, 10)
                };
                let mut minute = 0u64;
                b.iter(|| {
                    minute += 1;
                    let now = SimTime::from_minutes(minute);
                    unit.advance(now);
                    unit.importance_density(now)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_store_free_space,
    bench_store_with_preemption,
    bench_peek_admission,
    bench_fifo_store,
    bench_store_churn_large,
    bench_peek_admission_large,
    bench_density_sampling
);
criterion_main!(benches);
