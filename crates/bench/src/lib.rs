//! Shared fixtures for the Criterion benches and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;

use sim_core::{ByteSize, SimDuration, SimTime};
use temporal_importance::{
    EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit,
};

/// Builds a unit pre-filled with `count` objects of `mib` MiB whose fixed
/// importance cycles through ten levels — a representative mixed-pressure
/// state for eviction/density benchmarks.
pub fn mixed_unit(capacity: ByteSize, count: u64, mib: u64) -> StorageUnit {
    let mut unit = StorageUnit::new(capacity);
    fill_mixed(&mut unit, count, mib);
    unit
}

/// The same fixture on the naive scan-everything engine
/// (`StorageUnit::builder(..).naive_oracle(true)`) — the baseline the indexed engine
/// is benchmarked against.
pub fn mixed_unit_naive(capacity: ByteSize, count: u64, mib: u64) -> StorageUnit {
    let mut unit = StorageUnit::builder(capacity)
        .policy(EvictionPolicy::Preemptive)
        .naive_oracle(true)
        .build();
    fill_mixed(&mut unit, count, mib);
    unit
}

fn fill_mixed(unit: &mut StorageUnit, count: u64, mib: u64) {
    unit.set_recording(false);
    for i in 0..count {
        let importance = Importance::new_clamped(0.05 + (i % 10) as f64 * 0.1);
        let spec = ObjectSpec::new(
            ObjectId::new(i),
            ByteSize::from_mib(mib),
            ImportanceCurve::Fixed {
                importance,
                expiry: SimDuration::from_days(3650),
            },
        );
        unit.store(spec, SimTime::ZERO).expect("fixture fits");
    }
}

/// A full-importance two-step spec used as the "incoming" object in
/// benchmarks.
pub fn incoming_spec(id: u64, mib: u64) -> ObjectSpec {
    ObjectSpec::new(
        ObjectId::new(id),
        ByteSize::from_mib(mib),
        ImportanceCurve::two_step(
            Importance::FULL,
            SimDuration::from_days(15),
            SimDuration::from_days(15),
        ),
    )
}

pub mod gate;
pub mod servetop;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_unit_fixture_is_full_enough_to_force_eviction() {
        let unit = mixed_unit(ByteSize::from_mib(1000), 100, 10);
        assert_eq!(unit.len(), 100);
        assert_eq!(unit.free(), ByteSize::ZERO);
    }

    #[test]
    fn incoming_spec_has_full_initial_importance() {
        let spec = incoming_spec(1, 10);
        assert_eq!(spec.curve().initial_importance(), Importance::FULL);
    }
}
