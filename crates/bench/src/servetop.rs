//! Rendering and capture helpers behind `tempimp-obs serve-top` and
//! `bench_serve --snapshots`: turn a [`HealthSnapshot`] into a refreshing
//! per-shard text frame, and collect the worker-emitted `serve.slow`
//! trace events into a bounded slow-request log.
//!
//! Everything here is read-side only — frames are rendered from `health`
//! verb answers and observer events, never by reaching into the service —
//! so the same code renders a live service, an `obs-off` build (every
//! latency column honestly prints `n/a`), or frames replayed from a
//! `--snapshots` capture file.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use sim_core::SimTime;
use temporal_importance::protocol::{HealthSnapshot, VerbKind};

/// The form-feed separator between frames in a `--snapshots` capture
/// file; [`split_frames`] reads it back.
pub const FRAME_SEPARATOR: char = '\u{c}';

/// Splits a `--snapshots` capture into its individual frames, dropping
/// empty fragments (a trailing separator is fine).
pub fn split_frames(capture: &str) -> Vec<&str> {
    capture
        .split(FRAME_SEPARATOR)
        .map(|frame| frame.trim_matches('\n'))
        .filter(|frame| !frame.is_empty())
        .collect()
}

fn mib(bytes: u64) -> u64 {
    bytes >> 20
}

/// Renders one serve-top frame: a header line, the per-shard table, and
/// the per-verb latency block. `elapsed` is wall time since the capture
/// started; `prev` (the previous frame's snapshot and its elapsed)
/// enables the per-shard request-rate column.
///
/// Latency columns print `n/a` for verbs without samples — in an
/// `obs-off` build that is every verb, and the frame still renders.
pub fn render_frame(
    health: &HealthSnapshot,
    elapsed: Duration,
    prev: Option<(&HealthSnapshot, Duration)>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve-top  t={:.1}s  shards={}  reqs={}  depth={}  rejected={}\n",
        elapsed.as_secs_f64(),
        health.shards.len(),
        health.total_requests(),
        health.total_queue_depth(),
        health.shards.iter().map(|s| s.rejected).sum::<u64>(),
    ));
    out.push_str(
        "shard  clock(min)  resident   used(MiB)  depth  rej       reqs  batches    req/s\n",
    );
    for shard in &health.shards {
        let rate = prev
            .and_then(|(snapshot, at)| {
                let before = snapshot.shards.iter().find(|p| p.shard == shard.shard)?;
                let dt = elapsed.checked_sub(at)?.as_secs_f64();
                (dt > 0.0).then(|| (shard.requests.saturating_sub(before.requests)) as f64 / dt)
            })
            .map(|rate| format!("{rate:>8.0}"))
            .unwrap_or_else(|| format!("{:>8}", "-"));
        out.push_str(&format!(
            "{:>5}  {:>10}  {:>8}  {:>4}/{:<5}  {:>5}  {:>3}  {:>9}  {:>7}  {rate}\n",
            shard.shard,
            shard.clock.as_minutes(),
            shard.residents,
            mib(shard.used.as_bytes()),
            mib(shard.capacity.as_bytes()),
            shard.queue_depth,
            shard.rejected,
            shard.requests,
            shard.batches,
        ));
    }
    out.push_str("per-verb latency, worst shard (ns):\n");
    out.push_str("verb       samples  qwait p50  qwait p99    svc p50    svc p99\n");
    for verb in VerbKind::ALL {
        // Pool the sample counts; report each quantile's maximum across
        // shards (the honest cross-shard aggregate of bucketed
        // quantiles: a conservative tail, never an invented average).
        let mut samples = 0u64;
        let mut worst = [0u64; 4];
        for shard in &health.shards {
            for latency in shard.latencies.iter().filter(|l| l.verb == verb) {
                samples += latency.samples;
                for (slot, value) in worst.iter_mut().zip([
                    latency.queue_wait_p50_ns,
                    latency.queue_wait_p99_ns,
                    latency.service_p50_ns,
                    latency.service_p99_ns,
                ]) {
                    *slot = (*slot).max(value);
                }
            }
        }
        if samples == 0 {
            out.push_str(&format!("{:<9}  {:>7}\n", verb.name(), "n/a"));
        } else {
            out.push_str(&format!(
                "{:<9}  {samples:>7}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                verb.name(),
                worst[0],
                worst[1],
                worst[2],
                worst[3],
            ));
        }
    }
    out
}

/// One captured slow request, decoded from a `serve.slow` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowEntry {
    /// Simulated instant the worker processed the request at.
    pub at: SimTime,
    /// The shard that served it.
    pub shard: u64,
    /// The request's verb.
    pub verb: VerbKind,
    /// The request's service-unique id.
    pub id: u64,
    /// Nanoseconds spent queued (enqueue → apply).
    pub queue_ns: u64,
    /// Nanoseconds spent in the engine call.
    pub service_ns: u64,
    /// Total in-service nanoseconds.
    pub total_ns: u64,
}

/// A bounded, thread-safe slow-request log: an [`Observer`] that keeps
/// the most recent `serve.slow` events (all other signals pass through
/// untouched — stack it next to a registry with [`obs::Fanout`]).
///
/// [`Observer`]: obs::Observer
#[derive(Debug)]
pub struct SlowLog {
    entries: Mutex<VecDeque<SlowEntry>>,
    capacity: usize,
}

impl SlowLog {
    /// A log retaining the most recent `capacity` slow requests.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// The captured entries, oldest first.
    ///
    /// A poisoned lock is fine to read through: every mutation keeps the
    /// deque structurally valid (the panic that poisoned it happened on
    /// some other observer's stack, not mid-push), and a diagnostics log
    /// losing its tail to a worker panic would hide exactly the evidence
    /// the panic investigation needs.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    /// Renders the newest `limit` entries as table lines (newest last),
    /// or a single placeholder line when nothing was slow.
    pub fn render_tail(&self, limit: usize) -> String {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.is_empty() {
            return "slow requests: none\n".to_string();
        }
        let mut out = format!(
            "slow requests (last {} of {}):\n",
            limit.min(entries.len()),
            entries.len()
        );
        for entry in entries.iter().rev().take(limit).rev() {
            out.push_str(&format!(
                "  id {:>8}  {:<7}  shard {:>2}  queue {:>10} ns  service {:>10} ns  total {:>10} ns\n",
                entry.id,
                entry.verb.name(),
                entry.shard,
                entry.queue_ns,
                entry.service_ns,
                entry.total_ns,
            ));
        }
        out
    }
}

impl obs::Observer for SlowLog {
    fn counter(&self, _name: &'static str, _delta: u64) {}

    fn gauge(&self, _name: &'static str, _value: u64) {}

    fn record(&self, _name: &'static str, _value: u64) {}

    fn event(&self, at: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
        if kind != "serve.slow" {
            return;
        }
        let field = |name: &str| {
            fields
                .iter()
                .find(|(key, _)| *key == name)
                .map(|&(_, value)| value)
                .unwrap_or(0)
        };
        let verb = usize::try_from(field("verb"))
            .ok()
            .and_then(|code| VerbKind::ALL.get(code).copied())
            .unwrap_or(VerbKind::Stats);
        let entry = SlowEntry {
            at,
            shard: field("shard"),
            verb,
            id: field("id"),
            queue_ns: field("queue_ns"),
            service_ns: field("service_ns"),
            total_ns: field("total_ns"),
        };
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }
}

/// `true` when the attached observer stack would actually receive the
/// serve trace signals — `false` under `obs-off`, letting callers print
/// an upfront notice instead of a silently all-`n/a` view.
pub fn tracing_compiled_in() -> bool {
    // Obs::none() vs an attached observer differ only at runtime; the
    // feature decides whether emission exists at all.
    !cfg!(feature = "obs-off")
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Observer;
    use sim_core::ByteSize;
    use std::sync::Arc;
    use temporal_importance::protocol::{ShardHealth, VerbLatency};

    fn snapshot(requests: u64, with_latency: bool) -> HealthSnapshot {
        HealthSnapshot {
            shards: vec![ShardHealth {
                shard: 0,
                clock: SimTime::from_minutes(120),
                residents: 42,
                used: ByteSize::from_mib(64),
                capacity: ByteSize::from_mib(256),
                queue_depth: 3,
                requests,
                batches: 10,
                rejected: 1,
                latencies: if with_latency {
                    vec![VerbLatency {
                        verb: VerbKind::Put,
                        samples: 99,
                        queue_wait_p50_ns: 1_000,
                        queue_wait_p99_ns: 9_000,
                        service_p50_ns: 2_000,
                        service_p99_ns: 8_000,
                    }]
                } else {
                    Vec::new()
                },
            }],
        }
    }

    #[test]
    fn frames_render_shard_rows_and_latency_columns() {
        let frame = render_frame(&snapshot(100, true), Duration::from_secs(2), None);
        assert!(frame.contains("shards=1"));
        assert!(frame.contains("reqs=100"));
        assert!(frame.contains("depth=3"));
        assert!(frame.contains("rejected=1"));
        // The put verb has samples, every other verb prints n/a.
        assert!(frame.contains("put"));
        assert!(frame.contains("9000"));
        assert!(frame.contains("n/a"));
        // No previous frame: the rate column is a dash.
        assert!(frame.contains("-"));
    }

    #[test]
    fn inert_snapshots_render_all_latency_columns_as_na() {
        let frame = render_frame(&snapshot(0, false), Duration::ZERO, None);
        for verb in VerbKind::ALL {
            assert!(frame.contains(verb.name()));
        }
        assert_eq!(
            frame.matches("n/a").count(),
            VerbKind::ALL.len(),
            "every verb row is n/a on an inert snapshot"
        );
    }

    #[test]
    fn rates_derive_from_the_previous_frame() {
        let before = snapshot(100, false);
        let after = snapshot(300, false);
        let frame = render_frame(
            &after,
            Duration::from_secs(3),
            Some((&before, Duration::from_secs(1))),
        );
        // 200 requests over 2 seconds.
        assert!(
            frame.contains("100"),
            "rate column shows 100 req/s: {frame}"
        );
    }

    #[test]
    fn capture_files_split_back_into_frames() {
        let capture = format!("frame-one\n{FRAME_SEPARATOR}frame-two\n{FRAME_SEPARATOR}");
        let frames = split_frames(&capture);
        assert_eq!(frames, vec!["frame-one", "frame-two"]);
        assert!(split_frames("").is_empty());
    }

    #[test]
    fn slow_log_captures_only_serve_slow_and_bounds_itself() {
        let log = Arc::new(SlowLog::new(2));
        log.event(
            SimTime::ZERO,
            "serve.batch",
            &[("shard", 0), ("drained", 5)],
        );
        assert!(log.entries().is_empty());
        assert!(log.render_tail(5).contains("none"));
        for id in 0..3u64 {
            log.event(
                SimTime::from_minutes(id),
                "serve.slow",
                &[
                    ("shard", 1),
                    ("verb", VerbKind::Get.code()),
                    ("id", id),
                    ("queue_ns", 10),
                    ("service_ns", 20),
                    ("total_ns", 30),
                ],
            );
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "capacity bounds the log");
        assert_eq!(entries[0].id, 1, "oldest entry was evicted");
        assert_eq!(entries[1].verb, VerbKind::Get);
        assert_eq!(entries[1].total_ns, 30);
        let tail = log.render_tail(1);
        assert_eq!(tail.lines().count(), 2, "header plus one entry");
        assert!(tail.contains("get"));
        assert!(tail.contains("total"));
    }

    #[test]
    fn slow_log_survives_a_poisoned_lock() {
        let log = Arc::new(SlowLog::new(4));
        log.event(
            SimTime::ZERO,
            "serve.slow",
            &[("shard", 0), ("verb", VerbKind::Put.code()), ("id", 7)],
        );
        // Poison the mutex the way a real service does: some thread
        // panics while holding it. The log must keep reading and
        // recording — a crashed worker is precisely when the slow-request
        // evidence matters most.
        let poisoner = Arc::clone(&log);
        std::thread::spawn(move || {
            let _guard = poisoner.entries.lock().unwrap();
            panic!("deliberate poison");
        })
        .join()
        .unwrap_err();
        assert!(log.entries.is_poisoned());

        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.entries()[0].id, 7);
        assert!(log.render_tail(5).contains("put"));
        log.event(
            SimTime::from_minutes(1),
            "serve.slow",
            &[("shard", 1), ("verb", VerbKind::Get.code()), ("id", 8)],
        );
        assert_eq!(log.entries().len(), 2, "recording continues after poison");
    }
}
