//! The golden observability workload.
//!
//! One seeded engine run whose [`TraceSink`] output is pinned byte-for-byte
//! by `tests/golden_trace.rs` (against `tests/golden/engine_trace.jsonl`)
//! and regenerable on demand by `tempimp-obs golden`. Keeping the
//! generator here — in one place — guarantees the integration test, the
//! CLI, and CI all replay the *same* workload, so a divergence between any
//! two of them is a real determinism break, never a fixture drift.
//!
//! The workload fills a 2000 MiB unit with 1000 resident objects (mixed
//! two-step / fixed / fixed-lifetime curves), then attaches the sink and
//! traces a 256-store churn burst spread over 32 simulated days. The sink
//! attaches only after the fill so the golden file stays small while still
//! covering stores, rejections, preemptions, expiries, and breakpoint
//! advancement.

use std::sync::Arc;

use rand::Rng;
use sim_core::{rng, ByteSize, Obs, SimDuration, SimTime};
use temporal_importance::{Importance, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit};

/// Workload seed. Changing it re-rolls every golden artifact.
pub const SEED: u64 = 4242;
/// Objects stored before the sink attaches.
pub const RESIDENTS: u64 = 1_000;
/// Traced churn stores.
pub const CHURN_STORES: u64 = 256;

/// A 1–4 MiB object whose curve family cycles with `id % 3` — public so
/// the durable-backend differential tests can drive the *same* workload
/// the golden trace pins through a journaled unit.
pub fn mixed_spec(rng: &mut impl Rng, id: u64) -> ObjectSpec {
    let mib = rng.gen_range(1..=4);
    let curve = match id % 3 {
        0 => ImportanceCurve::two_step(
            Importance::new(rng.gen_range(0.2..=1.0)).unwrap(),
            SimDuration::from_days(rng.gen_range(5..40)),
            SimDuration::from_days(rng.gen_range(5..40)),
        ),
        1 => ImportanceCurve::Fixed {
            importance: Importance::new(rng.gen_range(0.1..0.9)).unwrap(),
            expiry: SimDuration::from_days(rng.gen_range(10..90)),
        },
        _ => ImportanceCurve::fixed_lifetime(SimDuration::from_days(rng.gen_range(20..60))),
    };
    ObjectSpec::new(ObjectId::new(id), ByteSize::from_mib(mib), curve)
}

/// Fills a unit to steady state, then traces a burst of churn stores and
/// returns the sink's JSONL. Byte-identical on every call, every
/// platform, every build profile — that is the contract the golden test
/// pins.
pub fn trace_run() -> String {
    let mut rand = rng::seeded(SEED);
    let mut unit = StorageUnit::builder(ByteSize::from_mib(2_000))
        .recording(false)
        .build();
    for id in 0..RESIDENTS {
        let _ = unit.store(mixed_spec(&mut rand, id), SimTime::ZERO);
    }

    let sink = Arc::new(obs::TraceSink::new());
    unit.set_observer(Obs::attached(sink.clone()));
    for k in 0..CHURN_STORES {
        let now = SimTime::from_days(30 + k / 8);
        unit.advance(now);
        let _ = unit.store(mixed_spec(&mut rand, RESIDENTS + k), now);
    }
    sink.to_jsonl()
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn the_golden_workload_is_deterministic() {
        let first = trace_run();
        assert!(!first.is_empty());
        assert_eq!(first, trace_run());
    }
}
