//! `bench_gate` — fails CI when the indexed engine regresses.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline BENCH_engine.json --fresh fresh.json \
//!            [--tolerance 0.25] [--min-delta-ns 100] \
//!            [--residents N] [--max-obs-overhead 0.20] \
//!            [--require-verb-latency]
//! ```
//!
//! Exits 0 when every case of the fresh report is within `tolerance`
//! (default 25%) of the baseline's `indexed_ns_per_op` and
//! `bytes_per_resident`, 1 when any case regressed (or disappeared), and
//! 2 on usage or parse errors. Slowdowns whose absolute delta is below
//! `--min-delta-ns` (default 100) are treated as shared-runner noise.
//!
//! `--residents N` restricts both reports to one fixture size, matching a
//! `bench_engine --residents N` run, so a CI matrix can gate sizes in
//! parallel jobs. `--max-obs-overhead F` additionally fails the gate when
//! the fresh report's instrumented churn (`store_churn_observed`) costs
//! more than `F` (a fraction, e.g. `0.20`) over plain `store_churn`.
//! `--require-verb-latency` (for `bench_serve` reports) fails the gate
//! when the fresh report carries no sane per-verb queue-wait/service
//! rows — catching a serve build whose request tracing silently stopped
//! sampling. Latency *values* are not gated; they are runner-dependent.

use std::process::ExitCode;

use bench_harness::gate::{
    check_verb_latencies, compare, obs_overheads, parse_report, parse_verb_latencies,
};

struct Options {
    baseline: String,
    fresh: String,
    tolerance: f64,
    min_delta_ns: f64,
    residents: Option<u64>,
    max_obs_overhead: Option<f64>,
    require_verb_latency: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        baseline: "BENCH_engine.json".to_string(),
        fresh: String::new(),
        tolerance: 0.25,
        min_delta_ns: 100.0,
        residents: None,
        max_obs_overhead: None,
        require_verb_latency: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--baseline" => options.baseline = value("--baseline")?,
            "--fresh" => options.fresh = value("--fresh")?,
            "--tolerance" => {
                let raw = value("--tolerance")?;
                options.tolerance = raw
                    .parse()
                    .map_err(|_| format!("invalid tolerance '{raw}'"))?;
            }
            "--min-delta-ns" => {
                let raw = value("--min-delta-ns")?;
                options.min_delta_ns = raw
                    .parse()
                    .map_err(|_| format!("invalid min delta '{raw}'"))?;
            }
            "--residents" => {
                let raw = value("--residents")?;
                options.residents = Some(
                    raw.parse()
                        .map_err(|_| format!("invalid resident count '{raw}'"))?,
                );
            }
            "--max-obs-overhead" => {
                let raw = value("--max-obs-overhead")?;
                options.max_obs_overhead = Some(
                    raw.parse()
                        .map_err(|_| format!("invalid obs overhead '{raw}'"))?,
                );
            }
            "--require-verb-latency" => options.require_verb_latency = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate --baseline BASE.json --fresh FRESH.json \
                     [--tolerance 0.25] [--min-delta-ns 100] \
                     [--residents N] [--max-obs-overhead 0.20] \
                     [--require-verb-latency]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if options.fresh.is_empty() {
        return Err("--fresh is required (path to the freshly measured report)".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<_, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut cases = parse_report(&raw).map_err(|e| format!("{path}: {e}"))?;
        if let Some(residents) = options.residents {
            cases.retain(|c| c.residents == residents);
            if cases.is_empty() {
                return Err(format!("{path}: no cases at {residents} residents"));
            }
        }
        Ok(cases)
    };
    let (baseline, fresh) = match (load(&options.baseline), load(&options.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    for case in &fresh {
        let versus = baseline
            .iter()
            .find(|b| b.key() == case.key())
            .map(|b| format!("{:.1}", b.indexed_ns_per_op))
            .unwrap_or_else(|| "-".to_string());
        let memory = case
            .bytes_per_resident
            .map(|b| format!(", {b:.1} B/resident"))
            .unwrap_or_default();
        println!(
            "{:<20} {:>7} residents: {:>10.1} ns/op (baseline {versus}){memory}",
            case.case, case.residents, case.indexed_ns_per_op
        );
    }

    let mut failed = false;
    let regressions = compare(&baseline, &fresh, options.tolerance, options.min_delta_ns);
    if regressions.is_empty() {
        println!(
            "bench gate: OK ({} cases within {:.0}% of baseline)",
            fresh.len(),
            options.tolerance * 100.0
        );
    } else {
        failed = true;
        eprintln!(
            "bench gate: {} regression(s) beyond {:.0}% tolerance:",
            regressions.len(),
            options.tolerance * 100.0
        );
        for regression in &regressions {
            eprintln!("  {regression}");
        }
    }

    if options.require_verb_latency {
        // Re-read the fresh report raw: verb-latency rows live outside
        // the "cases" array that `parse_report` consumes.
        let checked = std::fs::read_to_string(&options.fresh)
            .map_err(|e| format!("cannot read {}: {e}", options.fresh))
            .and_then(|raw| parse_verb_latencies(&raw))
            .and_then(|rows| {
                let count = rows.len();
                check_verb_latencies(&rows).map(|()| count)
            });
        match checked {
            Ok(count) => println!("bench gate: {count} verb-latency rows present and sane"),
            Err(message) => {
                failed = true;
                eprintln!("bench gate: verb-latency check failed: {message}");
            }
        }
    }

    if let Some(max) = options.max_obs_overhead {
        let overheads = obs_overheads(&fresh);
        if overheads.is_empty() {
            eprintln!("bench gate: no store_churn / store_churn_observed pair to check");
            return ExitCode::from(2);
        }
        for overhead in &overheads {
            println!("{overhead}");
            if overhead.overhead > max {
                failed = true;
                eprintln!(
                    "bench gate: instrumentation overhead {:.0}% exceeds the {:.0}% budget \
                     @ {} residents",
                    overhead.overhead * 100.0,
                    max * 100.0,
                    overhead.residents
                );
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
