//! `bench_gate` — fails CI when the indexed engine regresses.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline BENCH_engine.json --fresh fresh.json \
//!            [--tolerance 0.25] [--min-delta-ns 100]
//! ```
//!
//! Exits 0 when every case of the fresh report is within `tolerance`
//! (default 25%) of the baseline's `indexed_ns_per_op`, 1 when any case
//! regressed (or disappeared), and 2 on usage or parse errors. Slowdowns
//! whose absolute delta is below `--min-delta-ns` (default 100) are
//! treated as shared-runner noise.

use std::process::ExitCode;

use bench_harness::gate::{compare, parse_report};

struct Options {
    baseline: String,
    fresh: String,
    tolerance: f64,
    min_delta_ns: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        baseline: "BENCH_engine.json".to_string(),
        fresh: String::new(),
        tolerance: 0.25,
        min_delta_ns: 100.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--baseline" => options.baseline = value("--baseline")?,
            "--fresh" => options.fresh = value("--fresh")?,
            "--tolerance" => {
                let raw = value("--tolerance")?;
                options.tolerance = raw
                    .parse()
                    .map_err(|_| format!("invalid tolerance '{raw}'"))?;
            }
            "--min-delta-ns" => {
                let raw = value("--min-delta-ns")?;
                options.min_delta_ns = raw
                    .parse()
                    .map_err(|_| format!("invalid min delta '{raw}'"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate --baseline BASE.json --fresh FRESH.json \
                     [--tolerance 0.25] [--min-delta-ns 100]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if options.fresh.is_empty() {
        return Err("--fresh is required (path to the freshly measured report)".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<_, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_report(&raw).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, fresh) = match (load(&options.baseline), load(&options.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    for case in &fresh {
        let versus = baseline
            .iter()
            .find(|b| b.key() == case.key())
            .map(|b| format!("{:.1}", b.indexed_ns_per_op))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<18} {:>7} residents: {:>10.1} ns/op (baseline {versus})",
            case.case, case.residents, case.indexed_ns_per_op
        );
    }

    let regressions = compare(&baseline, &fresh, options.tolerance, options.min_delta_ns);
    if regressions.is_empty() {
        println!(
            "bench gate: OK ({} cases within {:.0}% of baseline)",
            fresh.len(),
            options.tolerance * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "bench gate: {} regression(s) beyond {:.0}% tolerance:",
        regressions.len(),
        options.tolerance * 100.0
    );
    for regression in &regressions {
        eprintln!("  {regression}");
    }
    ExitCode::FAILURE
}
