//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--seed N] [--quick] [--json DIR] [--series DIR] [--prom FILE] [EXPERIMENT...]
//! repro --list
//! ```
//!
//! With no experiment arguments, all of them run in paper order. `--quick`
//! shortens the simulated horizons (CI-friendly); the default horizons
//! match the figures in the paper. `--json DIR` additionally dumps each
//! report's tables as CSV files into DIR. `--series DIR` attaches a
//! [`obs::SeriesRecorder`] and dumps every captured time series (density
//! samples, per-node cluster trajectories, …) as per-experiment CSVs into
//! DIR; `--prom FILE` writes the final registry and series state in the
//! Prometheus text exposition format.
//!
//! A process-global [`obs::MetricsRegistry`] is installed at startup;
//! after each experiment the delta of engine/cluster counters goes to
//! **stderr**, so the frozen stdout (`repro_output.txt`, `results/*.csv`)
//! stays byte-identical while humans still get per-phase telemetry. The
//! series recorder only ever *reads* the same integer events the trace
//! layer sees, so it cannot perturb stdout either.

use std::process::ExitCode;
use std::sync::Arc;

use experiments::figures::{self, FigureReport};
use experiments::DEFAULT_SEED;
use obs::{Observer, Report, SeriesRecorder};
use sim_core::SimDuration;

struct Options {
    seed: u64,
    quick: bool,
    json_dir: Option<String>,
    series_dir: Option<String>,
    prom_file: Option<String>,
    experiments: Vec<String>,
}

/// Experiments run by default, in paper order. The list (and therefore
/// the default stdout) is frozen against the committed `repro_output.txt`;
/// beyond-paper experiments in [`EXTRA_EXPERIMENTS`] run only when named.
const ALL_EXPERIMENTS: [&str; 20] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "sec53",
    "ablate-decay",
    "ablate-placement",
    "sec6-sensor",
    "fairness",
    "advisor",
    "mixed-apps",
    "predictability",
];

/// Opt-in (beyond-paper) experiments: `repro availability` runs the churn
/// study without perturbing the frozen default output.
const EXTRA_EXPERIMENTS: [&str; 1] = ["availability"];

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let ids: Vec<String> = if options.experiments.is_empty() {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        options.experiments.clone()
    };

    // Every unit/cluster built from here on reports into this registry
    // (unless compiled with `obs-off`, in which case it stays silent).
    // With `--series` the registry shares the stream with a series
    // recorder through a fan-out.
    let registry = Arc::new(obs::MetricsRegistry::new());
    let recorder = options.series_dir.as_ref().map(|_| {
        let recorder = Arc::new(SeriesRecorder::new(SimDuration::DAY));
        recorder.track_counter("engine.stores");
        recorder.track_counter("cluster.placements");
        recorder.track_events("density.sample", "density_ppm", &["gib", "policy"]);
        recorder.track_events("cluster.density", "density_ppm", &[]);
        recorder.track_events("cluster.node", "density_ppm", &["node"]);
        recorder
    });
    let mut sinks: Vec<Arc<dyn Observer>> = vec![registry.clone()];
    if let Some(recorder) = &recorder {
        sinks.push(recorder.clone());
    }
    let metrics = obs::set_global_observer(Arc::new(obs::Fanout::new(sinks))).then_some(registry);

    for (index, id) in ids.iter().enumerate() {
        // One series bundle per experiment: start each one (after the
        // first) from a clean clock so trajectories never interleave.
        if index > 0 {
            if let Some(recorder) = &recorder {
                recorder.reset();
            }
        }
        let phase_start = metrics.as_ref().map(|m| m.snapshot());
        let report = match run_experiment(id, &options) {
            Some(report) => report,
            None => {
                eprintln!(
                    "unknown experiment '{id}'; known: {}, {}",
                    ALL_EXPERIMENTS.join(", "),
                    EXTRA_EXPERIMENTS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        };
        println!("{report}");
        if let (Some(metrics), Some(baseline)) = (&metrics, phase_start) {
            let delta = metrics.snapshot().delta(&baseline);
            eprintln!("{}", Report::new(id, delta));
        }
        if let Some(dir) = &options.json_dir {
            if let Err(e) = dump_csv(dir, &report) {
                eprintln!("failed to write CSV for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let (Some(dir), Some(recorder)) = (&options.series_dir, &recorder) {
            if let Err(e) = dump_series(dir, id, recorder) {
                eprintln!("failed to write series for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &options.prom_file {
        let mut text = metrics
            .as_ref()
            .map(|m| m.snapshot().render_prometheus())
            .unwrap_or_default();
        if let Some(recorder) = &recorder {
            text.push_str(&recorder.render_prometheus());
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        seed: DEFAULT_SEED,
        quick: false,
        json_dir: None,
        series_dir: None,
        prom_file: None,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed '{value}'"))?;
            }
            "--quick" => options.quick = true,
            "--json" => {
                options.json_dir = Some(args.next().ok_or("--json needs a directory")?);
            }
            "--series" => {
                options.series_dir = Some(args.next().ok_or("--series needs a directory")?);
            }
            "--prom" => {
                options.prom_file = Some(args.next().ok_or("--prom needs a file path")?);
            }
            "--list" => {
                println!("{}", ALL_EXPERIMENTS.join("\n"));
                println!("{}", EXTRA_EXPERIMENTS.join("\n"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--seed N] [--quick] [--json DIR] [--series DIR] [--prom FILE] [EXPERIMENT...]\n       repro --list"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => options.experiments.push(other.to_string()),
        }
    }
    Ok(options)
}

fn run_experiment(id: &str, options: &Options) -> Option<FigureReport> {
    let seed = options.seed;
    // Paper-scale horizons vs CI-friendly quick ones.
    let (days, years, uni_years, scale) = if options.quick {
        (365, 3, 1, 50)
    } else {
        (730, 5, 2, 10)
    };
    Some(match id {
        "fig2" => figures::fig2(seed),
        "fig3" => figures::fig3(seed, days),
        "fig4" => figures::fig4(seed, days),
        "fig5" => figures::fig5(seed, days),
        "fig6" => figures::fig6(seed, days),
        "fig7" => figures::fig7(seed, days),
        "table1" => figures::table1(),
        "fig8" => figures::fig8(seed),
        "fig9" => figures::fig9(seed, years),
        "fig10" => figures::fig10(seed, years),
        "fig11" => figures::fig11(seed, years),
        "fig12" => figures::fig12(seed, years),
        "sec53" => figures::sec53(seed, uni_years, scale),
        "availability" => figures::availability(seed, uni_years, scale),
        "ablate-decay" => figures::ablate_decay(seed, days),
        "ablate-placement" => figures::ablate_placement(seed),
        "sec6-sensor" => figures::sec6_sensor(seed),
        "fairness" => figures::fairness(seed),
        "advisor" => figures::advisor(seed, days),
        "mixed-apps" => figures::mixed_apps(seed, days.min(365)),
        "predictability" => figures::predictability(seed, days),
        _ => return None,
    })
}

fn dump_csv(dir: &str, report: &FigureReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (index, (name, table)) in report.tables.iter().enumerate() {
        let path = format!("{dir}/{}_{index}_{}.csv", report.id, slug(name));
        std::fs::write(path, table.to_csv())?;
    }
    Ok(())
}

/// Writes every series the recorder captured during `experiment` as
/// `DIR/<experiment>__<series>.csv` (slugged; one value column keyed by
/// simulated minutes).
fn dump_series(dir: &str, experiment: &str, recorder: &SeriesRecorder) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, csv) in recorder.dump_csvs() {
        let path = format!("{dir}/{}__{}.csv", slug(experiment), slug(&name));
        std::fs::write(path, csv)?;
    }
    Ok(())
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}
