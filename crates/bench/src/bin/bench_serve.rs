//! Closed-loop load generator for `tempimpd`, the sharded serving layer.
//!
//! N client threads each drive a [`ServeClient`] as fast as the service
//! answers (closed loop with a bounded pipeline: each client keeps at
//! most [`WINDOW`] submissions in flight and must settle the oldest
//! reply before issuing another, so total outstanding work stays
//! bounded). The workload is a configurable mix of puts, skewed
//! gets, placement probes, and the occasional fan-out aggregate, over a
//! curve mix spanning the paper's annotation families (two-step, fixed
//! plateau, fixed lifetime, ephemeral).
//!
//! Two measurements come out:
//!
//! * **Throughput** — aggregate wall-clock ns per operation, reported in
//!   the same `"case"` line shape as `BENCH_engine.json` so `bench_gate`
//!   compares a fresh run against the committed `BENCH_serve.json`
//!   baseline unchanged. `residents` carries the shard count; the
//!   `reference_ns_per_op` column (`"reference": "single_shard"`) is the
//!   same workload forced through a single shard, so `scaling` documents
//!   shard scaling — it is a reference, not an optimized rival.
//! * **Latency** — per-verb **queue-wait vs service-time** p50/p99, from
//!   the request-scoped trace stamps every job carries (see
//!   `tempimpd`'s trace module): the worker derives both halves for
//!   *every* request — pipelined submissions included, not just the
//!   every-[`PROBE_EVERY`]th blocking probe — and records them through
//!   the observer seam into a shared [`MetricsRegistry`]. The same
//!   percentiles land in the report's `"verb_latencies"` rows, which
//!   `bench_gate --require-verb-latency` checks in CI. Under
//!   `--features obs-off` the stamps compile out and the columns print
//!   `n/a`; throughput still gates.
//!
//! `--snapshots FILE` additionally samples the `health` verb during the
//! sharded run and captures rendered serve-top frames (replayable with
//! `tempimp-obs serve-top --from FILE`); `--prom FILE` writes the final
//! registry state as Prometheus exposition text.
//!
//! ```text
//! cargo run --release -p bench-harness --bin bench_serve -- \
//!     --shards 8 --clients 32 --ops 2000000 --out BENCH_serve.json
//! ```
//!
//! [`ServeClient`]: tempimpd::ServeClient

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::servetop::{render_frame, FRAME_SEPARATOR};
use obs::MetricsRegistry;
use rand::Rng;
use sim_core::{ByteSize, Obs, SimDuration, SimTime};
use tempimpd::Tempimpd;
use temporal_importance::protocol::{HealthSnapshot, Request, Response, StoreApi, VerbKind};
use temporal_importance::{Importance, ImportanceCurve, ObjectClass, ObjectId};

const OUTPUT: &str = "BENCH_serve.json";
const SEED: u64 = 0x5e24e;
/// Key-space stride separating client ID ranges; no two clients ever
/// touch the same object, so rejections are real capacity pressure, not
/// duplicate-ID noise.
const CLIENT_STRIDE: u64 = 1 << 40;
/// Simulated minutes per operation: fast enough that a default run
/// covers months of simulated traffic, so two-step curves wane, fixed
/// lifetimes lapse, and expiry sweeps reclaim — steady-state churn
/// instead of a full store rejecting everything.
const SIM_MINUTES_PER_OP: u64 = 4;
/// Pipelined submissions each client keeps in flight; on few cores the
/// window is what amortizes cross-thread wake-ups over many requests.
const WINDOW: usize = 256;
/// Every this-many ops, a client issues a *blocking* [`StoreApi::call`]
/// instead of a pipelined submit — a liveness probe that bounds how far
/// any client can run ahead of its replies. Latency is *not* measured
/// here: every request (pipelined or blocking) carries trace stamps, and
/// the workers derive queue-wait/service for all of them.
const PROBE_EVERY: u64 = 64;

/// Request mix in percent; the remainder up to 100 is admin traffic
/// (alternating `density` / `stats` fan-outs).
#[derive(Debug, Clone, Copy)]
struct Mix {
    put: u32,
    get: u32,
    advise: u32,
}

impl Mix {
    fn admin(&self) -> u32 {
        100 - self.put - self.get - self.advise
    }
}

/// Per-client outcome counters, summed across the fleet for the sanity
/// footer (a run where every put bounces is measuring error paths, not
/// serving).
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    puts_accepted: u64,
    puts_rejected: u64,
    gets_hit: u64,
    errors: u64,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.puts_accepted += other.puts_accepted;
        self.puts_rejected += other.puts_rejected;
        self.gets_hit += other.gets_hit;
        self.errors += other.errors;
    }
}

fn main() {
    let mut output = OUTPUT.to_string();
    let mut shards: u32 = 8;
    let mut clients: Option<u32> = None;
    let mut ops: u64 = 2_000_000;
    let mut skew: f64 = 2.0;
    let mut mix = Mix {
        put: 55,
        get: 35,
        advise: 8,
    };
    let mut min_mops: f64 = 0.0;
    let mut direct = false;
    let mut no_obs = false;
    let mut snapshots: Option<String> = None;
    let mut prom: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => output = args.next().expect("--out needs a path"),
            "--snapshots" => snapshots = Some(args.next().expect("--snapshots needs a path")),
            "--prom" => prom = Some(args.next().expect("--prom needs a path")),
            "--shards" => {
                shards = parse(args.next(), "--shards");
                assert!(shards > 0, "--shards needs at least one shard");
            }
            "--clients" => clients = Some(parse(args.next(), "--clients")),
            "--ops" => ops = parse(args.next(), "--ops"),
            "--skew" => skew = parse(args.next(), "--skew"),
            "--mix" => {
                let spec: String = parse(args.next(), "--mix");
                let parts: Vec<u32> = spec
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse()
                            .expect("--mix needs PUT,GET,ADVISE percents")
                    })
                    .collect();
                assert!(parts.len() == 3, "--mix needs exactly PUT,GET,ADVISE");
                mix = Mix {
                    put: parts[0],
                    get: parts[1],
                    advise: parts[2],
                };
            }
            "--min-mops" => min_mops = parse(args.next(), "--min-mops"),
            "--direct" => direct = true,
            "--no-obs" => no_obs = true,
            other => panic!(
                "unknown argument '{other}' (expected --out PATH / --shards N / \
                 --clients N / --ops N / --skew F / --mix P,G,A / --min-mops F / \
                 --direct / --no-obs / --snapshots PATH / --prom PATH)"
            ),
        }
    }
    assert!(
        mix.put + mix.get + mix.advise <= 100,
        "--mix percentages must sum to at most 100"
    );
    assert!(
        mix.put > 0,
        "the workload needs puts to have anything to get"
    );
    // On machines with fewer cores than shards the clients mostly wait;
    // two per shard keeps every ingest queue fed without drowning the
    // scheduler in runnable threads.
    let clients = clients.unwrap_or(shards * 2);

    println!(
        "bench_serve: {shards} shards, {clients} clients, {ops} ops, skew {skew}, \
         mix {}/{}/{}/{} put/get/advise/admin",
        mix.put,
        mix.get,
        mix.advise,
        mix.admin()
    );

    if direct {
        direct_probe(ops, skew, mix);
        return;
    }

    // The sharded run under measurement, then the same pressure forced
    // through one shard (ops scaled down to keep the single worker's
    // runtime comparable) as the scaling reference column.
    let registry = Arc::new(MetricsRegistry::new());
    let sharded = run_serve(
        &registry,
        shards,
        clients,
        ops,
        skew,
        mix,
        no_obs,
        true,
        snapshots.as_deref(),
    );
    let naive_clients = clients.div_ceil(shards).max(2);
    let single = run_serve(
        &Arc::new(MetricsRegistry::new()),
        1,
        naive_clients,
        (ops / u64::from(shards)).max(50_000),
        skew,
        mix,
        no_obs,
        false,
        None,
    );

    let mops = 1e3 / sharded.ns_per_op;
    println!(
        "aggregate: {:.1} ns/op sharded ({mops:.2} M ops/s), {:.1} ns/op single-shard, \
         scaling {:.1}x",
        sharded.ns_per_op,
        single.ns_per_op,
        single.ns_per_op / sharded.ns_per_op
    );

    let case = case_line(
        "serve_mixed",
        u64::from(shards),
        sharded.ns_per_op,
        single.ns_per_op,
    );

    // The vendored serde_json exposes only typed (de)serialization, so the
    // report is rendered by hand, mirroring bench_engine.
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"tempimpd sharded serving layer, closed-loop clients\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench-harness --bin bench_serve\",\n");
    out.push_str("  \"unit\": \"ns per operation (aggregate wall time / total ops)\",\n");
    out.push_str("  \"cases\": [\n");
    out.push_str(&format!("    {case}\n"));
    if sharded.verb_latency_lines.is_empty() {
        out.push_str("  ]\n}\n");
    } else {
        // Queue-wait/service percentiles per verb, from the request-
        // scoped stamps (all submissions, pipelined included). Omitted
        // under obs-off / --no-obs, where no stamps exist.
        out.push_str("  ],\n");
        out.push_str("  \"verb_latencies\": [\n");
        out.push_str(&format!(
            "    {}\n",
            sharded.verb_latency_lines.join(",\n    ")
        ));
        out.push_str("  ]\n}\n");
    }
    std::fs::write(&output, out).expect("write bench report");
    println!("wrote {output}");

    if let Some(path) = prom {
        std::fs::write(&path, registry.snapshot().render_prometheus())
            .expect("write prometheus exposition");
        println!("wrote {path}");
    }

    if min_mops > 0.0 {
        assert!(
            mops >= min_mops,
            "throughput floor missed: {mops:.2} M ops/s < required {min_mops:.2} M ops/s"
        );
        println!("throughput floor ok: {mops:.2} M ops/s >= {min_mops:.2} M ops/s");
    }
}

/// Diagnostic: the same generated op stream fed straight into one
/// `ShardEngine::call` with no threads or channels, to separate engine
/// cost from transport cost.
fn direct_probe(ops: u64, skew: f64, mix: Mix) {
    use tempimpd::ShardEngine;
    use temporal_importance::protocol::StoreApi;
    use temporal_importance::EvictionPolicy;
    let mut engine = ShardEngine::new(
        ByteSize::from_mib(512),
        EvictionPolicy::Preemptive,
        SimDuration::DAY,
    );
    let mut rng = sim_core::rng::stream(SEED, "serve-client-0");
    let mut put_count = 0u64;
    let started = Instant::now();
    let mut accepted = 0u64;
    for i in 0..ops {
        let at = SimTime::from_minutes(i * SIM_MINUTES_PER_OP / 8);
        let roll = rng.gen_range(0u32..100);
        let request = if roll < mix.put || put_count == 0 {
            let id = ObjectId::new(put_count);
            put_count += 1;
            Request::Put {
                id,
                bytes: ByteSize::from_mib(1 + rng.gen_range(0u64..4)),
                curve: curve_mix(&mut rng),
                class: ObjectClass::default(),
            }
        } else if roll < mix.put + mix.get {
            Request::Get {
                id: ObjectId::new(recent_key(&mut rng, put_count, skew)),
            }
        } else if roll < mix.put + mix.get + mix.advise {
            Request::Advise {
                id: ObjectId::new(CLIENT_STRIDE / 2 + i),
                bytes: ByteSize::from_mib(2),
                incoming: Importance::new_clamped(0.9),
            }
        } else if rng.gen::<bool>() {
            Request::Density
        } else {
            Request::Stats
        };
        if matches!(engine.call(at, request), Response::Put(Ok(_))) {
            accepted += 1;
        }
    }
    let ns = started.elapsed().as_nanos() as f64 / ops as f64;
    println!(
        "direct engine: {ns:.1} ns/op, {accepted} puts accepted, {} resident",
        engine.unit().len()
    );
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a valid value"))
}

#[derive(Debug, Clone)]
struct RunResult {
    ns_per_op: f64,
    /// Rendered `"verb_latencies"` report rows (empty when tracing is
    /// compiled out, suppressed with `--no-obs`, or `report` is off).
    verb_latency_lines: Vec<String>,
}

/// One closed-loop run: spawn the service, hammer it from `clients`
/// threads until every client has issued its share of `total_ops`, then
/// shut down and report aggregate wall-ns per op. When `report` is set,
/// also prints the per-verb queue-wait/service latency table and the
/// outcome tally; `snapshots` additionally samples `health` every 250 ms
/// on a monitor thread and writes the rendered serve-top frames there.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    registry: &Arc<MetricsRegistry>,
    shards: u32,
    clients: u32,
    total_ops: u64,
    skew: f64,
    mix: Mix,
    no_obs: bool,
    report: bool,
    snapshots: Option<&str>,
) -> RunResult {
    let service = Tempimpd::builder()
        .shards(shards)
        // Sized so steady-state churn preempts: ~2.5 MiB mean puts at the
        // default mix fill 512 MiB/shard well within a run.
        .shard_capacity(ByteSize::from_mib(512))
        .queue_depth(8192)
        .batch_max(512)
        .observer(if no_obs {
            Obs::none()
        } else {
            Obs::attached(registry.clone())
        })
        .spawn();
    let prototype = service.client();
    let per_client = (total_ops / u64::from(clients)).max(1);

    // The health sampler rides alongside the load: one extra client
    // polling the aggregating verb at SimTime::ZERO (which never advances
    // a shard clock), rendering a frame per sample.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = snapshots.map(|path| {
        let mut client = service.client();
        let stop = stop.clone();
        let path = path.to_string();
        std::thread::spawn(move || {
            let started = Instant::now();
            let mut capture = String::new();
            let mut prev: Option<(HealthSnapshot, Duration)> = None;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                let Ok(health) = client.health(SimTime::ZERO) else {
                    break;
                };
                let elapsed = started.elapsed();
                capture.push_str(&render_frame(
                    &health,
                    elapsed,
                    prev.as_ref().map(|(snapshot, at)| (snapshot, *at)),
                ));
                capture.push(FRAME_SEPARATOR);
                prev = Some((health, elapsed));
            }
            std::fs::write(&path, capture).expect("write snapshots capture");
            path
        })
    });

    let started = Instant::now();
    let mut tally = Tally::default();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let client = prototype.clone();
            handles.push(scope.spawn(move |_| drive_client(client, c, per_client, skew, mix)));
        }
        for handle in handles {
            tally.absorb(handle.join().expect("bench client panicked"));
        }
    })
    .expect("bench client scope");
    let elapsed = started.elapsed();
    if let Some(handle) = monitor {
        stop.store(true, Ordering::Relaxed);
        let path = handle.join().expect("snapshot monitor panicked");
        println!("wrote {path}");
    }
    drop(prototype);
    let reports = service.shutdown().expect_clean();

    let done = per_client * u64::from(clients);
    let ns_per_op = elapsed.as_nanos() as f64 / done as f64;

    let mut verb_latency_lines = Vec::new();
    if report {
        let requests: u64 = reports.iter().map(|r| r.requests).sum();
        let batches: u64 = reports.iter().map(|r| r.batches).sum();
        println!(
            "  {done} ops across {clients} clients in {:.2}s; {} objects resident over {} shards, \
             {:.1} requests per worker batch",
            elapsed.as_secs_f64(),
            reports.iter().map(|r| r.unit.len()).sum::<usize>(),
            reports.len(),
            requests as f64 / batches.max(1) as f64
        );
        println!(
            "  outcomes: {} puts accepted, {} rejected, {} gets hit, {} transport errors",
            tally.puts_accepted, tally.puts_rejected, tally.gets_hit, tally.errors
        );
        // Every request's queue-wait/service split, from the trace
        // stamps the workers record through the observer seam —
        // pipelined submissions included, not just blocking probes.
        for verb in VerbKind::ALL {
            let name = verb.name();
            let queue_wait = registry.histogram(verb.queue_wait_metric());
            let service_time = registry.histogram(verb.service_metric());
            match (queue_wait, service_time) {
                (Some(queue_wait), Some(service_time)) if queue_wait.count() > 0 => {
                    println!(
                        "  latency {name:<8} queue-wait p50 {:>7} ns p99 {:>9} ns | \
                         service p50 {:>7} ns p99 {:>9} ns ({} samples)",
                        queue_wait.quantile(0.5),
                        queue_wait.quantile(0.99),
                        service_time.quantile(0.5),
                        service_time.quantile(0.99),
                        queue_wait.count()
                    );
                    verb_latency_lines.push(format!(
                        "{{ \"verb\": \"{name}\", \"samples\": {}, \
                         \"queue_wait_p50_ns\": {}, \"queue_wait_p99_ns\": {}, \
                         \"service_p50_ns\": {}, \"service_p99_ns\": {} }}",
                        queue_wait.count(),
                        queue_wait.quantile(0.5),
                        queue_wait.quantile(0.99),
                        service_time.quantile(0.5),
                        service_time.quantile(0.99),
                    ));
                }
                _ => println!("  latency {name:<8} n/a (obs-off or no samples)"),
            }
        }
    }
    assert!(
        tally.errors == 0,
        "transport errors during a clean run mean a worker died"
    );

    RunResult {
        ns_per_op,
        verb_latency_lines,
    }
}

/// One client's closed loop, pipelined: keep up to [`WINDOW`] requests
/// in flight via [`ServeClient::submit`], settling the oldest reply
/// before each new submission once the window is full. The window
/// amortizes thread wake-ups across many requests while still bounding
/// outstanding work (closed loop, just with a deeper pipe). Keys live in
/// a per-client range; gets are skewed toward recently-put keys with
/// `P(offset) ~ u^skew`.
fn drive_client(
    mut client: tempimpd::ServeClient,
    index: u32,
    ops: u64,
    skew: f64,
    mix: Mix,
) -> Tally {
    let mut rng = sim_core::rng::stream(SEED, &format!("serve-client-{index}"));
    let base = u64::from(index) * CLIENT_STRIDE;
    let mut put_count: u64 = 0;
    let mut tally = Tally::default();
    let mut inflight: std::collections::VecDeque<tempimpd::Pending> =
        std::collections::VecDeque::with_capacity(WINDOW);

    for i in 0..ops {
        if inflight.len() >= WINDOW {
            let oldest = inflight.pop_front().expect("window is non-empty");
            settle(&mut tally, oldest.wait());
        }
        let at = SimTime::from_minutes(i * SIM_MINUTES_PER_OP);
        let roll = rng.gen_range(0u32..100);
        let request = if roll < mix.put || put_count == 0 {
            let id = ObjectId::new(base + put_count);
            put_count += 1;
            Request::Put {
                id,
                bytes: ByteSize::from_mib(1 + rng.gen_range(0u64..4)),
                curve: curve_mix(&mut rng),
                class: ObjectClass::default(),
            }
        } else if roll < mix.put + mix.get {
            let key = recent_key(&mut rng, put_count, skew);
            Request::Get {
                id: ObjectId::new(base + key),
            }
        } else if roll < mix.put + mix.get + mix.advise {
            Request::Advise {
                id: ObjectId::new(base + CLIENT_STRIDE / 2 + i),
                bytes: ByteSize::from_mib(2),
                incoming: Importance::new_clamped(0.9),
            }
        } else if rng.gen::<bool>() {
            Request::Density
        } else {
            Request::Stats
        };
        if i % PROBE_EVERY == 0 {
            let response = client.call(at, request);
            settle(&mut tally, response);
        } else {
            match client.submit(at, request) {
                Ok(pending) => inflight.push_back(pending),
                Err(_) => tally.errors += 1,
            }
        }
    }
    for pending in inflight {
        settle(&mut tally, pending.wait());
    }
    tally
}

/// Folds one collected reply into the tally.
fn settle(tally: &mut Tally, response: Response) {
    use temporal_importance::Error;
    match response {
        Response::Put(Ok(_)) => tally.puts_accepted += 1,
        Response::Put(Err(Error::Store(_))) => tally.puts_rejected += 1,
        Response::Get(Ok(Some(_))) => tally.gets_hit += 1,
        Response::Get(Ok(None))
        | Response::Advise(Ok(_))
        | Response::Density(Ok(_))
        | Response::Stats(Ok(_))
        | Response::Health(Ok(_)) => {}
        Response::Put(Err(_))
        | Response::Get(Err(_))
        | Response::Advise(Err(_))
        | Response::Density(Err(_))
        | Response::Stats(Err(_))
        | Response::Health(Err(_)) => tally.errors += 1,
    }
}

/// Draws a key offset from the most recent put: `offset = put_count *
/// u^skew`, so higher skew concentrates gets on the newest (still
/// resident, still important) objects.
fn recent_key<R: Rng>(rng: &mut R, put_count: u64, skew: f64) -> u64 {
    let u: f64 = rng.gen();
    let offset = ((put_count as f64) * u.powf(skew)) as u64;
    put_count - 1 - offset.min(put_count - 1)
}

/// The annotation palette: mostly two-step (the paper's Fig. 1 shape),
/// with fixed-plateau, fixed-lifetime, and ephemeral minorities so
/// admission sees the full importance spectrum and preemption has
/// victims. Deliberately a small, quantized set of templates: the
/// engine's preemption planner keeps one candidate stream per distinct
/// curve shape (that is the paper's model — annotations come from a
/// handful of site policies, not per-object free-form functions), so a
/// workload drawing continuous random curves would measure
/// shape-cardinality blowup instead of serving.
fn curve_mix<R: Rng>(rng: &mut R) -> ImportanceCurve {
    match rng.gen_range(0u32..10) {
        0..=3 => ImportanceCurve::two_step(
            Importance::FULL,
            SimDuration::from_days(15),
            SimDuration::from_days(15),
        ),
        4..=5 => ImportanceCurve::Fixed {
            importance: Importance::new_clamped(0.2 * f64::from(rng.gen_range(2u32..=4))),
            expiry: SimDuration::from_days(10 * u64::from(rng.gen_range(1u32..=3))),
        },
        6 => ImportanceCurve::two_step(
            Importance::new_clamped(0.6),
            SimDuration::from_days(5),
            SimDuration::from_days(25),
        ),
        7..=8 => ImportanceCurve::fixed_lifetime(SimDuration::from_days(
            5 * u64::from(rng.gen_range(1u32..=3)),
        )),
        _ => ImportanceCurve::Ephemeral,
    }
}

/// Renders one gate-compatible case line (and its stdout row). Same
/// shape `gate::parse_report` reads from `BENCH_engine.json`; the memory
/// column is omitted — a serving fleet's footprint is workload-dependent,
/// and the gate treats the column as optional. The comparison column is
/// self-describing: `reference_ns_per_op` with `"reference":
/// "single_shard"`, and the ratio is `scaling` (shards vs one shard),
/// not `speedup` (indexed vs a naive oracle) — the single-shard run is a
/// reference point, not a rival implementation.
fn case_line(name: &str, shards: u64, indexed_ns: f64, reference_ns: f64) -> String {
    let scaling = reference_ns / indexed_ns;
    println!(
        "{name:<14} {shards:>3} shards: sharded {indexed_ns:>9.1} ns/op, \
         single-shard {reference_ns:>9.1} ns/op, scaling {scaling:>5.1}x"
    );
    format!(
        "{{ \"case\": \"{name}\", \"residents\": {shards}, \
         \"indexed_ns_per_op\": {indexed_ns:.1}, \"reference_ns_per_op\": {reference_ns:.1}, \
         \"reference\": \"single_shard\", \"scaling\": {scaling:.1} }}"
    )
}
