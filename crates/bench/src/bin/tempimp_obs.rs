//! `tempimp-obs` — offline analysis of the engine's JSONL event traces.
//!
//! ```text
//! tempimp-obs stats TRACE
//! tempimp-obs diff LEFT RIGHT
//! tempimp-obs series TRACE KIND FIELD [key=value ...]
//! tempimp-obs object TRACE ID
//! tempimp-obs golden [OUT]
//! tempimp-obs verify-density TRACE FIGURE_CSV [--gib N] [--policy N]
//! tempimp-obs serve-top [--shards N] [--clients N] [--frames N]
//!                       [--interval-ms N] [--slow-ms N] [--from FILE]
//! ```
//!
//! * `stats` — per-kind event counts with first/last simulated minute.
//! * `diff` — locates the first divergence between two traces (the
//!   determinism smoke test: two runs of the same seeded workload must
//!   report zero divergence). Exits non-zero when the traces differ.
//! * `series` — extracts `(t_minutes, FIELD)` points from every `KIND`
//!   event matching the `key=value` filters, as CSV on stdout.
//! * `object` — reconstructs one object's lifecycle (store, breakpoints,
//!   eviction) from its `id` field.
//! * `golden` — replays [`bench_harness::golden`] (the exact workload
//!   pinned by `tests/golden_trace.rs`) and writes its trace.
//! * `verify-density` — recomputes Figure 6's monthly mean density from
//!   the daily parts-per-million series (either a JSONL trace's
//!   `density.sample` events or a `repro --series` CSV dump) and checks
//!   it against the figure's CSV (`results/fig6_*.csv` or a fresh
//!   `--json` dump), closing the loop trace → analysis → paper artifact.
//! * `serve-top` — a refreshing per-shard live view of a `tempimpd`
//!   service: spins one up in-process, drives it from client threads, and
//!   renders the `health` verb's aggregate (queue depth, residents,
//!   request rate, per-verb queue-wait/service percentiles) plus a
//!   slow-request log each frame. `--from FILE` instead replays the
//!   frames of a `bench_serve --snapshots` capture. Under
//!   `--features obs-off` the view still runs; every latency column
//!   honestly reads `n/a`.
//!
//! Parsing, diffing, and extraction live in [`obs::tracefile`]; frame
//! rendering and the slow-request log live in [`bench_harness::servetop`];
//! this binary is argument handling and I/O.

use std::process::ExitCode;

use obs::tracefile::{self, TraceEvent};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("series") => cmd_series(&args[1..]),
        Some("object") => cmd_object(&args[1..]),
        Some("golden") => cmd_golden(&args[1..]),
        Some("verify-density") => cmd_verify_density(&args[1..]),
        Some("serve-top") => cmd_serve_top(&args[1..]),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: tempimp-obs stats TRACE
       tempimp-obs diff LEFT RIGHT
       tempimp-obs series TRACE KIND FIELD [key=value ...]
       tempimp-obs object TRACE ID
       tempimp-obs golden [OUT]
       tempimp-obs verify-density TRACE FIGURE_CSV [--gib N] [--policy N]
       tempimp-obs serve-top [--shards N] [--clients N] [--frames N] \\
                             [--interval-ms N] [--slow-ms N] [--from FILE]";

/// Reads and parses a trace file, mapping errors to readable messages.
fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    tracefile::parse_jsonl(&text).map_err(|(line, e)| format!("{path}:{line}: {e}"))
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err("stats needs exactly one TRACE argument".into());
    };
    let events = load_trace(path)?;
    println!("{} events", events.len());
    for (kind, stats) in tracefile::stats(&events) {
        println!(
            "  {kind:<24} {:>8}  first t={}m  last t={}m",
            stats.count, stats.first_t, stats.last_t
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let [left_path, right_path] = args else {
        return Err("diff needs exactly two trace arguments".into());
    };
    let left = std::fs::read_to_string(left_path)
        .map_err(|e| format!("cannot read trace '{left_path}': {e}"))?;
    let right = std::fs::read_to_string(right_path)
        .map_err(|e| format!("cannot read trace '{right_path}': {e}"))?;
    match tracefile::first_divergence(&left, &right) {
        None => {
            println!("traces are identical ({} lines)", left.lines().count());
            Ok(ExitCode::SUCCESS)
        }
        Some(divergence) => {
            println!("{divergence}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_series(args: &[String]) -> Result<ExitCode, String> {
    let [path, kind, field, filter_args @ ..] = args else {
        return Err("series needs TRACE KIND FIELD [key=value ...]".into());
    };
    let filters: Vec<(String, u64)> = filter_args
        .iter()
        .map(|pair| {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("filter '{pair}' is not key=value"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("filter value in '{pair}' is not an integer"))?;
            Ok((key.to_string(), value))
        })
        .collect::<Result<_, String>>()?;
    let events = load_trace(path)?;
    let points = tracefile::extract_series(&events, kind, field, &filters);
    if points.is_empty() {
        return Err(format!("no '{kind}' events carry field '{field}'"));
    }
    println!("t_minutes,{field}");
    for (t, value) in points {
        println!("{t},{value}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_object(args: &[String]) -> Result<ExitCode, String> {
    let [path, id] = args else {
        return Err("object needs TRACE ID".into());
    };
    let id: u64 = id
        .parse()
        .map_err(|_| format!("invalid object id '{id}'"))?;
    let events = load_trace(path)?;
    let lifecycle = tracefile::object_events(&events, id);
    if lifecycle.is_empty() {
        return Err(format!("object {id} never appears in the trace"));
    }
    for event in &lifecycle {
        println!("{event}");
    }
    let born = lifecycle.first().expect("non-empty").t;
    let last = lifecycle.last().expect("non-empty").t;
    let fate = lifecycle
        .iter()
        .rev()
        .find(|e| e.kind == "engine.evict")
        .map(|e| match e.field("reason") {
            Some(0) => "preempted",
            Some(1) => "expired",
            Some(2) => "removed",
            _ => "evicted",
        })
        .unwrap_or("still resident at end of trace");
    println!(
        "object {id}: {} events over {} simulated minutes; {fate}",
        lifecycle.len(),
        last - born
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_golden(args: &[String]) -> Result<ExitCode, String> {
    let trace = bench_harness::golden::trace_run();
    if cfg!(feature = "obs-off") {
        return Err("this binary was built with obs-off; the golden trace is empty".into());
    }
    match args {
        [] => {
            print!("{trace}");
            Ok(ExitCode::SUCCESS)
        }
        [out] => {
            std::fs::write(out, &trace).map_err(|e| format!("cannot write '{out}': {e}"))?;
            eprintln!("wrote {} lines to {out}", trace.lines().count());
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("golden takes at most one OUT argument".into()),
    }
}

/// Loads the daily density series, in parts-per-million, from either a
/// JSONL trace (the `density.sample` events matching `gib`/`policy`) or a
/// `repro --series` dump (`t_minutes,value` rows — the filters are baked
/// into which file was dumped).
fn load_ppm_series(path: &str, gib: u64, policy: u64) -> Result<Vec<(u64, u64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    if text.starts_with('{') {
        let events =
            tracefile::parse_jsonl(&text).map_err(|(line, e)| format!("{path}:{line}: {e}"))?;
        let filters = [("gib".to_string(), gib), ("policy".to_string(), policy)];
        let samples = tracefile::extract_series(&events, "density.sample", "density_ppm", &filters);
        if samples.is_empty() {
            return Err(format!(
                "no density.sample events for gib={gib} policy={policy} in '{path}'"
            ));
        }
        return Ok(samples);
    }
    let mut samples = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if index == 0 {
            if line != "t_minutes,value" {
                return Err(format!(
                    "'{path}' is neither a JSONL trace nor a series CSV (header '{line}')"
                ));
            }
            continue;
        }
        let parsed = line
            .split_once(',')
            .and_then(|(t, v)| Some((t.parse::<u64>().ok()?, v.parse::<u64>().ok()?)));
        let Some(point) = parsed else {
            return Err(format!("{path}:{}: malformed row '{line}'", index + 1));
        };
        samples.push(point);
    }
    if samples.is_empty() {
        return Err(format!("'{path}' has no data rows"));
    }
    Ok(samples)
}

/// Replays Figure 6's analysis — monthly [`bucket_mean`] over the daily
/// density series — from the trace's integer `density.sample` events and
/// compares against the figure's `day,density` CSV.
///
/// Tolerance: the CSV rounds to 4 decimals (±5e-5) and each trace sample
/// is rounded to parts-per-million (±5e-7), so agreement within 1.5e-4
/// means the trace and the figure describe the same run.
///
/// [`bucket_mean`]: analysis::TimeSeries::bucket_mean
fn cmd_verify_density(args: &[String]) -> Result<ExitCode, String> {
    let mut positional = Vec::new();
    let mut gib = 80u64;
    let mut policy = 1u64; // temporal-importance
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--gib" => {
                gib = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--gib needs an integer")?;
            }
            "--policy" => {
                policy = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--policy needs an integer")?;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [trace_path, csv_path] = positional.as_slice() else {
        return Err("verify-density needs TRACE FIGURE_CSV [--gib N] [--policy N]".into());
    };

    let samples = load_ppm_series(trace_path, gib, policy)?;

    // Figure 6's pipeline: daily samples -> monthly bucket means keyed by
    // bucket start.
    let series: analysis::TimeSeries = samples
        .iter()
        .map(|&(t, ppm)| (sim_core::SimTime::from_minutes(t), ppm as f64 / 1_000_000.0))
        .collect();
    let month = sim_core::SimDuration::from_days(30);
    let expected: std::collections::BTreeMap<u64, f64> = series
        .bucket_mean(month)
        .into_iter()
        .map(|(at, mean)| (at.as_days(), mean))
        .collect();

    let csv = std::fs::read_to_string(csv_path)
        .map_err(|e| format!("cannot read figure CSV '{csv_path}': {e}"))?;
    let mut checked = 0usize;
    let mut worst: f64 = 0.0;
    for (index, line) in csv.lines().enumerate() {
        if index == 0 {
            if line != "day,density" {
                return Err(format!(
                    "'{csv_path}' is not a density figure CSV (header '{line}')"
                ));
            }
            continue;
        }
        let (day, density) = line
            .split_once(',')
            .ok_or_else(|| format!("{csv_path}:{}: malformed row '{line}'", index + 1))?;
        let day: u64 = day
            .parse()
            .map_err(|_| format!("{csv_path}:{}: bad day '{day}'", index + 1))?;
        let density: f64 = density
            .parse()
            .map_err(|_| format!("{csv_path}:{}: bad density '{density}'", index + 1))?;
        let Some(&from_trace) = expected.get(&day) else {
            return Err(format!(
                "figure CSV has day {day} but the trace's series does not"
            ));
        };
        let error = (from_trace - density).abs();
        worst = worst.max(error);
        if error > 1.5e-4 {
            println!("MISMATCH at day {day}: figure says {density:.4}, trace says {from_trace:.4}");
            return Ok(ExitCode::FAILURE);
        }
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("'{csv_path}' has no data rows"));
    }
    println!(
        "verified {checked} monthly density buckets against {} trace samples (max error {worst:.2e})",
        samples.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// `serve-top` — live per-shard telemetry view. Without `--from`, spins
/// up an in-process `tempimpd`, drives it from client threads, and
/// renders one frame per `--interval-ms` from the `health` verb plus the
/// slow-request log (requests over `--slow-ms`). With `--from FILE`,
/// replays the frames of a `bench_serve --snapshots` capture instead.
fn cmd_serve_top(args: &[String]) -> Result<ExitCode, String> {
    use bench_harness::servetop::{render_frame, split_frames, tracing_compiled_in, SlowLog};
    use std::io::IsTerminal;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use temporal_importance::protocol::StoreApi;

    let mut shards: u32 = 4;
    let mut clients: Option<u32> = None;
    let mut frames: u32 = 10;
    let mut interval_ms: u64 = 500;
    let mut slow_ms: u64 = 5;
    let mut from: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or(format!("{flag} needs an integer"))
        };
        match arg.as_str() {
            "--shards" => shards = value("--shards")? as u32,
            "--clients" => clients = Some(value("--clients")? as u32),
            "--frames" => frames = value("--frames")? as u32,
            "--interval-ms" => interval_ms = value("--interval-ms")?,
            "--slow-ms" => slow_ms = value("--slow-ms")?,
            "--from" => {
                from = Some(
                    iter.next()
                        .ok_or("--from needs a capture file path")?
                        .clone(),
                );
            }
            other => return Err(format!("serve-top: unknown argument '{other}'")),
        }
    }
    if shards == 0 {
        return Err("serve-top needs at least one shard".into());
    }
    let clear_between = std::io::stdout().is_terminal();
    let clear = |out_frame: &str| {
        if clear_between {
            // Home + clear-to-end keeps scrollback usable, unlike 2J.
            print!("\x1b[H\x1b[J{out_frame}");
        } else {
            println!("{out_frame}");
        }
    };

    // Replay mode: the capture already contains rendered frames.
    if let Some(path) = from {
        let capture = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read capture '{path}': {e}"))?;
        let frames = split_frames(&capture);
        if frames.is_empty() {
            return Err(format!("'{path}' holds no serve-top frames"));
        }
        for (index, frame) in frames.iter().enumerate() {
            if index > 0 && clear_between {
                std::thread::sleep(Duration::from_millis(interval_ms));
            }
            clear(frame);
        }
        println!("replayed {} frames from {path}", frames.len());
        return Ok(ExitCode::SUCCESS);
    }

    if !tracing_compiled_in() {
        println!("note: built with obs-off — latency columns and the slow log will read n/a/none");
    }

    // Live mode: an in-process service under synthetic load. The slow log
    // listens for the workers' `serve.slow` events next to the registry.
    let registry = Arc::new(obs::MetricsRegistry::new());
    let slow_log = Arc::new(SlowLog::new(64));
    let stack: Vec<Arc<dyn obs::Observer>> = vec![registry, slow_log.clone()];
    let service = tempimpd::Tempimpd::builder()
        .shards(shards)
        .shard_capacity(sim_core::ByteSize::from_mib(256))
        .slow_threshold(Duration::from_millis(slow_ms))
        .observer(sim_core::Obs::attached(Arc::new(obs::Fanout::new(stack))))
        .spawn();
    let clients = clients.unwrap_or(shards * 2).max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let mut drivers = Vec::new();
    for index in 0..clients {
        let client = service.client();
        let stop = stop.clone();
        drivers.push(std::thread::spawn(move || drive_load(client, index, &stop)));
    }

    let mut monitor = service.client();
    let started = Instant::now();
    let mut prev: Option<(tempimpd::HealthSnapshot, Duration)> = None;
    for _ in 0..frames {
        std::thread::sleep(Duration::from_millis(interval_ms));
        let health = monitor
            .health(sim_core::SimTime::ZERO)
            .map_err(|e| format!("health probe failed: {e:?}"))?;
        let elapsed = started.elapsed();
        let mut frame = render_frame(
            &health,
            elapsed,
            prev.as_ref().map(|(snapshot, at)| (snapshot, *at)),
        );
        frame.push_str(&slow_log.render_tail(8));
        clear(&frame);
        prev = Some((health, elapsed));
    }

    stop.store(true, Ordering::Relaxed);
    let driven: u64 = drivers
        .into_iter()
        .map(|h| h.join().expect("serve-top load thread panicked"))
        .sum();
    drop(monitor);
    service.shutdown().expect_clean();
    println!("serve-top: {frames} frames over {clients} clients, {driven} ops driven");
    Ok(ExitCode::SUCCESS)
}

/// One serve-top load thread: a pipelined put/get loop (2:1) in a
/// per-client key range, running until the view stops it. Returns the
/// number of submissions issued.
fn drive_load(
    client: tempimpd::ServeClient,
    index: u32,
    stop: &std::sync::atomic::AtomicBool,
) -> u64 {
    use std::sync::atomic::Ordering;
    use temporal_importance::protocol::Request;
    use temporal_importance::{ImportanceCurve, ObjectClass, ObjectId};

    const WINDOW: usize = 64;
    let base = u64::from(index) << 40;
    let mut issued = 0u64;
    let mut inflight = std::collections::VecDeque::with_capacity(WINDOW);
    while !stop.load(Ordering::Relaxed) {
        if inflight.len() >= WINDOW {
            let oldest: tempimpd::Pending = inflight.pop_front().expect("window is non-empty");
            let _ = oldest.wait();
        }
        let at = sim_core::SimTime::from_minutes(issued * 4);
        let request = if issued % 3 == 2 {
            Request::Get {
                id: ObjectId::new(base + issued.saturating_sub(2)),
            }
        } else {
            Request::Put {
                id: ObjectId::new(base + issued),
                bytes: sim_core::ByteSize::from_mib(1),
                curve: ImportanceCurve::two_step(
                    temporal_importance::Importance::FULL,
                    sim_core::SimDuration::from_days(15),
                    sim_core::SimDuration::from_days(15),
                ),
                class: ObjectClass::default(),
            }
        };
        match client.submit(at, request) {
            Ok(pending) => inflight.push_back(pending),
            Err(_) => break,
        }
        issued += 1;
    }
    for pending in inflight {
        let _ = pending.wait();
    }
    issued
}
