//! Indexed-versus-naive engine comparison, emitted as `BENCH_engine.json`.
//!
//! Runs the three hot paths the indexed engine accelerates — sustained
//! store churn, admission probes, and repeated density sampling — on both
//! the incremental engine and the scan-everything oracle
//! (`StorageUnit::builder(..).naive_oracle(true)`) at 10k and
//! 100k residents, and records nanoseconds per operation plus the
//! speedup. Run from the repository root:
//!
//! ```text
//! cargo run --release -p bench-harness --bin bench_engine
//! ```
//!
//! `--out PATH` redirects the report (CI measures into a scratch file and
//! gates it against the committed baseline with `bench_gate`).

use std::sync::Arc;
use std::time::Instant;

use bench_harness::{incoming_spec, mixed_unit, mixed_unit_naive};
use obs::{Fanout, MetricsRegistry, Obs, Observer, SeriesRecorder, TraceSink};
use sim_core::{ByteSize, SimDuration, SimTime};
use temporal_importance::{Importance, StorageUnit};

const RESIDENT_COUNTS: [u64; 2] = [10_000, 100_000];
const OUTPUT: &str = "BENCH_engine.json";

fn main() {
    let mut output = OUTPUT.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => output = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}' (expected --out PATH)"),
        }
    }

    let mut cases = Vec::new();
    for residents in RESIDENT_COUNTS {
        cases.push(run_case("store_churn", residents, store_churn_ns));
        cases.push(run_case("peek_admission", residents, peek_admission_ns));
        cases.push(run_case("density_sampling", residents, density_sampling_ns));
    }
    // Observability overhead: the same churn loop behind the full sink
    // stack. One fixture size is enough to watch the trend against the
    // plain `store_churn` row.
    cases.push(run_case(
        "store_churn_observed",
        10_000,
        store_churn_observed_ns,
    ));

    // The vendored serde_json exposes only typed (de)serialization, so the
    // report is rendered by hand.
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"indexed engine vs naive scan oracle\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench-harness --bin bench_engine\",\n");
    out.push_str("  \"unit\": \"ns per operation\",\n");
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        out.push_str(&format!("    {case}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&output, out).expect("write bench report");
    println!("wrote {output}");
}

fn run_case(name: &str, residents: u64, measure: fn(StorageUnit, u64) -> f64) -> String {
    let capacity = ByteSize::from_mib(residents * 10);
    // The indexed number is what `bench_gate` gates on, and at 10k
    // residents a single measurement window is only a few milliseconds —
    // noisy enough on a shared runner to flap a 25% tolerance. Take the
    // minimum of five fresh-fixture repetitions: noise is strictly
    // additive, so the min is the stable estimate of the true cost.
    let indexed_ns = (0..5)
        .map(|_| measure(mixed_unit(capacity, residents, 10), residents))
        .fold(f64::INFINITY, f64::min);
    let naive_ns = measure(mixed_unit_naive(capacity, residents, 10), residents);
    let speedup = naive_ns / indexed_ns;
    println!(
        "{name:<18} {residents:>7} residents: indexed {indexed_ns:>12.1} ns/op, \
         naive {naive_ns:>14.1} ns/op, speedup {speedup:>8.1}x"
    );
    format!(
        "{{ \"case\": \"{name}\", \"residents\": {residents}, \
         \"indexed_ns_per_op\": {indexed_ns:.1}, \"naive_ns_per_op\": {naive_ns:.1}, \
         \"speedup\": {speedup:.1} }}"
    )
}

/// Picks an iteration count that keeps the slow (naive, 100k) variants
/// inside a few seconds while giving the fast variants enough repetitions
/// to time reliably: calibrate with one operation, then target ~1s.
fn calibrated_ops(first_op_ns: f64, available: u64) -> u64 {
    let target_ns = 1e9;
    ((target_ns / first_op_ns.max(1.0)) as u64).clamp(8, available)
}

/// Sustained churn: each store of a same-sized full-importance object
/// preempts exactly one resident, so the population is stable and every
/// operation runs a full admission plan plus one eviction.
fn store_churn_ns(mut unit: StorageUnit, residents: u64) -> f64 {
    let mut next_id = residents;
    let mut minute = 0u64;
    let do_store = |unit: &mut StorageUnit, id: u64, minute: u64| {
        unit.store(incoming_spec(id, 10), SimTime::from_minutes(minute))
            .expect("churn store preempts one victim");
    };

    let start = Instant::now();
    next_id += 1;
    minute += 1;
    do_store(&mut unit, next_id, minute);
    let first = start.elapsed().as_nanos() as f64;

    // Preempting the whole fixture would leave only unpreemptible
    // full-importance residents; stay well inside the pool.
    let ops = calibrated_ops(first, residents / 2);
    let start = Instant::now();
    for _ in 0..ops {
        next_id += 1;
        minute += 1;
        do_store(&mut unit, next_id, minute);
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// `store_churn` with the full observability stack attached — a metrics
/// registry, a daily series recorder, and a trace sink fanned out behind
/// one handle. This is the instrumented cost `bench_gate` watches; under
/// `obs-off` the attach compiles to nothing and this case collapses to
/// `store_churn`, which is the zero-cost claim made measurable. The sink
/// drains after calibration so the measured window pays steady-state
/// buffer growth, not reallocation of a cold one.
fn store_churn_observed_ns(mut unit: StorageUnit, residents: u64) -> f64 {
    let registry = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(SeriesRecorder::new(SimDuration::DAY));
    recorder.track_counter("engine.stores");
    recorder.track_events("engine.evict", "importance_ppm", &[]);
    let sink = Arc::new(TraceSink::new());
    let sinks: Vec<Arc<dyn Observer>> = vec![registry, recorder, sink.clone()];
    unit.set_observer(Obs::attached(Arc::new(Fanout::new(sinks))));

    let mut next_id = residents;
    let mut minute = 0u64;
    let do_store = |unit: &mut StorageUnit, id: u64, minute: u64| {
        unit.store(incoming_spec(id, 10), SimTime::from_minutes(minute))
            .expect("churn store preempts one victim");
    };

    let start = Instant::now();
    next_id += 1;
    minute += 1;
    do_store(&mut unit, next_id, minute);
    let first = start.elapsed().as_nanos() as f64;
    let _ = sink.take_jsonl();

    let ops = calibrated_ops(first, residents / 2);
    let start = Instant::now();
    for _ in 0..ops {
        next_id += 1;
        minute += 1;
        do_store(&mut unit, next_id, minute);
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// The §5.3 placement probe: plan an admission without mutating the unit.
fn peek_admission_ns(unit: StorageUnit, _residents: u64) -> f64 {
    let probe = |unit: &StorageUnit| {
        unit.peek_admission(
            ByteSize::from_mib(30),
            Importance::new_clamped(0.9),
            SimTime::ZERO,
        )
    };

    let start = Instant::now();
    let _ = probe(&unit);
    let first = start.elapsed().as_nanos() as f64;

    let ops = calibrated_ops(first, u64::MAX);
    let start = Instant::now();
    for _ in 0..ops {
        std::hint::black_box(probe(&unit));
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// The dashboard loop: advance the clock a minute and resample density.
fn density_sampling_ns(mut unit: StorageUnit, _residents: u64) -> f64 {
    let mut minute = 0u64;
    let sample = |unit: &mut StorageUnit, minute: u64| {
        let now = SimTime::from_minutes(minute);
        unit.advance(now);
        unit.importance_density(now)
    };

    let start = Instant::now();
    minute += 1;
    let _ = sample(&mut unit, minute);
    let first = start.elapsed().as_nanos() as f64;

    let ops = calibrated_ops(first, u64::MAX);
    let start = Instant::now();
    for _ in 0..ops {
        minute += 1;
        std::hint::black_box(sample(&mut unit, minute));
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}
