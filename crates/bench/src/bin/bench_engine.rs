//! Indexed-versus-naive engine comparison, emitted as `BENCH_engine.json`.
//!
//! Runs the three hot paths the indexed engine accelerates — sustained
//! store churn, admission probes, and repeated density sampling — on both
//! the incremental engine and the scan-everything oracle
//! (`StorageUnit::builder(..).naive_oracle(true)`) at 10k and
//! 100k residents, and records nanoseconds per operation plus the
//! speedup. Each case also records `bytes_per_resident`: the net heap
//! growth of building the indexed fixture divided by its population, the
//! memory side of the ID-arena data layout (gated by `bench_gate` next to
//! the time-per-op columns). Run from the repository root:
//!
//! ```text
//! cargo run --release -p bench-harness --bin bench_engine
//! ```
//!
//! `--out PATH` redirects the report (CI measures into a scratch file and
//! gates it against the committed baseline with `bench_gate`);
//! `--residents N` restricts the run to one fixture size so a CI matrix
//! can parallelize across sizes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench_harness::{incoming_spec, mixed_unit, mixed_unit_naive};
use obs::{Obs, ObsStack};
use sim_core::{ByteSize, SimDuration, SimTime};
use temporal_importance::{Importance, StorageUnit};

const RESIDENT_COUNTS: [u64; 2] = [10_000, 100_000];
const OUTPUT: &str = "BENCH_engine.json";

/// A [`System`]-delegating allocator that tallies gross bytes allocated
/// and freed, so fixture construction can be measured as net heap growth.
/// Counts request sizes (not allocator-internal overhead), which is the
/// part the engine's data layout controls.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        FREED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn net_heap_bytes() -> u64 {
    ALLOCATED
        .load(Ordering::Relaxed)
        .saturating_sub(FREED.load(Ordering::Relaxed))
}

fn main() {
    let mut output = OUTPUT.to_string();
    let mut only_residents: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => output = args.next().expect("--out needs a path"),
            "--residents" => {
                let n = args.next().expect("--residents needs a count");
                only_residents = Some(n.parse().expect("--residents needs a number"));
            }
            other => panic!("unknown argument '{other}' (expected --out PATH / --residents N)"),
        }
    }

    let mut cases = Vec::new();
    for residents in RESIDENT_COUNTS {
        if only_residents.is_some_and(|only| only != residents) {
            continue;
        }
        let (plain, observed) = run_churn_pair(residents);
        cases.push(plain);
        cases.push(run_case("peek_admission", residents, peek_admission_ns));
        cases.push(run_case("density_sampling", residents, density_sampling_ns));
        cases.push(observed);
    }
    assert!(!cases.is_empty(), "--residents matched no fixture size");

    // The vendored serde_json exposes only typed (de)serialization, so the
    // report is rendered by hand.
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"indexed engine vs naive scan oracle\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench-harness --bin bench_engine\",\n");
    out.push_str("  \"unit\": \"ns per operation\",\n");
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        out.push_str(&format!("    {case}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&output, out).expect("write bench report");
    println!("wrote {output}");
}

fn run_case(name: &str, residents: u64, measure: fn(StorageUnit, u64) -> f64) -> String {
    let capacity = ByteSize::from_mib(residents * 10);
    // The indexed number is what `bench_gate` gates on, and at 10k
    // residents a single measurement window is only a few milliseconds —
    // noisy enough on a shared runner to flap a 25% tolerance. Take the
    // minimum of five fresh-fixture repetitions: noise is strictly
    // additive, so the min is the stable estimate of the true cost.
    let mut indexed_ns = f64::INFINITY;
    let mut bytes_per_resident = 0.0;
    for repetition in 0..5 {
        let before = net_heap_bytes();
        let unit = mixed_unit(capacity, residents, 10);
        if repetition == 0 {
            // Fixture heap footprint: everything the unit retains after
            // admitting `residents` objects — arena slots, dense indexes,
            // id map — measured while nothing else is being built.
            let delta = net_heap_bytes().saturating_sub(before);
            bytes_per_resident = delta as f64 / residents as f64;
        }
        indexed_ns = indexed_ns.min(measure(unit, residents));
    }
    let naive_ns = measure(mixed_unit_naive(capacity, residents, 10), residents);
    case_line(name, residents, indexed_ns, naive_ns, bytes_per_resident)
}

/// Measures plain and instrumented churn as one interleaved pair: every
/// repetition times a plain window and an observed window back-to-back,
/// so both minima come from the same load regime and the overhead ratio
/// the obs gate checks is not skewed by a background burst that happened
/// to land on only one of two far-apart measurement phases.
fn run_churn_pair(residents: u64) -> (String, String) {
    let capacity = ByteSize::from_mib(residents * 10);
    let mut plain_ns = f64::INFINITY;
    let mut observed_ns = f64::INFINITY;
    let mut bytes_per_resident = 0.0;
    for repetition in 0..5 {
        let before = net_heap_bytes();
        let unit = mixed_unit(capacity, residents, 10);
        if repetition == 0 {
            let delta = net_heap_bytes().saturating_sub(before);
            bytes_per_resident = delta as f64 / residents as f64;
        }
        plain_ns = plain_ns.min(store_churn_ns(unit, residents));
        let unit = mixed_unit(capacity, residents, 10);
        observed_ns = observed_ns.min(store_churn_observed_ns(unit, residents));
    }
    let naive_ns = store_churn_ns(mixed_unit_naive(capacity, residents, 10), residents);
    let naive_observed_ns =
        store_churn_observed_ns(mixed_unit_naive(capacity, residents, 10), residents);
    (
        case_line(
            "store_churn",
            residents,
            plain_ns,
            naive_ns,
            bytes_per_resident,
        ),
        case_line(
            "store_churn_observed",
            residents,
            observed_ns,
            naive_observed_ns,
            bytes_per_resident,
        ),
    )
}

fn case_line(
    name: &str,
    residents: u64,
    indexed_ns: f64,
    naive_ns: f64,
    bytes_per_resident: f64,
) -> String {
    let speedup = naive_ns / indexed_ns;
    println!(
        "{name:<18} {residents:>7} residents: indexed {indexed_ns:>12.1} ns/op, \
         naive {naive_ns:>14.1} ns/op, speedup {speedup:>8.1}x, \
         {bytes_per_resident:>7.1} bytes/resident"
    );
    format!(
        "{{ \"case\": \"{name}\", \"residents\": {residents}, \
         \"indexed_ns_per_op\": {indexed_ns:.1}, \"naive_ns_per_op\": {naive_ns:.1}, \
         \"speedup\": {speedup:.1}, \"bytes_per_resident\": {bytes_per_resident:.1} }}"
    )
}

/// Picks an iteration count that keeps the slow (naive, 100k) variants
/// inside a few seconds while giving the fast variants enough repetitions
/// to time reliably: calibrate with one operation, then target ~1s.
fn calibrated_ops(first_op_ns: f64, available: u64) -> u64 {
    let target_ns = 1e9;
    ((target_ns / first_op_ns.max(1.0)) as u64).clamp(8, available)
}

/// Sustained churn: each store of a same-sized full-importance object
/// preempts exactly one resident, so the population is stable and every
/// operation runs a full admission plan plus one eviction.
fn store_churn_ns(mut unit: StorageUnit, residents: u64) -> f64 {
    let mut next_id = residents;
    let mut minute = 0u64;
    let do_store = |unit: &mut StorageUnit, id: u64, minute: u64| {
        unit.store(incoming_spec(id, 10), SimTime::from_minutes(minute))
            .expect("churn store preempts one victim");
    };

    let start = Instant::now();
    next_id += 1;
    minute += 1;
    do_store(&mut unit, next_id, minute);
    let first = start.elapsed().as_nanos() as f64;

    // Preempting the whole fixture would leave only unpreemptible
    // full-importance residents; stay well inside the pool.
    let ops = calibrated_ops(first, residents / 2);
    let start = Instant::now();
    for _ in 0..ops {
        next_id += 1;
        minute += 1;
        do_store(&mut unit, next_id, minute);
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// `store_churn` with the full observability stack attached — registry,
/// daily series recorder, and trace role as one single-lock [`ObsStack`].
/// This is the instrumented cost the obs-overhead CI gate compares to the
/// plain `store_churn` row; under `obs-off` the attach compiles to nothing
/// and this case collapses to `store_churn`, which is the zero-cost claim
/// made measurable. The trace runs as a flight recorder bounded to the
/// most recent 4k events — the steady-state configuration for a
/// long-lived instrumented process, where capture cost must stay flat
/// rather than grow with the run.
fn store_churn_observed_ns(mut unit: StorageUnit, residents: u64) -> f64 {
    let stack = Arc::new(ObsStack::new(SimDuration::DAY));
    stack.track_counter("engine.stores");
    stack.track_events("engine.evict", "importance_ppm", &[]);
    stack.limit_trace(4096);
    unit.set_observer(Obs::attached(stack.clone()));

    let mut next_id = residents;
    let mut minute = 0u64;
    let do_store = |unit: &mut StorageUnit, id: u64, minute: u64| {
        unit.store(incoming_spec(id, 10), SimTime::from_minutes(minute))
            .expect("churn store preempts one victim");
    };

    let start = Instant::now();
    next_id += 1;
    minute += 1;
    do_store(&mut unit, next_id, minute);
    let first = start.elapsed().as_nanos() as f64;
    let _ = stack.take_jsonl();

    let ops = calibrated_ops(first, residents / 2);
    let start = Instant::now();
    for _ in 0..ops {
        next_id += 1;
        minute += 1;
        do_store(&mut unit, next_id, minute);
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// The §5.3 placement probe: plan an admission without mutating the unit.
fn peek_admission_ns(unit: StorageUnit, _residents: u64) -> f64 {
    let probe = |unit: &StorageUnit| {
        unit.peek_admission(
            ByteSize::from_mib(30),
            Importance::new_clamped(0.9),
            SimTime::ZERO,
        )
    };

    let start = Instant::now();
    let _ = probe(&unit);
    let first = start.elapsed().as_nanos() as f64;

    let ops = calibrated_ops(first, u64::MAX);
    let start = Instant::now();
    for _ in 0..ops {
        std::hint::black_box(probe(&unit));
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// The dashboard loop: advance the clock a minute and resample density.
fn density_sampling_ns(mut unit: StorageUnit, _residents: u64) -> f64 {
    let mut minute = 0u64;
    let sample = |unit: &mut StorageUnit, minute: u64| {
        let now = SimTime::from_minutes(minute);
        unit.advance(now);
        unit.importance_density(now)
    };

    let start = Instant::now();
    minute += 1;
    let _ = sample(&mut unit, minute);
    let first = start.elapsed().as_nanos() as f64;

    let ops = calibrated_ops(first, u64::MAX);
    let start = Instant::now();
    for _ in 0..ops {
        minute += 1;
        std::hint::black_box(sample(&mut unit, minute));
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}
