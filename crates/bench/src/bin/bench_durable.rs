//! Durable-backend cost measurement, emitted as `BENCH_durable.json`.
//!
//! Runs the two write paths the segment log adds on top of the in-memory
//! engine — a sustained append burst into a fresh log, and steady-state
//! churn with automatic compaction — and records nanoseconds per
//! operation for the journaled unit (`indexed_ns_per_op`, the gated
//! column) against the identical workload on the plain in-memory
//! `StorageUnit` (`reference_ns_per_op`, documentation only: the journal
//! can never be free). Each case also records `bytes_per_resident` (disk
//! bytes of the log per resident object at the end of the run — the
//! measure of how much file space the metadata journal costs) and
//! `write_amplification` (total bytes appended over first-write bytes;
//! compaction's survivor rewrites are the excess). Both disk columns are
//! deterministic: the workload is fixed, so only the timing columns see
//! runner noise. Run from the repository root:
//!
//! ```text
//! cargo run --release -p bench-harness --bin bench_durable
//! ```
//!
//! `--out PATH` redirects the report (CI measures into a scratch file and
//! gates it against the committed baseline with `bench_gate`).
//! `--recovery-smoke` skips measurement entirely and instead exercises
//! the crash paths end-to-end in a release build: a torn tail must
//! recover to the exact pre-corruption state, and a truncated final
//! record must drop exactly the last mutation.

use std::path::PathBuf;
use std::time::Instant;

use bench_harness::incoming_spec;
use sim_core::{ByteSize, SimDuration, SimTime};
use tempimp_durable::{DurableConfig, DurableUnit};
use temporal_importance::{
    EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit,
};

const RESIDENTS: u64 = 10_000;
/// Churn operations: each store preempts one prefilled resident, so this
/// must stay well inside the preemptible pool (see `store_churn` in
/// `bench_engine`). Fixed rather than calibrated so the disk columns are
/// deterministic run to run.
const CHURN_OPS: u64 = RESIDENTS / 2;
const REPETITIONS: u32 = 5;
const OUTPUT: &str = "BENCH_durable.json";

/// Small segments so the churn case actually rolls, seals, and compacts
/// inside the measurement window instead of living in one active file.
const SEGMENT_BYTES: u64 = 64 * 1024;

fn main() {
    let mut output = OUTPUT.to_string();
    let mut recovery_smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => output = args.next().expect("--out needs a path"),
            "--recovery-smoke" => recovery_smoke = true,
            other => panic!("unknown argument '{other}' (expected --out PATH / --recovery-smoke)"),
        }
    }
    if recovery_smoke {
        run_recovery_smoke();
        return;
    }

    let cases = [append_case(), churn_case()];

    // The vendored serde_json exposes only typed (de)serialization, so the
    // report is rendered by hand, matching the shape `bench_gate` parses.
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"durable segment-log backend vs in-memory engine\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench-harness --bin bench_durable\",\n");
    out.push_str("  \"unit\": \"ns per operation\",\n");
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        out.push_str(&format!("    {case}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&output, out).expect("write bench report");
    println!("wrote {output}");
}

/// A fresh scratch directory under the workspace `target/` (the bench
/// must not touch anything outside the repository).
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/bench-durable-scratch"
    ))
    .join(format!("{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch");
    }
    dir
}

fn config() -> DurableConfig {
    DurableConfig::default().segment_bytes(SEGMENT_BYTES)
}

/// The prefill object family of `bench_engine`'s churn fixture: fixed
/// importance cycling through ten levels, effectively non-expiring.
fn resident_spec(id: u64) -> ObjectSpec {
    ObjectSpec::new(
        ObjectId::new(id),
        ByteSize::from_mib(10),
        ImportanceCurve::Fixed {
            importance: Importance::new_clamped(0.05 + (id % 10) as f64 * 0.1),
            expiry: SimDuration::from_days(3650),
        },
    )
}

fn case_line(
    name: &str,
    durable_ns: f64,
    memory_ns: f64,
    bytes_per_resident: f64,
    write_amplification: f64,
) -> String {
    let overhead = durable_ns / memory_ns;
    println!(
        "{name:<15} {RESIDENTS:>6} residents: durable {durable_ns:>8.1} ns/op, \
         in-memory {memory_ns:>8.1} ns/op ({overhead:>5.1}x), \
         {bytes_per_resident:>7.1} disk B/resident, WA {write_amplification:.3}"
    );
    format!(
        "{{ \"case\": \"{name}\", \"residents\": {RESIDENTS}, \
         \"indexed_ns_per_op\": {durable_ns:.1}, \"reference_ns_per_op\": {memory_ns:.1}, \
         \"reference\": \"in_memory\", \"bytes_per_resident\": {bytes_per_resident:.1}, \
         \"write_amplification\": {write_amplification:.3} }}"
    )
}

/// Appending `RESIDENTS` fresh stores into an empty journaled unit — the
/// pure journal write path: serialize, frame, buffered write, flush.
/// Nothing dies, so write amplification is exactly 1.
fn append_case() -> String {
    let capacity = ByteSize::from_mib(RESIDENTS * 10);
    let mut durable_ns = f64::INFINITY;
    let mut bytes_per_resident = 0.0;
    for _ in 0..REPETITIONS {
        let dir = scratch("append");
        let mut unit = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config())
            .expect("open fresh log");
        let start = Instant::now();
        for id in 0..RESIDENTS {
            unit.store(resident_spec(id), SimTime::ZERO)
                .expect("append fits");
        }
        durable_ns = durable_ns.min(start.elapsed().as_nanos() as f64 / RESIDENTS as f64);
        bytes_per_resident = unit.disk_info().file_bytes as f64 / RESIDENTS as f64;
        drop(unit);
        std::fs::remove_dir_all(&dir).ok();
    }

    let mut memory_ns = f64::INFINITY;
    for _ in 0..REPETITIONS {
        let mut unit = StorageUnit::builder(capacity).recording(false).build();
        let start = Instant::now();
        for id in 0..RESIDENTS {
            unit.store(resident_spec(id), SimTime::ZERO)
                .expect("append fits");
        }
        memory_ns = memory_ns.min(start.elapsed().as_nanos() as f64 / RESIDENTS as f64);
    }
    case_line(
        "durable_append",
        durable_ns,
        memory_ns,
        bytes_per_resident,
        1.0,
    )
}

/// Steady-state churn on a full unit: every full-importance store
/// preempts one resident, each preemption leaves dead records behind,
/// and automatic compaction rewrites the emptiest sealed segments while
/// the measurement runs — reclamation as compaction, measured end to end.
fn churn_case() -> String {
    let capacity = ByteSize::from_mib(RESIDENTS * 10);
    let mut durable_ns = f64::INFINITY;
    let mut bytes_per_resident = 0.0;
    let mut write_amplification = 1.0;
    // Preempting half the pool leaves the sealed dead ratio just above a
    // quarter; a 0.25 trigger makes compaction fire repeatedly inside the
    // window (the default 0.5 would need a deeper kill fraction).
    let churn_config = config().compact_trigger(0.25);
    for _ in 0..REPETITIONS {
        let dir = scratch("churn");
        let mut unit = DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, churn_config)
            .expect("open fresh log");
        for id in 0..RESIDENTS {
            unit.store(resident_spec(id), SimTime::ZERO)
                .expect("prefill fits");
        }
        let start = Instant::now();
        for op in 0..CHURN_OPS {
            unit.store(
                incoming_spec(RESIDENTS + op, 10),
                SimTime::from_minutes(op + 1),
            )
            .expect("churn store preempts one victim");
        }
        durable_ns = durable_ns.min(start.elapsed().as_nanos() as f64 / CHURN_OPS as f64);
        let disk = unit.disk_info();
        assert!(
            disk.compactions > 0,
            "the churn case must exercise compaction (got {} segments, 0 compactions)",
            disk.segments
        );
        bytes_per_resident = disk.file_bytes as f64 / unit.unit().len() as f64;
        write_amplification = disk.write_amplification();
        drop(unit);
        std::fs::remove_dir_all(&dir).ok();
    }

    let mut memory_ns = f64::INFINITY;
    for _ in 0..REPETITIONS {
        let mut unit = StorageUnit::builder(capacity).recording(false).build();
        for id in 0..RESIDENTS {
            unit.store(resident_spec(id), SimTime::ZERO)
                .expect("prefill fits");
        }
        let start = Instant::now();
        for op in 0..CHURN_OPS {
            unit.store(
                incoming_spec(RESIDENTS + op, 10),
                SimTime::from_minutes(op + 1),
            )
            .expect("churn store preempts one victim");
        }
        memory_ns = memory_ns.min(start.elapsed().as_nanos() as f64 / CHURN_OPS as f64);
    }
    case_line(
        "durable_churn",
        durable_ns,
        memory_ns,
        bytes_per_resident,
        write_amplification,
    )
}

/// The CI crash-recovery smoke: both torn-tail shapes, in a release
/// build, through the public API only.
fn run_recovery_smoke() {
    let capacity = ByteSize::from_mib(4_000);
    let stores = 300u64;

    // Shape 1: garbage appended after the last complete record (the
    // write that never finished). Recovery must truncate it away and
    // reproduce the pre-corruption state exactly.
    let dir = scratch("smoke-torn");
    let mut unit =
        DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config()).expect("open");
    for id in 0..stores {
        unit.store(resident_spec(id), SimTime::from_minutes(id))
            .expect("store fits");
    }
    let before = serde_json::to_string(unit.unit()).expect("serialize state");
    drop(unit.close().expect("clean close"));

    let last = last_segment(&dir);
    let mut bytes = std::fs::read(&last).expect("read last segment");
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0x42u8; 13]);
    std::fs::write(&last, &bytes).expect("corrupt tail");

    let unit =
        DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config()).expect("recover");
    assert_eq!(unit.recovered_torn_bytes(), 13, "torn bytes truncated");
    let after = serde_json::to_string(unit.unit()).expect("serialize state");
    assert_eq!(before, after, "torn tail recovered to pre-corruption state");
    assert_eq!(
        std::fs::metadata(&last).expect("stat").len(),
        clean_len as u64,
        "tail truncated back to the last complete record"
    );
    drop(unit);
    std::fs::remove_dir_all(&dir).ok();
    println!("recovery smoke: torn tail recovered {stores} stores intact");

    // Shape 2: the final record itself cut mid-write. Recovery must drop
    // exactly that one mutation and keep everything before it.
    let dir = scratch("smoke-cut");
    let mut unit =
        DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config()).expect("open");
    for id in 0..stores {
        unit.store(resident_spec(id), SimTime::from_minutes(id))
            .expect("store fits");
    }
    drop(unit.close().expect("clean close"));

    let last = last_segment(&dir);
    let len = std::fs::metadata(&last).expect("stat").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&last)
        .expect("reopen last segment");
    file.set_len(len - 3).expect("cut final record");
    drop(file);

    let unit =
        DurableUnit::open(&dir, capacity, EvictionPolicy::Preemptive, config()).expect("recover");
    assert_eq!(
        unit.unit().len(),
        stores as usize - 1,
        "exactly the cut final store is gone"
    );
    assert!(
        unit.unit().get(ObjectId::new(stores - 1)).is_none(),
        "the dropped mutation is the last one"
    );
    assert!(
        unit.unit().get(ObjectId::new(stores - 2)).is_some(),
        "every earlier mutation survives"
    );
    drop(unit);
    std::fs::remove_dir_all(&dir).ok();
    println!("recovery smoke: cut final record dropped exactly one store");
    println!("recovery smoke: OK");
}

/// The highest-numbered segment file in a log directory.
fn last_segment(dir: &std::path::Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read log dir")
        .map(|entry| entry.expect("dir entry").path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("seg-") && name.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("log has at least one segment")
}
