//! The bench regression gate: compares a fresh `BENCH_engine.json` against
//! the committed baseline and flags slowdowns of the indexed engine.
//!
//! The report format is the fixed shape `bench_engine` emits, so parsing
//! is plain string extraction (the vendored `serde_json` is typed-only).
//! Two columns gate: `indexed_ns_per_op` (time per operation) and
//! `bytes_per_resident` (fixture heap footprint — the memory side of the
//! ID-arena layout). The reference column (`reference_ns_per_op`, with
//! the historical `naive_ns_per_op` spelling still accepted) documents
//! what the measurement is compared against — the naive scan oracle for
//! engine reports, the single-shard run for serve reports — but is not a
//! performance promise. [`obs_overheads`] additionally derives the
//! instrumentation cost from the fresh report alone, by comparing the
//! `store_churn_observed` rows against their plain `store_churn` peers,
//! and [`parse_verb_latencies`]/[`check_verb_latencies`] read and sanity-
//! check the per-verb queue-wait/service percentile rows `bench_serve`
//! derives from request-scoped trace stamps.

use std::fmt;

/// One measured case from a `BENCH_engine.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Case name (`store_churn`, `peek_admission`, `density_sampling`,
    /// `store_churn_observed`).
    pub case: String,
    /// Resident-object count of the fixture.
    pub residents: u64,
    /// Nanoseconds per operation on the indexed engine.
    pub indexed_ns_per_op: f64,
    /// Nanoseconds per operation on the reference configuration: the
    /// naive scan oracle for engine reports, the same workload forced
    /// through a single shard for serve reports. Reports label the
    /// column `reference_ns_per_op` (old reports spelled it
    /// `naive_ns_per_op`; both parse).
    pub reference_ns_per_op: f64,
    /// Net heap bytes per resident of the indexed fixture. Optional so
    /// the gate still reads reports from before the memory column.
    pub bytes_per_resident: Option<f64>,
}

impl BenchCase {
    /// The `(case, residents)` identity used to match baseline to fresh.
    pub fn key(&self) -> (&str, u64) {
        (&self.case, self.residents)
    }
}

/// A detected regression of one case beyond the tolerance, on either the
/// time or the memory column.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The offending case.
    pub case: String,
    /// Its fixture size.
    pub residents: u64,
    /// Which column regressed (`"ns/op"` or `"bytes/resident"`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub fresh: f64,
    /// `fresh / baseline` (> 1 means worse).
    pub ratio: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} residents: {:.1} {metric} -> {:.1} {metric} ({:.0}% worse)",
            self.case,
            self.residents,
            self.baseline,
            self.fresh,
            (self.ratio - 1.0) * 100.0,
            metric = self.metric,
        )
    }
}

fn extract_str<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

fn extract_num(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses every case line of a `BENCH_engine.json` report.
///
/// # Errors
///
/// Returns a message naming the malformed line if any `"case"` line is
/// missing a required field, or if the report contains no cases at all.
pub fn parse_report(json: &str) -> Result<Vec<BenchCase>, String> {
    let mut cases = Vec::new();
    for line in json.lines() {
        if !line.contains("\"case\":") {
            continue;
        }
        let parsed = (|| {
            Some(BenchCase {
                case: extract_str(line, "case")?.to_string(),
                residents: extract_num(line, "residents")? as u64,
                indexed_ns_per_op: extract_num(line, "indexed_ns_per_op")?,
                reference_ns_per_op: extract_num(line, "reference_ns_per_op")
                    .or_else(|| extract_num(line, "naive_ns_per_op"))?,
                bytes_per_resident: extract_num(line, "bytes_per_resident"),
            })
        })();
        match parsed {
            Some(case) => cases.push(case),
            None => return Err(format!("malformed bench case line: {line}")),
        }
    }
    if cases.is_empty() {
        return Err("no bench cases found in report".to_string());
    }
    Ok(cases)
}

/// Compares fresh measurements against the baseline, on both gated
/// columns.
///
/// A case's time regresses when `fresh > baseline * (1 + tolerance)`
/// **and** the absolute slowdown exceeds `min_delta_ns` (sub-100ns cases
/// on shared CI runners jitter by more than 25% from noise alone). The
/// memory column gates with the same envelope against a 64-byte floor —
/// the measurement is near-deterministic, but allocator rounding may move
/// a few bytes between runs. Baseline cases missing from the fresh report
/// count as regressions — the gate must not pass because a case silently
/// disappeared. A baseline case without a memory column skips the memory
/// check (pre-column reports stay comparable).
pub fn compare(
    baseline: &[BenchCase],
    fresh: &[BenchCase],
    tolerance: f64,
    min_delta_ns: f64,
) -> Vec<Regression> {
    const MIN_DELTA_BYTES: f64 = 64.0;
    let mut regressions = Vec::new();
    for base in baseline {
        let Some(new) = fresh.iter().find(|c| c.key() == base.key()) else {
            regressions.push(Regression {
                case: base.case.clone(),
                residents: base.residents,
                metric: "ns/op",
                baseline: base.indexed_ns_per_op,
                fresh: f64::INFINITY,
                ratio: f64::INFINITY,
            });
            continue;
        };
        let ratio = new.indexed_ns_per_op / base.indexed_ns_per_op;
        let delta = new.indexed_ns_per_op - base.indexed_ns_per_op;
        if ratio > 1.0 + tolerance && delta > min_delta_ns {
            regressions.push(Regression {
                case: base.case.clone(),
                residents: base.residents,
                metric: "ns/op",
                baseline: base.indexed_ns_per_op,
                fresh: new.indexed_ns_per_op,
                ratio,
            });
        }
        if let (Some(base_bytes), Some(new_bytes)) =
            (base.bytes_per_resident, new.bytes_per_resident)
        {
            let ratio = new_bytes / base_bytes;
            let delta = new_bytes - base_bytes;
            if ratio > 1.0 + tolerance && delta > MIN_DELTA_BYTES {
                regressions.push(Regression {
                    case: base.case.clone(),
                    residents: base.residents,
                    metric: "bytes/resident",
                    baseline: base_bytes,
                    fresh: new_bytes,
                    ratio,
                });
            }
        }
    }
    regressions
}

/// The measured instrumentation cost of one fixture size: the
/// `store_churn_observed` row against its plain `store_churn` peer.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOverhead {
    /// Resident-object count the pair was measured at.
    pub residents: u64,
    /// Plain `store_churn` ns/op.
    pub plain_ns: f64,
    /// Instrumented `store_churn_observed` ns/op.
    pub observed_ns: f64,
    /// `(observed - plain) / plain` — 0.15 means 15% overhead.
    pub overhead: f64,
}

impl fmt::Display for ObsOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "obs overhead @ {} residents: {:.1} ns/op -> {:.1} ns/op ({:+.0}%)",
            self.residents,
            self.plain_ns,
            self.observed_ns,
            self.overhead * 100.0
        )
    }
}

/// Derives the observability overhead from one report: every fixture size
/// carrying both a `store_churn` and a `store_churn_observed` row yields
/// one [`ObsOverhead`], ordered by resident count. Sizes with only one of
/// the rows contribute nothing — the caller decides whether an empty
/// result is acceptable.
pub fn obs_overheads(cases: &[BenchCase]) -> Vec<ObsOverhead> {
    let mut out: Vec<ObsOverhead> = cases
        .iter()
        .filter(|c| c.case == "store_churn")
        .filter_map(|plain| {
            let observed = cases
                .iter()
                .find(|c| c.case == "store_churn_observed" && c.residents == plain.residents)?;
            Some(ObsOverhead {
                residents: plain.residents,
                plain_ns: plain.indexed_ns_per_op,
                observed_ns: observed.indexed_ns_per_op,
                overhead: (observed.indexed_ns_per_op - plain.indexed_ns_per_op)
                    / plain.indexed_ns_per_op,
            })
        })
        .collect();
    out.sort_by_key(|o| o.residents);
    out
}

/// One per-verb latency row of a serve report: queue-wait and
/// service-time percentiles derived from request-scoped trace stamps
/// (all submissions, pipelined included — not just blocking probes).
#[derive(Debug, Clone, PartialEq)]
pub struct VerbLatencyRow {
    /// The protocol verb (`put`, `get`, …).
    pub verb: String,
    /// Requests the percentiles summarize.
    pub samples: u64,
    /// Median nanoseconds from client enqueue to batch apply.
    pub queue_wait_p50_ns: u64,
    /// Tail (p99) queue-wait nanoseconds.
    pub queue_wait_p99_ns: u64,
    /// Median engine-call nanoseconds.
    pub service_p50_ns: u64,
    /// Tail (p99) engine-call nanoseconds.
    pub service_p99_ns: u64,
}

/// Parses the `"verb_latencies"` rows of a serve report. Reports without
/// the section (engine reports, `obs-off` serve runs) yield an empty
/// vector — use [`check_verb_latencies`] to make presence mandatory.
///
/// # Errors
///
/// Returns a message naming the malformed line if a `"verb"` row is
/// missing one of its required fields.
pub fn parse_verb_latencies(json: &str) -> Result<Vec<VerbLatencyRow>, String> {
    let mut rows = Vec::new();
    for line in json.lines() {
        if !line.contains("\"verb\":") {
            continue;
        }
        let parsed = (|| {
            Some(VerbLatencyRow {
                verb: extract_str(line, "verb")?.to_string(),
                samples: extract_num(line, "samples")? as u64,
                queue_wait_p50_ns: extract_num(line, "queue_wait_p50_ns")? as u64,
                queue_wait_p99_ns: extract_num(line, "queue_wait_p99_ns")? as u64,
                service_p50_ns: extract_num(line, "service_p50_ns")? as u64,
                service_p99_ns: extract_num(line, "service_p99_ns")? as u64,
            })
        })();
        match parsed {
            Some(row) => rows.push(row),
            None => return Err(format!("malformed verb latency line: {line}")),
        }
    }
    Ok(rows)
}

/// Verifies that a serve report's verb-latency rows exist and are sane:
/// the `put` and `get` verbs (present in every serve workload) each have
/// samples, and every row's p50 never exceeds its p99 on either the
/// queue-wait or the service column. Values are deliberately not gated —
/// absolute latency on a shared runner is noise; shape and presence are
/// not.
///
/// # Errors
///
/// Returns a message naming the missing verb or the inverted percentile.
pub fn check_verb_latencies(rows: &[VerbLatencyRow]) -> Result<(), String> {
    for required in ["put", "get"] {
        let row = rows
            .iter()
            .find(|r| r.verb == required)
            .ok_or_else(|| format!("serve report has no '{required}' latency row"))?;
        if row.samples == 0 {
            return Err(format!("'{required}' latency row has zero samples"));
        }
    }
    for row in rows {
        if row.queue_wait_p50_ns > row.queue_wait_p99_ns {
            return Err(format!(
                "'{}' queue-wait p50 {} ns exceeds p99 {} ns",
                row.verb, row.queue_wait_p50_ns, row.queue_wait_p99_ns
            ));
        }
        if row.service_p50_ns > row.service_p99_ns {
            return Err(format!(
                "'{}' service p50 {} ns exceeds p99 {} ns",
                row.verb, row.service_p50_ns, row.service_p99_ns
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "benchmark": "indexed engine vs naive scan oracle",
  "command": "cargo run --release -p bench-harness --bin bench_engine",
  "unit": "ns per operation",
  "cases": [
    { "case": "store_churn", "residents": 10000, "indexed_ns_per_op": 2000.0, "naive_ns_per_op": 900000.0, "speedup": 450.0, "bytes_per_resident": 400.0 },
    { "case": "peek_admission", "residents": 10000, "indexed_ns_per_op": 800.0, "naive_ns_per_op": 800000.0, "speedup": 1000.0, "bytes_per_resident": 400.0 },
    { "case": "density_sampling", "residents": 100000, "indexed_ns_per_op": 40.0, "naive_ns_per_op": 1400000.0, "speedup": 35000.0, "bytes_per_resident": 380.0 },
    { "case": "store_churn_observed", "residents": 10000, "indexed_ns_per_op": 2300.0, "naive_ns_per_op": 900000.0, "speedup": 391.3, "bytes_per_resident": 400.0 }
  ]
}
"#;

    fn doctored(factor: f64) -> Vec<BenchCase> {
        parse_report(REPORT)
            .unwrap()
            .into_iter()
            .map(|mut c| {
                c.indexed_ns_per_op *= factor;
                c
            })
            .collect()
    }

    #[test]
    fn parses_the_report_shape_bench_engine_emits() {
        let cases = parse_report(REPORT).unwrap();
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].case, "store_churn");
        assert_eq!(cases[0].residents, 10_000);
        assert_eq!(cases[0].indexed_ns_per_op, 2000.0);
        assert_eq!(cases[0].reference_ns_per_op, 900_000.0);
        assert_eq!(cases[0].bytes_per_resident, Some(400.0));
        assert_eq!(cases[2].key(), ("density_sampling", 100_000));
    }

    #[test]
    fn self_describing_reference_column_parses_and_wins_over_legacy() {
        let serve = r#"{ "case": "serve_mixed", "residents": 8, "indexed_ns_per_op": 1963.3, "reference_ns_per_op": 1066.6, "reference": "single_shard", "scaling": 0.5 }"#;
        let cases = parse_report(serve).unwrap();
        assert_eq!(cases[0].reference_ns_per_op, 1066.6);
        // A report carrying both spellings prefers the new column.
        let both = r#"{ "case": "serve_mixed", "residents": 8, "indexed_ns_per_op": 1963.3, "reference_ns_per_op": 1066.6, "naive_ns_per_op": 42.0 }"#;
        assert_eq!(parse_report(both).unwrap()[0].reference_ns_per_op, 1066.6);
    }

    #[test]
    fn verb_latency_rows_parse_and_sanity_check() {
        let report = r#"{
  "cases": [
    { "case": "serve_mixed", "residents": 8, "indexed_ns_per_op": 1963.3, "reference_ns_per_op": 1066.6, "reference": "single_shard", "scaling": 0.5 }
  ],
  "verb_latencies": [
    { "verb": "put", "samples": 1000, "queue_wait_p50_ns": 1024, "queue_wait_p99_ns": 65536, "service_p50_ns": 2048, "service_p99_ns": 16384 },
    { "verb": "get", "samples": 500, "queue_wait_p50_ns": 512, "queue_wait_p99_ns": 32768, "service_p50_ns": 256, "service_p99_ns": 4096 }
  ]
}
"#;
        let rows = parse_verb_latencies(report).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].verb, "put");
        assert_eq!(rows[0].samples, 1000);
        assert_eq!(rows[1].queue_wait_p99_ns, 32_768);
        check_verb_latencies(&rows).unwrap();
        // Engine reports have no rows: parse is empty, check refuses.
        let empty = parse_verb_latencies(REPORT).unwrap();
        assert!(empty.is_empty());
        assert!(check_verb_latencies(&empty).is_err());
        // Inverted percentiles and zero-sample required verbs refuse.
        let mut inverted = rows.clone();
        inverted[0].queue_wait_p50_ns = 1 << 40;
        assert!(check_verb_latencies(&inverted)
            .unwrap_err()
            .contains("queue-wait"));
        let mut starved = rows.clone();
        starved[1].samples = 0;
        assert!(check_verb_latencies(&starved).unwrap_err().contains("get"));
        // A malformed row is an error, not a silent skip.
        assert!(parse_verb_latencies(r#"{ "verb": "put", "samples": 5 }"#).is_err());
    }

    #[test]
    fn parses_the_committed_serve_baseline() {
        let committed = include_str!("../../../BENCH_serve.json");
        let cases = parse_report(committed).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].case, "serve_mixed");
        assert!(cases[0].indexed_ns_per_op > 0.0);
        assert!(cases[0].reference_ns_per_op > 0.0);
        let rows = parse_verb_latencies(committed).unwrap();
        check_verb_latencies(&rows).expect("committed serve baseline carries sane verb latencies");
    }

    #[test]
    fn reports_without_the_memory_column_still_parse() {
        let legacy = r#"{ "case": "store_churn", "residents": 10000, "indexed_ns_per_op": 2000.0, "naive_ns_per_op": 900000.0, "speedup": 450.0 }"#;
        let cases = parse_report(legacy).unwrap();
        assert_eq!(cases[0].bytes_per_resident, None);
    }

    #[test]
    fn parses_the_committed_baseline() {
        // The gate must keep understanding the real committed artifact.
        let committed = include_str!("../../../BENCH_engine.json");
        let cases = parse_report(committed).unwrap();
        assert_eq!(cases.len(), 8, "committed baseline has 8 cases");
        assert!(cases.iter().all(|c| c.indexed_ns_per_op > 0.0));
        assert!(
            cases
                .iter()
                .all(|c| c.bytes_per_resident.unwrap_or(0.0) > 0.0),
            "every baseline case must carry the memory column"
        );
        for residents in [10_000, 100_000] {
            assert!(
                cases
                    .iter()
                    .any(|c| c.key() == ("store_churn_observed", residents)),
                "the observability-overhead case must stay at {residents} residents"
            );
        }
    }

    #[test]
    fn rejects_malformed_and_empty_reports() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{ \"case\": \"store_churn\" }").is_err());
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = parse_report(REPORT).unwrap();
        let fresh = doctored(1.20);
        assert!(compare(&baseline, &fresh, 0.25, 50.0).is_empty());
    }

    #[test]
    fn gate_fails_against_a_doctored_slow_run() {
        let baseline = parse_report(REPORT).unwrap();
        let fresh = doctored(2.0);
        let regressions = compare(&baseline, &fresh, 0.25, 50.0);
        // density_sampling's 40 → 80 ns delta sits under the noise floor;
        // the three macro cases must all trip the gate.
        assert_eq!(regressions.len(), 3);
        assert!(regressions.iter().any(|r| r.case == "store_churn"));
        assert!(regressions.iter().any(|r| r.case == "peek_admission"));
        assert!(regressions.iter().any(|r| r.case == "store_churn_observed"));
        assert!(regressions[0].ratio > 1.9 && regressions[0].ratio < 2.1);
        assert!(regressions[0].to_string().contains("worse"));
    }

    #[test]
    fn missing_cases_are_regressions() {
        let baseline = parse_report(REPORT).unwrap();
        let fresh = vec![baseline[0].clone()];
        let regressions = compare(&baseline, &fresh, 0.25, 50.0);
        assert_eq!(regressions.len(), 3);
        assert!(regressions.iter().all(|r| r.ratio.is_infinite()));
    }

    #[test]
    fn noise_floor_ignores_tiny_absolute_deltas() {
        let baseline = parse_report(REPORT).unwrap();
        let mut fresh = baseline.clone();
        // 40 → 70 ns is +75% but only 30 ns — noise on a shared runner.
        fresh[2].indexed_ns_per_op = 70.0;
        assert!(compare(&baseline, &fresh, 0.25, 50.0).is_empty());
        // The same ratio past the floor trips.
        fresh[2].indexed_ns_per_op = 120.0;
        assert_eq!(compare(&baseline, &fresh, 0.25, 50.0).len(), 1);
    }

    #[test]
    fn memory_column_gates_with_its_own_floor() {
        let baseline = parse_report(REPORT).unwrap();
        let mut fresh = baseline.clone();
        // +15% memory: inside tolerance.
        fresh[0].bytes_per_resident = Some(460.0);
        assert!(compare(&baseline, &fresh, 0.25, 50.0).is_empty());
        // +50% memory: trips, and reports the right column.
        fresh[0].bytes_per_resident = Some(600.0);
        let regressions = compare(&baseline, &fresh, 0.25, 50.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "bytes/resident");
        assert!(regressions[0].to_string().contains("bytes/resident"));
        // A big ratio on a tiny absolute base stays under the byte floor.
        let mut tiny = baseline.clone();
        tiny[1].bytes_per_resident = Some(20.0);
        let mut tiny_fresh = tiny.clone();
        tiny_fresh[1].bytes_per_resident = Some(60.0);
        assert!(compare(&tiny, &tiny_fresh, 0.25, 50.0).is_empty());
        // Baselines without the column skip the memory check entirely.
        let mut legacy = baseline.clone();
        legacy[0].bytes_per_resident = None;
        fresh[0].bytes_per_resident = Some(10_000.0);
        assert!(compare(&legacy, &fresh, 0.25, 50.0).is_empty());
    }

    #[test]
    fn obs_overhead_pairs_observed_with_plain_rows() {
        let cases = parse_report(REPORT).unwrap();
        let overheads = obs_overheads(&cases);
        assert_eq!(overheads.len(), 1);
        assert_eq!(overheads[0].residents, 10_000);
        assert!((overheads[0].overhead - 0.15).abs() < 1e-9);
        assert!(overheads[0].to_string().contains("+15%"));
        // An observed row without its plain peer contributes nothing.
        let orphan = vec![cases[3].clone()];
        assert!(obs_overheads(&orphan).is_empty());
    }
}
