//! The bench regression gate: compares a fresh `BENCH_engine.json` against
//! the committed baseline and flags slowdowns of the indexed engine.
//!
//! The report format is the fixed shape `bench_engine` emits, so parsing
//! is plain string extraction (the vendored `serde_json` is typed-only).
//! Only `indexed_ns_per_op` gates: the naive oracle column documents the
//! speedup but is not a performance promise.

use std::fmt;

/// One measured case from a `BENCH_engine.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Case name (`store_churn`, `peek_admission`, `density_sampling`).
    pub case: String,
    /// Resident-object count of the fixture.
    pub residents: u64,
    /// Nanoseconds per operation on the indexed engine.
    pub indexed_ns_per_op: f64,
    /// Nanoseconds per operation on the naive oracle.
    pub naive_ns_per_op: f64,
}

impl BenchCase {
    /// The `(case, residents)` identity used to match baseline to fresh.
    pub fn key(&self) -> (&str, u64) {
        (&self.case, self.residents)
    }
}

/// A detected slowdown of one case beyond the tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The offending case.
    pub case: String,
    /// Its fixture size.
    pub residents: u64,
    /// Baseline ns/op.
    pub baseline_ns: f64,
    /// Fresh ns/op.
    pub fresh_ns: f64,
    /// `fresh / baseline` (> 1 means slower).
    pub ratio: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} residents: {:.1} ns/op -> {:.1} ns/op ({:.0}% slower)",
            self.case,
            self.residents,
            self.baseline_ns,
            self.fresh_ns,
            (self.ratio - 1.0) * 100.0
        )
    }
}

fn extract_str<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

fn extract_num(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses every case line of a `BENCH_engine.json` report.
///
/// # Errors
///
/// Returns a message naming the malformed line if any `"case"` line is
/// missing a field, or if the report contains no cases at all.
pub fn parse_report(json: &str) -> Result<Vec<BenchCase>, String> {
    let mut cases = Vec::new();
    for line in json.lines() {
        if !line.contains("\"case\":") {
            continue;
        }
        let parsed = (|| {
            Some(BenchCase {
                case: extract_str(line, "case")?.to_string(),
                residents: extract_num(line, "residents")? as u64,
                indexed_ns_per_op: extract_num(line, "indexed_ns_per_op")?,
                naive_ns_per_op: extract_num(line, "naive_ns_per_op")?,
            })
        })();
        match parsed {
            Some(case) => cases.push(case),
            None => return Err(format!("malformed bench case line: {line}")),
        }
    }
    if cases.is_empty() {
        return Err("no bench cases found in report".to_string());
    }
    Ok(cases)
}

/// Compares fresh measurements against the baseline.
///
/// A case regresses when `fresh > baseline * (1 + tolerance)` **and** the
/// absolute slowdown exceeds `min_delta_ns` (sub-100ns cases on shared CI
/// runners jitter by more than 25% from noise alone). Baseline cases
/// missing from the fresh report count as regressions — the gate must not
/// pass because a case silently disappeared.
pub fn compare(
    baseline: &[BenchCase],
    fresh: &[BenchCase],
    tolerance: f64,
    min_delta_ns: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in baseline {
        let Some(new) = fresh.iter().find(|c| c.key() == base.key()) else {
            regressions.push(Regression {
                case: base.case.clone(),
                residents: base.residents,
                baseline_ns: base.indexed_ns_per_op,
                fresh_ns: f64::INFINITY,
                ratio: f64::INFINITY,
            });
            continue;
        };
        let ratio = new.indexed_ns_per_op / base.indexed_ns_per_op;
        let delta = new.indexed_ns_per_op - base.indexed_ns_per_op;
        if ratio > 1.0 + tolerance && delta > min_delta_ns {
            regressions.push(Regression {
                case: base.case.clone(),
                residents: base.residents,
                baseline_ns: base.indexed_ns_per_op,
                fresh_ns: new.indexed_ns_per_op,
                ratio,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "benchmark": "indexed engine vs naive scan oracle",
  "command": "cargo run --release -p bench-harness --bin bench_engine",
  "unit": "ns per operation",
  "cases": [
    { "case": "store_churn", "residents": 10000, "indexed_ns_per_op": 2000.0, "naive_ns_per_op": 900000.0, "speedup": 450.0 },
    { "case": "peek_admission", "residents": 10000, "indexed_ns_per_op": 800.0, "naive_ns_per_op": 800000.0, "speedup": 1000.0 },
    { "case": "density_sampling", "residents": 100000, "indexed_ns_per_op": 40.0, "naive_ns_per_op": 1400000.0, "speedup": 35000.0 }
  ]
}
"#;

    fn doctored(factor: f64) -> Vec<BenchCase> {
        parse_report(REPORT)
            .unwrap()
            .into_iter()
            .map(|mut c| {
                c.indexed_ns_per_op *= factor;
                c
            })
            .collect()
    }

    #[test]
    fn parses_the_report_shape_bench_engine_emits() {
        let cases = parse_report(REPORT).unwrap();
        assert_eq!(cases.len(), 3);
        assert_eq!(cases[0].case, "store_churn");
        assert_eq!(cases[0].residents, 10_000);
        assert_eq!(cases[0].indexed_ns_per_op, 2000.0);
        assert_eq!(cases[0].naive_ns_per_op, 900_000.0);
        assert_eq!(cases[2].key(), ("density_sampling", 100_000));
    }

    #[test]
    fn parses_the_committed_baseline() {
        // The gate must keep understanding the real committed artifact.
        let committed = include_str!("../../../BENCH_engine.json");
        let cases = parse_report(committed).unwrap();
        assert_eq!(cases.len(), 7, "committed baseline has 7 cases");
        assert!(cases.iter().all(|c| c.indexed_ns_per_op > 0.0));
        assert!(
            cases.iter().any(|c| c.case == "store_churn_observed"),
            "the observability-overhead case must stay in the baseline"
        );
    }

    #[test]
    fn rejects_malformed_and_empty_reports() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{ \"case\": \"store_churn\" }").is_err());
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = parse_report(REPORT).unwrap();
        let fresh = doctored(1.20);
        assert!(compare(&baseline, &fresh, 0.25, 50.0).is_empty());
    }

    #[test]
    fn gate_fails_against_a_doctored_slow_run() {
        let baseline = parse_report(REPORT).unwrap();
        let fresh = doctored(2.0);
        let regressions = compare(&baseline, &fresh, 0.25, 50.0);
        // density_sampling's 40 → 80 ns delta sits under the noise floor;
        // the two macro cases must both trip the gate.
        assert_eq!(regressions.len(), 2);
        assert!(regressions.iter().any(|r| r.case == "store_churn"));
        assert!(regressions.iter().any(|r| r.case == "peek_admission"));
        assert!(regressions[0].ratio > 1.9 && regressions[0].ratio < 2.1);
        assert!(regressions[0].to_string().contains("slower"));
    }

    #[test]
    fn missing_cases_are_regressions() {
        let baseline = parse_report(REPORT).unwrap();
        let fresh = vec![baseline[0].clone()];
        let regressions = compare(&baseline, &fresh, 0.25, 50.0);
        assert_eq!(regressions.len(), 2);
        assert!(regressions.iter().all(|r| r.ratio.is_infinite()));
    }

    #[test]
    fn noise_floor_ignores_tiny_absolute_deltas() {
        let baseline = parse_report(REPORT).unwrap();
        let mut fresh = baseline.clone();
        // 40 → 70 ns is +75% but only 30 ns — noise on a shared runner.
        fresh[2].indexed_ns_per_op = 70.0;
        assert!(compare(&baseline, &fresh, 0.25, 50.0).is_empty());
        // The same ratio past the floor trips.
        fresh[2].indexed_ns_per_op = 120.0;
        assert_eq!(compare(&baseline, &fresh, 0.25, 50.0).len(), 1);
    }
}
