//! The unified `StoreApi` request/response protocol.
//!
//! Every front-end to the reclamation engine — a single in-process
//! [`StorageUnit`], the lock-per-node `SharedCluster` in `besteffs`, and
//! the sharded `tempimpd` service — speaks the same five-verb protocol:
//! **put**, **get**, **advise**, **density**, **stats**. The verbs are
//! reified as the [`Request`] and [`Response`] enums so they can cross
//! thread boundaries (the `tempimpd` ingest queues carry exactly these
//! values), be recorded to a replayable request log, and be dispatched
//! through one generic entry point.
//!
//! The [`StoreApi`] trait has a single required method,
//! [`call`](StoreApi::call), which takes a request envelope and returns
//! the matching response; the verb methods ([`put`](StoreApi::put),
//! [`get`](StoreApi::get), …) are provided on top of it. Load generators
//! and differential tests are written against `StoreApi`, so the same
//! driver exercises a bare unit and a sharded service without change.
//!
//! # Examples
//!
//! ```
//! use sim_core::{ByteSize, SimDuration, SimTime};
//! use temporal_importance::protocol::StoreApi;
//! use temporal_importance::{ImportanceCurve, ObjectId, StorageUnit};
//!
//! let mut unit = StorageUnit::new(ByteSize::from_gib(1));
//! let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_days(30));
//! let outcome = unit.put(ObjectId::new(1), ByteSize::from_mib(100), curve, SimTime::ZERO)?;
//! assert!(outcome.evicted.is_empty());
//!
//! let info = unit.get_info(ObjectId::new(1), SimTime::ZERO)?.expect("stored");
//! assert_eq!(info.size, ByteSize::from_mib(100));
//! let stats = unit.store_stats(SimTime::ZERO)?;
//! assert_eq!(stats.objects, 1);
//! # Ok::<(), temporal_importance::Error>(())
//! ```

use serde::{Deserialize, Serialize};
use sim_core::fx::FxHasher;
use sim_core::{ByteSize, SimTime};
use std::hash::Hasher;

use crate::{
    Admission, Error, Importance, ImportanceCurve, ObjectClass, ObjectId, ObjectSpec, StorageUnit,
    StoreOutcome, UnitStats,
};

/// One protocol request. `Put`, `Get` and `Advise` are keyed by an
/// [`ObjectId`] and route to a single shard in sharded implementations;
/// `Density`, `Stats` and `Health` are whole-store queries that fan out
/// and aggregate.
///
/// Requests are serializable so a serving layer can keep a replayable
/// request log — the differential determinism tests record the per-shard
/// logs of a concurrent run and replay them single-threaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Store `bytes` under `id` with the given lifetime annotation.
    Put {
        /// The object id (also the routing key).
        id: ObjectId,
        /// The object's size.
        bytes: ByteSize,
        /// The temporal-importance annotation.
        curve: ImportanceCurve,
        /// The application-class tag.
        class: ObjectClass,
    },
    /// Look up an object's metadata.
    Get {
        /// The object id to look up.
        id: ObjectId,
    },
    /// Preview the admission decision for an object of this size and
    /// incoming importance, without mutating anything — the §5.3
    /// placement probe as a protocol verb. The id is the routing key: a
    /// sharded store answers for the shard the object *would* land on.
    Advise {
        /// The id the object would be stored under.
        id: ObjectId,
        /// The object's size.
        bytes: ByteSize,
        /// The importance it would enter with.
        incoming: Importance,
    },
    /// The storage importance density metric (§5.2), aggregated across
    /// shards weighted by capacity.
    Density,
    /// Lifetime counters and occupancy, aggregated across shards.
    Stats,
    /// Per-shard serving health: clock, occupancy, ingest queue depth,
    /// backpressure counters and queue-wait/service-time latency
    /// quantiles per verb. Sharded stores answer one [`ShardHealth`]
    /// entry per shard, in shard order; plain stores answer a single
    /// entry with the serving-layer fields at their inert zero values.
    Health,
}

/// Identifies one in-flight request in a serving layer's trace stream.
///
/// Ids are allocated per service from a shared counter, so they are
/// unique within a service's lifetime but carry no meaning across
/// processes — they exist to correlate a request's stage timestamps and
/// its slow-log trace events, never to address objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(u64);

impl RequestId {
    /// Wraps a raw id value.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw id value (what trace events carry in their `id` field).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Which protocol verb a [`Request`] is, detached from its payload.
///
/// Serving layers use this for everything that needs a verb after the
/// request value has been moved into a queue: building the matching
/// failure [`Response`], naming per-verb metrics, and tagging trace
/// events with a stable integer [`code`](VerbKind::code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VerbKind {
    /// [`Request::Put`].
    Put,
    /// [`Request::Get`].
    Get,
    /// [`Request::Advise`].
    Advise,
    /// [`Request::Density`].
    Density,
    /// [`Request::Stats`].
    Stats,
    /// [`Request::Health`].
    Health,
}

impl VerbKind {
    /// Every verb, in [`code`](VerbKind::code) order.
    pub const ALL: [VerbKind; 6] = [
        VerbKind::Put,
        VerbKind::Get,
        VerbKind::Advise,
        VerbKind::Density,
        VerbKind::Stats,
        VerbKind::Health,
    ];

    /// The verb of `request`.
    pub fn of(request: &Request) -> VerbKind {
        match request {
            Request::Put { .. } => VerbKind::Put,
            Request::Get { .. } => VerbKind::Get,
            Request::Advise { .. } => VerbKind::Advise,
            Request::Density => VerbKind::Density,
            Request::Stats => VerbKind::Stats,
            Request::Health => VerbKind::Health,
        }
    }

    /// The verb's lowercase wire name.
    pub const fn name(self) -> &'static str {
        match self {
            VerbKind::Put => "put",
            VerbKind::Get => "get",
            VerbKind::Advise => "advise",
            VerbKind::Density => "density",
            VerbKind::Stats => "stats",
            VerbKind::Health => "health",
        }
    }

    /// A stable integer for trace-event fields (events carry only `u64`s
    /// so traces stay byte-reproducible). Matches the position in
    /// [`VerbKind::ALL`].
    pub const fn code(self) -> u64 {
        self as u64
    }

    /// The serving-layer histogram name for this verb's queue-wait time
    /// (nanoseconds a request spent between client enqueue and batch
    /// apply).
    pub const fn queue_wait_metric(self) -> &'static str {
        match self {
            VerbKind::Put => "serve.queue_wait.put",
            VerbKind::Get => "serve.queue_wait.get",
            VerbKind::Advise => "serve.queue_wait.advise",
            VerbKind::Density => "serve.queue_wait.density",
            VerbKind::Stats => "serve.queue_wait.stats",
            VerbKind::Health => "serve.queue_wait.health",
        }
    }

    /// The serving-layer histogram name for this verb's service time
    /// (nanoseconds from batch apply to reply).
    pub const fn service_metric(self) -> &'static str {
        match self {
            VerbKind::Put => "serve.service.put",
            VerbKind::Get => "serve.service.get",
            VerbKind::Advise => "serve.service.advise",
            VerbKind::Density => "serve.service.density",
            VerbKind::Stats => "serve.service.stats",
            VerbKind::Health => "serve.service.health",
        }
    }

    /// Builds the failure response matching this verb, mirroring
    /// [`Response::failed`] for callers that no longer hold the request.
    pub fn failed(self, error: Error) -> Response {
        match self {
            VerbKind::Put => Response::Put(Err(error)),
            VerbKind::Get => Response::Get(Err(error)),
            VerbKind::Advise => Response::Advise(Err(error)),
            VerbKind::Density => Response::Density(Err(error)),
            VerbKind::Stats => Response::Stats(Err(error)),
            VerbKind::Health => Response::Health(Err(error)),
        }
    }
}

/// The metadata view of one stored object answered by [`Request::Get`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// The object's id.
    pub id: ObjectId,
    /// Its stored size.
    pub size: ByteSize,
    /// When it entered the store.
    pub arrival: SimTime,
    /// Its current importance at the request's effective time.
    pub importance: Importance,
    /// True if the annotation has expired at the request's effective time.
    pub expired: bool,
}

/// Aggregate occupancy and lifetime counters answered by
/// [`Request::Stats`]. For sharded stores every field is summed across
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Summed per-unit lifetime counters.
    pub unit: UnitStats,
    /// Bytes currently resident.
    pub used: ByteSize,
    /// Total capacity.
    pub capacity: ByteSize,
    /// Objects currently resident.
    pub objects: u64,
}

impl StoreStats {
    /// Folds another shard's stats into this aggregate.
    pub fn absorb(&mut self, other: &StoreStats) {
        let a = &mut self.unit;
        let b = &other.unit;
        a.stores_attempted += b.stores_attempted;
        a.stores_accepted += b.stores_accepted;
        a.rejections_full += b.rejections_full;
        a.rejections_too_large += b.rejections_too_large;
        a.evictions_preempted += b.evictions_preempted;
        a.evictions_expired += b.evictions_expired;
        a.removals += b.removals;
        a.bytes_accepted += b.bytes_accepted;
        a.bytes_evicted += b.bytes_evicted;
        self.used += other.used;
        self.capacity += other.capacity;
        self.objects += other.objects;
    }
}

/// The storage importance density answered by [`Request::Density`],
/// carried with the occupancy it was computed over so sharded stores can
/// aggregate exactly (capacity-weighted mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityInfo {
    /// The density value in `[0, 1]`.
    pub density: f64,
    /// The capacity it is normalized by.
    pub capacity: ByteSize,
    /// Bytes resident when it was sampled.
    pub used: ByteSize,
}

/// The serving-health aggregate answered by [`Request::Health`]: one
/// [`ShardHealth`] per shard, in shard order. A plain [`StorageUnit`]
/// answers a single entry whose serving-layer fields (queue depth,
/// request counters, latencies) sit at their inert zero values — the
/// same shape an `obs-off` build of a serving layer reports.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Per-shard health, in shard order.
    pub shards: Vec<ShardHealth>,
}

impl HealthSnapshot {
    /// Appends another store's shards (used by fan-out aggregation;
    /// entries keep their per-shard indices).
    pub fn absorb(&mut self, other: HealthSnapshot) {
        self.shards.extend(other.shards);
    }

    /// Ingest-queue depth summed across shards.
    pub fn total_queue_depth(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Requests served, summed across shards.
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }
}

/// One shard's health: engine occupancy plus the serving-layer telemetry
/// of its worker (queue depth, throughput counters, latency quantiles).
///
/// The engine-side fields (`clock`, `residents`, `used`, `capacity`) are
/// always live; the serving-layer fields are zero/empty when answered by
/// a non-serving store or by a serving layer compiled with `obs-off`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// The shard index.
    pub shard: u32,
    /// The shard's effective clock at the time of the answer.
    pub clock: SimTime,
    /// Objects resident on the shard.
    pub residents: u64,
    /// Bytes resident.
    pub used: ByteSize,
    /// The shard's capacity.
    pub capacity: ByteSize,
    /// Requests waiting in the shard's ingest queue when the health
    /// request was applied (zero for non-queued stores).
    pub queue_depth: u64,
    /// Requests the shard worker has completed.
    pub requests: u64,
    /// Batches the shard worker has drained.
    pub batches: u64,
    /// Requests rejected with a full-queue backpressure error.
    pub rejected: u64,
    /// Queue-wait/service-time quantiles per verb, for verbs with at
    /// least one sample. Empty when tracing is off (`obs-off`).
    pub latencies: Vec<VerbLatency>,
}

/// Bucket-resolution latency quantiles for one verb on one shard,
/// derived from the request-scoped stage timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerbLatency {
    /// The verb.
    pub verb: VerbKind,
    /// Samples behind the quantiles.
    pub samples: u64,
    /// Median nanoseconds between client enqueue and batch apply.
    pub queue_wait_p50_ns: u64,
    /// 99th-percentile queue-wait nanoseconds.
    pub queue_wait_p99_ns: u64,
    /// Median nanoseconds between batch apply and reply.
    pub service_p50_ns: u64,
    /// 99th-percentile service nanoseconds.
    pub service_p99_ns: u64,
}

/// One protocol response. Every variant carries a `Result` because a
/// serving layer can fail any request for reasons the engine never sees —
/// a dead shard, a full ingest queue, a disconnected worker — and those
/// failures surface as the service variants of [`Error`].
#[derive(Debug)]
pub enum Response {
    /// Answer to [`Request::Put`].
    Put(Result<StoreOutcome, Error>),
    /// Answer to [`Request::Get`].
    Get(Result<Option<ObjectInfo>, Error>),
    /// Answer to [`Request::Advise`].
    Advise(Result<Admission, Error>),
    /// Answer to [`Request::Density`].
    Density(Result<DensityInfo, Error>),
    /// Answer to [`Request::Stats`].
    Stats(Result<StoreStats, Error>),
    /// Answer to [`Request::Health`].
    Health(Result<HealthSnapshot, Error>),
}

impl Response {
    /// Builds the failure response matching `request`'s variant, so a
    /// transport error surfaces through the same shape a success would.
    pub fn failed(request: &Request, error: Error) -> Response {
        VerbKind::of(request).failed(error)
    }
}

/// The unified store interface: one [`call`](StoreApi::call) entry point
/// dispatching [`Request`]s, with typed verb methods provided on top.
///
/// Implementations must answer each request variant with the matching
/// response variant; the verb methods panic on a mismatch, which is a
/// protocol bug in the implementation, never a runtime condition.
pub trait StoreApi {
    /// Dispatches one request at simulated instant `now`.
    ///
    /// Serving layers may coalesce `now` forward (never backward) to a
    /// batch drain time; callers must treat `now` as a lower bound on the
    /// effective time of the operation.
    fn call(&mut self, now: SimTime, request: Request) -> Response;

    /// Stores `bytes` under `id` with the given annotation.
    ///
    /// # Errors
    ///
    /// [`Error::Store`] when the engine refuses the object, or a service
    /// variant when the serving layer cannot reach the shard.
    fn put(
        &mut self,
        id: ObjectId,
        bytes: ByteSize,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<StoreOutcome, Error> {
        let request = Request::Put {
            id,
            bytes,
            curve,
            class: ObjectClass::GENERIC,
        };
        match self.call(now, request) {
            Response::Put(result) => result,
            other => panic!("protocol violation: Put answered with {other:?}"),
        }
    }

    /// Looks up an object's metadata; `Ok(None)` means not stored.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when the shard is unreachable.
    fn get_info(&mut self, id: ObjectId, now: SimTime) -> Result<Option<ObjectInfo>, Error> {
        match self.call(now, Request::Get { id }) {
            Response::Get(result) => result,
            other => panic!("protocol violation: Get answered with {other:?}"),
        }
    }

    /// Previews the admission decision for an object of this size and
    /// incoming importance, routed as `id` would be.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when the shard is unreachable.
    fn advise(
        &mut self,
        id: ObjectId,
        bytes: ByteSize,
        incoming: Importance,
        now: SimTime,
    ) -> Result<Admission, Error> {
        match self.call(
            now,
            Request::Advise {
                id,
                bytes,
                incoming,
            },
        ) {
            Response::Advise(result) => result,
            other => panic!("protocol violation: Advise answered with {other:?}"),
        }
    }

    /// The storage importance density, aggregated across shards.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when any shard is unreachable.
    fn density_info(&mut self, now: SimTime) -> Result<DensityInfo, Error> {
        match self.call(now, Request::Density) {
            Response::Density(result) => result,
            other => panic!("protocol violation: Density answered with {other:?}"),
        }
    }

    /// Aggregate lifetime counters and occupancy.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when any shard is unreachable.
    fn store_stats(&mut self, now: SimTime) -> Result<StoreStats, Error> {
        match self.call(now, Request::Stats) {
            Response::Stats(result) => result,
            other => panic!("protocol violation: Stats answered with {other:?}"),
        }
    }

    /// Per-shard serving health: clock, occupancy, queue depth and
    /// latency quantiles per verb (see [`HealthSnapshot`]).
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when any shard is unreachable.
    fn health(&mut self, now: SimTime) -> Result<HealthSnapshot, Error> {
        match self.call(now, Request::Health) {
            Response::Health(result) => result,
            other => panic!("protocol violation: Health answered with {other:?}"),
        }
    }
}

/// Which routing function a [`ShardRouter`] applies.
///
/// Route stability is a compatibility contract: a recorded request log
/// only finds its objects on replay if every id maps to the same shard it
/// mapped to when the log was written. The routing function is therefore
/// *versioned* — improving the hash must never silently re-home existing
/// deployments, so [`ShardRouter::new`] stays pinned to [`V1`] and the
/// better-mixed [`V2`] is opt-in via [`ShardRouter::versioned`].
///
/// [`V1`]: RouterVersion::V1
/// [`V2`]: RouterVersion::V2
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouterVersion {
    /// The original mapping: [`FxHasher`] over the raw id, reduced with
    /// `% shards`.
    ///
    /// FxHash is a multiply-rotate hash whose final step is a wrapping
    /// multiply by an odd constant — strong in the *high* bits but only
    /// lightly mixed in the low ones, and `%` keeps low-bit structure
    /// whenever the shard count is not a power of two (the modulo of a
    /// weakly-mixed value inherits its bias). In practice sequential ids
    /// spread acceptably, but adversarially-shaped id sets can stripe.
    /// Kept bit-for-bit stable as the compatibility default.
    #[default]
    V1,
    /// A finalizer-mixed mapping for new deployments: the id is run
    /// through the splitmix64 finalizer (two xor-shift-multiply rounds,
    /// every output bit depends on every input bit), then reduced with
    /// Lemire's widening multiply `(mix × shards) >> 64`, which consumes
    /// the well-mixed *high* bits and has no power-of-two bias.
    V2,
}

/// Deterministic, total object-to-shard routing shared by every sharded
/// [`StoreApi`] implementor.
///
/// The raw id is mixed before reduction so that sequentially allocated
/// ids (the common case — [`crate::ObjectIdGen`] counts up) spread across
/// shards instead of striping, and the mapping is a pure function of
/// `(id, shards, version)`: two routers with the same shard count and
/// [`RouterVersion`] agree on every id, across processes and across runs.
/// See [`RouterVersion`] for the compatibility contract and the bias
/// trade-off between the two functions.
///
/// # Examples
///
/// ```
/// use temporal_importance::protocol::{RouterVersion, ShardRouter};
/// use temporal_importance::ObjectId;
///
/// let router = ShardRouter::new(8);
/// let shard = router.route(ObjectId::new(42));
/// assert!(shard < 8);
/// assert_eq!(shard, ShardRouter::new(8).route(ObjectId::new(42)));
///
/// let mixed = ShardRouter::versioned(6, RouterVersion::V2);
/// assert!(mixed.route(ObjectId::new(42)) < 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    shards: u32,
    /// Defaults on deserialization so routers persisted before versioning
    /// existed come back as the [`RouterVersion::V1`] they were.
    #[serde(default)]
    version: RouterVersion,
}

impl ShardRouter {
    /// A router over `shards` shards with the stable [`RouterVersion::V1`]
    /// mapping — the compatibility default every existing log and
    /// deployment was recorded under.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> Self {
        ShardRouter::versioned(shards, RouterVersion::V1)
    }

    /// A router over `shards` shards with an explicit routing function.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn versioned(shards: u32, version: RouterVersion) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        ShardRouter { shards, version }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The routing function this router applies.
    pub fn version(&self) -> RouterVersion {
        self.version
    }

    /// The shard `id` lives on: always in `0..shards()`.
    pub fn route(&self, id: ObjectId) -> u32 {
        match self.version {
            RouterVersion::V1 => {
                let mut hasher = FxHasher::default();
                hasher.write_u64(id.raw());
                (hasher.finish() % u64::from(self.shards)) as u32
            }
            RouterVersion::V2 => {
                // splitmix64 finalizer, then Lemire's multiply-shift
                // reduction over the high bits.
                let mut mix = id.raw();
                mix = (mix ^ (mix >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                mix = (mix ^ (mix >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                mix ^= mix >> 31;
                ((u128::from(mix) * u128::from(self.shards)) >> 64) as u32
            }
        }
    }
}

impl StoreApi for StorageUnit {
    fn call(&mut self, now: SimTime, request: Request) -> Response {
        match request {
            Request::Put {
                id,
                bytes,
                curve,
                class,
            } => {
                let spec = ObjectSpec::new(id, bytes, curve).with_class(class);
                Response::Put(self.store(spec, now).map_err(Error::from))
            }
            Request::Get { id } => {
                self.advance(now);
                let info = self.get(id).map(|object| ObjectInfo {
                    id: object.id(),
                    size: object.size(),
                    arrival: object.arrival(),
                    importance: object.current_importance(now),
                    expired: object.is_expired(now),
                });
                Response::Get(Ok(info))
            }
            Request::Advise {
                id: _,
                bytes,
                incoming,
            } => {
                // A single unit is its own shard; the routing key is moot.
                self.advance(now);
                Response::Advise(Ok(self.peek_admission(bytes, incoming, now)))
            }
            Request::Density => {
                self.advance(now);
                Response::Density(Ok(DensityInfo {
                    density: self.importance_density(now),
                    capacity: self.capacity(),
                    used: self.used(),
                }))
            }
            Request::Stats => Response::Stats(Ok(StoreStats {
                unit: *self.stats(),
                used: self.used(),
                capacity: self.capacity(),
                objects: self.len() as u64,
            })),
            Request::Health => {
                self.advance(now);
                // A bare unit is its own single shard; the serving-layer
                // fields report their inert zeroes. Serving layers call
                // through to this arm (so clock/occupancy side effects
                // replay identically) and then fill in worker telemetry.
                Response::Health(Ok(HealthSnapshot {
                    shards: vec![ShardHealth {
                        shard: 0,
                        clock: now,
                        residents: self.len() as u64,
                        used: self.used(),
                        capacity: self.capacity(),
                        queue_depth: 0,
                        requests: 0,
                        batches: 0,
                        rejected: 0,
                        latencies: Vec::new(),
                    }],
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn curve(days: u64) -> ImportanceCurve {
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(days))
    }

    #[test]
    fn unit_speaks_the_protocol_end_to_end() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(100));
        let outcome = unit
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(60),
                curve(30),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(outcome.evicted.is_empty());

        let info = unit
            .get_info(ObjectId::new(1), SimTime::ZERO)
            .unwrap()
            .expect("stored");
        assert_eq!(info.size, ByteSize::from_mib(60));
        assert_eq!(info.importance, Importance::FULL);
        assert!(!info.expired);
        assert!(unit
            .get_info(ObjectId::new(2), SimTime::ZERO)
            .unwrap()
            .is_none());

        let advice = unit
            .advise(
                ObjectId::new(2),
                ByteSize::from_mib(30),
                Importance::FULL,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(advice.is_admitted());

        let density = unit.density_info(SimTime::ZERO).unwrap();
        assert!(density.density > 0.0);
        assert_eq!(density.used, ByteSize::from_mib(60));

        let stats = unit.store_stats(SimTime::ZERO).unwrap();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.unit.stores_accepted, 1);
        assert_eq!(stats.capacity, ByteSize::from_mib(100));
    }

    #[test]
    fn engine_refusals_surface_as_store_errors() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(10));
        unit.put(
            ObjectId::new(1),
            ByteSize::from_mib(10),
            curve(30),
            SimTime::ZERO,
        )
        .unwrap();
        let err = unit
            .put(
                ObjectId::new(2),
                ByteSize::from_mib(10),
                curve(30),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Store(crate::StoreError::Full { .. })));
    }

    #[test]
    fn failed_builds_the_matching_variant() {
        let req = Request::Get {
            id: ObjectId::new(1),
        };
        match Response::failed(&req, Error::Disconnected) {
            Response::Get(Err(Error::Disconnected)) => {}
            other => panic!("wrong variant: {other:?}"),
        }
        match Response::failed(&Request::Density, Error::Disconnected) {
            Response::Density(Err(Error::Disconnected)) => {}
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn health_answers_a_single_inert_shard() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(100));
        unit.put(
            ObjectId::new(1),
            ByteSize::from_mib(40),
            curve(30),
            SimTime::ZERO,
        )
        .unwrap();
        let snapshot = unit.health(SimTime::from_days(1)).unwrap();
        assert_eq!(snapshot.shards.len(), 1);
        let shard = &snapshot.shards[0];
        assert_eq!(shard.shard, 0);
        assert_eq!(shard.clock, SimTime::from_days(1));
        assert_eq!(shard.residents, 1);
        assert_eq!(shard.used, ByteSize::from_mib(40));
        assert_eq!(shard.capacity, ByteSize::from_mib(100));
        // Serving-layer fields are inert on a bare unit.
        assert_eq!(shard.queue_depth, 0);
        assert_eq!(shard.requests, 0);
        assert_eq!(shard.rejected, 0);
        assert!(shard.latencies.is_empty());
        assert_eq!(snapshot.total_queue_depth(), 0);
        assert_eq!(snapshot.total_requests(), 0);
    }

    #[test]
    fn verb_kinds_cover_every_request_and_response() {
        let requests = [
            Request::Put {
                id: ObjectId::new(1),
                bytes: ByteSize::from_mib(1),
                curve: curve(30),
                class: ObjectClass::GENERIC,
            },
            Request::Get {
                id: ObjectId::new(1),
            },
            Request::Advise {
                id: ObjectId::new(1),
                bytes: ByteSize::from_mib(1),
                incoming: Importance::FULL,
            },
            Request::Density,
            Request::Stats,
            Request::Health,
        ];
        for (request, &verb) in requests.iter().zip(VerbKind::ALL.iter()) {
            assert_eq!(VerbKind::of(request), verb);
            assert_eq!(VerbKind::ALL[verb.code() as usize], verb);
            assert!(verb.queue_wait_metric().ends_with(verb.name()));
            assert!(verb.service_metric().ends_with(verb.name()));
            // VerbKind::failed and Response::failed agree on the variant.
            let from_kind = format!("{:?}", verb.failed(Error::Disconnected));
            let from_request = format!("{:?}", Response::failed(request, Error::Disconnected));
            assert_eq!(from_kind, from_request);
        }
    }

    #[test]
    fn health_snapshots_absorb_by_concatenation() {
        let shard = |index: u32| ShardHealth {
            shard: index,
            clock: SimTime::ZERO,
            residents: 1,
            used: ByteSize::from_mib(1),
            capacity: ByteSize::from_mib(2),
            queue_depth: u64::from(index),
            requests: 10,
            batches: 2,
            rejected: 0,
            latencies: Vec::new(),
        };
        let mut total = HealthSnapshot {
            shards: vec![shard(0)],
        };
        total.absorb(HealthSnapshot {
            shards: vec![shard(1), shard(2)],
        });
        assert_eq!(total.shards.len(), 3);
        assert_eq!(total.total_queue_depth(), 3);
        assert_eq!(total.total_requests(), 30);
        assert_eq!(
            total.shards.iter().map(|s| s.shard).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn router_is_total_and_deterministic() {
        let router = ShardRouter::new(8);
        for raw in 0..10_000u64 {
            let shard = router.route(ObjectId::new(raw));
            assert!(shard < 8);
            assert_eq!(shard, router.route(ObjectId::new(raw)));
        }
        // Sequential ids spread rather than stripe: all shards populated
        // well before 10k ids.
        let mut seen = vec![0u64; 8];
        for raw in 0..64u64 {
            seen[router.route(ObjectId::new(raw)) as usize] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "64 ids left a shard empty: {seen:?}"
        );
    }

    #[test]
    fn v2_router_is_total_deterministic_and_unbiased_off_powers_of_two() {
        // Seven shards — the non-power-of-two case where V1's `%` keeps
        // whatever low-bit structure the hash left behind.
        let router = ShardRouter::versioned(7, RouterVersion::V2);
        for raw in 0..10_000u64 {
            let shard = router.route(ObjectId::new(raw));
            assert!(shard < 7);
            assert_eq!(shard, router.route(ObjectId::new(raw)));
        }
        // Distribution check over structured ids (sequential, strided, and
        // high-bit-tagged — the shapes real clients allocate): every shard
        // stays within 20% of the uniform share.
        for stride in [1u64, 8, 1 << 32] {
            let mut seen = vec![0u64; 7];
            let per_shard = 70_000 / 7;
            for raw in 0..70_000u64 {
                seen[router.route(ObjectId::new(raw * stride)) as usize] += 1;
            }
            for (shard, &count) in seen.iter().enumerate() {
                let skew = (count as f64 - per_shard as f64).abs() / per_shard as f64;
                assert!(
                    skew < 0.2,
                    "stride {stride}: shard {shard} holds {count} of {per_shard} expected \
                     ({seen:?})"
                );
            }
        }
    }

    #[test]
    fn router_versions_are_independent_and_v1_stays_default() {
        assert_eq!(ShardRouter::new(6).version(), RouterVersion::V1);
        assert_eq!(
            ShardRouter::new(6),
            ShardRouter::versioned(6, RouterVersion::V1)
        );
        // Same ids, same shard count, different functions — the versions
        // must actually disagree somewhere, or V2 is a no-op rename.
        let v1 = ShardRouter::new(6);
        let v2 = ShardRouter::versioned(6, RouterVersion::V2);
        assert!(
            (0..1_000u64).any(|raw| v1.route(ObjectId::new(raw)) != v2.route(ObjectId::new(raw))),
            "V1 and V2 agree on every probe id"
        );
    }

    #[test]
    fn routers_persisted_before_versioning_deserialize_as_v1() {
        // A pre-versioning serialized router has no `version` field; it
        // must come back as the V1 it was recorded under (the route-
        // stability compatibility contract).
        let old: ShardRouter = serde_json::from_str("{\"shards\":6}").unwrap();
        assert_eq!(old, ShardRouter::new(6));
        // And a round trip through the current shape is lossless.
        let v2 = ShardRouter::versioned(6, RouterVersion::V2);
        let json = serde_json::to_string(&v2).unwrap();
        assert_eq!(serde_json::from_str::<ShardRouter>(&json).unwrap(), v2);
    }

    #[test]
    fn stats_absorb_sums_every_field() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(50));
        unit.put(
            ObjectId::new(1),
            ByteSize::from_mib(10),
            curve(30),
            SimTime::ZERO,
        )
        .unwrap();
        let one = unit.store_stats(SimTime::ZERO).unwrap();
        let mut total = StoreStats::default();
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.objects, 2);
        assert_eq!(total.unit.stores_accepted, 2);
        assert_eq!(total.used, ByteSize::from_mib(20));
        assert_eq!(total.capacity, ByteSize::from_mib(100));
    }
}
