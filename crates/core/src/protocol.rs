//! The unified `StoreApi` request/response protocol.
//!
//! Every front-end to the reclamation engine — a single in-process
//! [`StorageUnit`], the lock-per-node `SharedCluster` in `besteffs`, and
//! the sharded `tempimpd` service — speaks the same five-verb protocol:
//! **put**, **get**, **advise**, **density**, **stats**. The verbs are
//! reified as the [`Request`] and [`Response`] enums so they can cross
//! thread boundaries (the `tempimpd` ingest queues carry exactly these
//! values), be recorded to a replayable request log, and be dispatched
//! through one generic entry point.
//!
//! The [`StoreApi`] trait has a single required method,
//! [`call`](StoreApi::call), which takes a request envelope and returns
//! the matching response; the verb methods ([`put`](StoreApi::put),
//! [`get`](StoreApi::get), …) are provided on top of it. Load generators
//! and differential tests are written against `StoreApi`, so the same
//! driver exercises a bare unit and a sharded service without change.
//!
//! # Examples
//!
//! ```
//! use sim_core::{ByteSize, SimDuration, SimTime};
//! use temporal_importance::protocol::StoreApi;
//! use temporal_importance::{ImportanceCurve, ObjectId, StorageUnit};
//!
//! let mut unit = StorageUnit::new(ByteSize::from_gib(1));
//! let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_days(30));
//! let outcome = unit.put(ObjectId::new(1), ByteSize::from_mib(100), curve, SimTime::ZERO)?;
//! assert!(outcome.evicted.is_empty());
//!
//! let info = unit.get_info(ObjectId::new(1), SimTime::ZERO)?.expect("stored");
//! assert_eq!(info.size, ByteSize::from_mib(100));
//! let stats = unit.store_stats(SimTime::ZERO)?;
//! assert_eq!(stats.objects, 1);
//! # Ok::<(), temporal_importance::Error>(())
//! ```

use serde::{Deserialize, Serialize};
use sim_core::fx::FxHasher;
use sim_core::{ByteSize, SimTime};
use std::hash::Hasher;

use crate::{
    Admission, Error, Importance, ImportanceCurve, ObjectClass, ObjectId, ObjectSpec, StorageUnit,
    StoreOutcome, UnitStats,
};

/// One protocol request. `Put`, `Get` and `Advise` are keyed by an
/// [`ObjectId`] and route to a single shard in sharded implementations;
/// `Density` and `Stats` are whole-store queries that fan out and
/// aggregate.
///
/// Requests are serializable so a serving layer can keep a replayable
/// request log — the differential determinism tests record the per-shard
/// logs of a concurrent run and replay them single-threaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Store `bytes` under `id` with the given lifetime annotation.
    Put {
        /// The object id (also the routing key).
        id: ObjectId,
        /// The object's size.
        bytes: ByteSize,
        /// The temporal-importance annotation.
        curve: ImportanceCurve,
        /// The application-class tag.
        class: ObjectClass,
    },
    /// Look up an object's metadata.
    Get {
        /// The object id to look up.
        id: ObjectId,
    },
    /// Preview the admission decision for an object of this size and
    /// incoming importance, without mutating anything — the §5.3
    /// placement probe as a protocol verb. The id is the routing key: a
    /// sharded store answers for the shard the object *would* land on.
    Advise {
        /// The id the object would be stored under.
        id: ObjectId,
        /// The object's size.
        bytes: ByteSize,
        /// The importance it would enter with.
        incoming: Importance,
    },
    /// The storage importance density metric (§5.2), aggregated across
    /// shards weighted by capacity.
    Density,
    /// Lifetime counters and occupancy, aggregated across shards.
    Stats,
}

/// The metadata view of one stored object answered by [`Request::Get`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectInfo {
    /// The object's id.
    pub id: ObjectId,
    /// Its stored size.
    pub size: ByteSize,
    /// When it entered the store.
    pub arrival: SimTime,
    /// Its current importance at the request's effective time.
    pub importance: Importance,
    /// True if the annotation has expired at the request's effective time.
    pub expired: bool,
}

/// Aggregate occupancy and lifetime counters answered by
/// [`Request::Stats`]. For sharded stores every field is summed across
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Summed per-unit lifetime counters.
    pub unit: UnitStats,
    /// Bytes currently resident.
    pub used: ByteSize,
    /// Total capacity.
    pub capacity: ByteSize,
    /// Objects currently resident.
    pub objects: u64,
}

impl StoreStats {
    /// Folds another shard's stats into this aggregate.
    pub fn absorb(&mut self, other: &StoreStats) {
        let a = &mut self.unit;
        let b = &other.unit;
        a.stores_attempted += b.stores_attempted;
        a.stores_accepted += b.stores_accepted;
        a.rejections_full += b.rejections_full;
        a.rejections_too_large += b.rejections_too_large;
        a.evictions_preempted += b.evictions_preempted;
        a.evictions_expired += b.evictions_expired;
        a.removals += b.removals;
        a.bytes_accepted += b.bytes_accepted;
        a.bytes_evicted += b.bytes_evicted;
        self.used += other.used;
        self.capacity += other.capacity;
        self.objects += other.objects;
    }
}

/// The storage importance density answered by [`Request::Density`],
/// carried with the occupancy it was computed over so sharded stores can
/// aggregate exactly (capacity-weighted mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityInfo {
    /// The density value in `[0, 1]`.
    pub density: f64,
    /// The capacity it is normalized by.
    pub capacity: ByteSize,
    /// Bytes resident when it was sampled.
    pub used: ByteSize,
}

/// One protocol response. Every variant carries a `Result` because a
/// serving layer can fail any request for reasons the engine never sees —
/// a dead shard, a full ingest queue, a disconnected worker — and those
/// failures surface as the service variants of [`Error`].
#[derive(Debug)]
pub enum Response {
    /// Answer to [`Request::Put`].
    Put(Result<StoreOutcome, Error>),
    /// Answer to [`Request::Get`].
    Get(Result<Option<ObjectInfo>, Error>),
    /// Answer to [`Request::Advise`].
    Advise(Result<Admission, Error>),
    /// Answer to [`Request::Density`].
    Density(Result<DensityInfo, Error>),
    /// Answer to [`Request::Stats`].
    Stats(Result<StoreStats, Error>),
}

impl Response {
    /// Builds the failure response matching `request`'s variant, so a
    /// transport error surfaces through the same shape a success would.
    pub fn failed(request: &Request, error: Error) -> Response {
        match request {
            Request::Put { .. } => Response::Put(Err(error)),
            Request::Get { .. } => Response::Get(Err(error)),
            Request::Advise { .. } => Response::Advise(Err(error)),
            Request::Density => Response::Density(Err(error)),
            Request::Stats => Response::Stats(Err(error)),
        }
    }
}

/// The unified store interface: one [`call`](StoreApi::call) entry point
/// dispatching [`Request`]s, with typed verb methods provided on top.
///
/// Implementations must answer each request variant with the matching
/// response variant; the verb methods panic on a mismatch, which is a
/// protocol bug in the implementation, never a runtime condition.
pub trait StoreApi {
    /// Dispatches one request at simulated instant `now`.
    ///
    /// Serving layers may coalesce `now` forward (never backward) to a
    /// batch drain time; callers must treat `now` as a lower bound on the
    /// effective time of the operation.
    fn call(&mut self, now: SimTime, request: Request) -> Response;

    /// Stores `bytes` under `id` with the given annotation.
    ///
    /// # Errors
    ///
    /// [`Error::Store`] when the engine refuses the object, or a service
    /// variant when the serving layer cannot reach the shard.
    fn put(
        &mut self,
        id: ObjectId,
        bytes: ByteSize,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<StoreOutcome, Error> {
        let request = Request::Put {
            id,
            bytes,
            curve,
            class: ObjectClass::GENERIC,
        };
        match self.call(now, request) {
            Response::Put(result) => result,
            other => panic!("protocol violation: Put answered with {other:?}"),
        }
    }

    /// Looks up an object's metadata; `Ok(None)` means not stored.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when the shard is unreachable.
    fn get_info(&mut self, id: ObjectId, now: SimTime) -> Result<Option<ObjectInfo>, Error> {
        match self.call(now, Request::Get { id }) {
            Response::Get(result) => result,
            other => panic!("protocol violation: Get answered with {other:?}"),
        }
    }

    /// Previews the admission decision for an object of this size and
    /// incoming importance, routed as `id` would be.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when the shard is unreachable.
    fn advise(
        &mut self,
        id: ObjectId,
        bytes: ByteSize,
        incoming: Importance,
        now: SimTime,
    ) -> Result<Admission, Error> {
        match self.call(
            now,
            Request::Advise {
                id,
                bytes,
                incoming,
            },
        ) {
            Response::Advise(result) => result,
            other => panic!("protocol violation: Advise answered with {other:?}"),
        }
    }

    /// The storage importance density, aggregated across shards.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when any shard is unreachable.
    fn density_info(&mut self, now: SimTime) -> Result<DensityInfo, Error> {
        match self.call(now, Request::Density) {
            Response::Density(result) => result,
            other => panic!("protocol violation: Density answered with {other:?}"),
        }
    }

    /// Aggregate lifetime counters and occupancy.
    ///
    /// # Errors
    ///
    /// A service variant of [`Error`] when any shard is unreachable.
    fn store_stats(&mut self, now: SimTime) -> Result<StoreStats, Error> {
        match self.call(now, Request::Stats) {
            Response::Stats(result) => result,
            other => panic!("protocol violation: Stats answered with {other:?}"),
        }
    }
}

/// Deterministic, total object-to-shard routing shared by every sharded
/// [`StoreApi`] implementor.
///
/// The raw id is mixed through [`FxHasher`] before the modulo so that
/// sequentially allocated ids (the common case — [`crate::ObjectIdGen`]
/// counts up) spread across shards instead of striping, and the mapping is
/// a pure function of `(id, shards)`: two routers with the same shard
/// count agree on every id, across processes and across runs.
///
/// # Examples
///
/// ```
/// use temporal_importance::protocol::ShardRouter;
/// use temporal_importance::ObjectId;
///
/// let router = ShardRouter::new(8);
/// let shard = router.route(ObjectId::new(42));
/// assert!(shard < 8);
/// assert_eq!(shard, ShardRouter::new(8).route(ObjectId::new(42)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        ShardRouter { shards }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard `id` lives on: always in `0..shards()`.
    pub fn route(&self, id: ObjectId) -> u32 {
        let mut hasher = FxHasher::default();
        hasher.write_u64(id.raw());
        (hasher.finish() % u64::from(self.shards)) as u32
    }
}

impl StoreApi for StorageUnit {
    fn call(&mut self, now: SimTime, request: Request) -> Response {
        match request {
            Request::Put {
                id,
                bytes,
                curve,
                class,
            } => {
                let spec = ObjectSpec::new(id, bytes, curve).with_class(class);
                Response::Put(self.store(spec, now).map_err(Error::from))
            }
            Request::Get { id } => {
                self.advance(now);
                let info = self.get(id).map(|object| ObjectInfo {
                    id: object.id(),
                    size: object.size(),
                    arrival: object.arrival(),
                    importance: object.current_importance(now),
                    expired: object.is_expired(now),
                });
                Response::Get(Ok(info))
            }
            Request::Advise {
                id: _,
                bytes,
                incoming,
            } => {
                // A single unit is its own shard; the routing key is moot.
                self.advance(now);
                Response::Advise(Ok(self.peek_admission(bytes, incoming, now)))
            }
            Request::Density => {
                self.advance(now);
                Response::Density(Ok(DensityInfo {
                    density: self.importance_density(now),
                    capacity: self.capacity(),
                    used: self.used(),
                }))
            }
            Request::Stats => Response::Stats(Ok(StoreStats {
                unit: *self.stats(),
                used: self.used(),
                capacity: self.capacity(),
                objects: self.len() as u64,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn curve(days: u64) -> ImportanceCurve {
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(days))
    }

    #[test]
    fn unit_speaks_the_protocol_end_to_end() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(100));
        let outcome = unit
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(60),
                curve(30),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(outcome.evicted.is_empty());

        let info = unit
            .get_info(ObjectId::new(1), SimTime::ZERO)
            .unwrap()
            .expect("stored");
        assert_eq!(info.size, ByteSize::from_mib(60));
        assert_eq!(info.importance, Importance::FULL);
        assert!(!info.expired);
        assert!(unit
            .get_info(ObjectId::new(2), SimTime::ZERO)
            .unwrap()
            .is_none());

        let advice = unit
            .advise(
                ObjectId::new(2),
                ByteSize::from_mib(30),
                Importance::FULL,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(advice.is_admitted());

        let density = unit.density_info(SimTime::ZERO).unwrap();
        assert!(density.density > 0.0);
        assert_eq!(density.used, ByteSize::from_mib(60));

        let stats = unit.store_stats(SimTime::ZERO).unwrap();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.unit.stores_accepted, 1);
        assert_eq!(stats.capacity, ByteSize::from_mib(100));
    }

    #[test]
    fn engine_refusals_surface_as_store_errors() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(10));
        unit.put(
            ObjectId::new(1),
            ByteSize::from_mib(10),
            curve(30),
            SimTime::ZERO,
        )
        .unwrap();
        let err = unit
            .put(
                ObjectId::new(2),
                ByteSize::from_mib(10),
                curve(30),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Store(crate::StoreError::Full { .. })));
    }

    #[test]
    fn failed_builds_the_matching_variant() {
        let req = Request::Get {
            id: ObjectId::new(1),
        };
        match Response::failed(&req, Error::Disconnected) {
            Response::Get(Err(Error::Disconnected)) => {}
            other => panic!("wrong variant: {other:?}"),
        }
        match Response::failed(&Request::Density, Error::Disconnected) {
            Response::Density(Err(Error::Disconnected)) => {}
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn router_is_total_and_deterministic() {
        let router = ShardRouter::new(8);
        for raw in 0..10_000u64 {
            let shard = router.route(ObjectId::new(raw));
            assert!(shard < 8);
            assert_eq!(shard, router.route(ObjectId::new(raw)));
        }
        // Sequential ids spread rather than stripe: all shards populated
        // well before 10k ids.
        let mut seen = vec![0u64; 8];
        for raw in 0..64u64 {
            seen[router.route(ObjectId::new(raw)) as usize] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "64 ids left a shard empty: {seen:?}"
        );
    }

    #[test]
    fn stats_absorb_sums_every_field() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(50));
        unit.put(
            ObjectId::new(1),
            ByteSize::from_mib(10),
            curve(30),
            SimTime::ZERO,
        )
        .unwrap();
        let one = unit.store_stats(SimTime::ZERO).unwrap();
        let mut total = StoreStats::default();
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.objects, 2);
        assert_eq!(total.unit.stores_accepted, 2);
        assert_eq!(total.used, ByteSize::from_mib(20));
        assert_eq!(total.capacity, ByteSize::from_mib(100));
    }
}
