//! The annotation advisor: turning storage feedback into annotation
//! choices.
//!
//! §5.1.2 argues that the storage importance density is the signal content
//! creators need: "the content creator is forced to make a decision up
//! front... The difference between the storage density and the object
//! importance gives some indication of the object longevity." This module
//! operationalizes that guidance: given a [`DensitySnapshot`], it computes
//! the admission threshold an object of a given size faces, predicts how
//! long an annotation is likely to survive, and suggests the plateau
//! importance needed to reach a target persistence.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration};

use crate::{DensitySnapshot, Importance, ImportanceCurve};

/// The advisor's admission forecast for one annotation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Forecast {
    /// The storage currently admits this (importance, size) combination.
    Admitted {
        /// Expected survivable age: the age at which the curve decays to
        /// the admission threshold and becomes preemptible by the
        /// marginal admitted object (`None` = the curve never drops below
        /// the threshold before expiry — full requested lifetime).
        expected_survival: Option<SimDuration>,
    },
    /// The storage is full for this (importance, size): the object would
    /// be rejected right now.
    Rejected {
        /// The importance level the object would need to exceed.
        threshold: Importance,
    },
}

impl Forecast {
    /// True if the annotation is currently admissible.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Forecast::Admitted { .. })
    }
}

/// Advice derived from a storage unit's importance state.
///
/// All advice is computed purely from the [`DensitySnapshot`]'s
/// byte-importance histogram — the same data Figure 7 plots — so an
/// application can obtain it from a remote unit without shipping object
/// metadata.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration, SimTime};
/// use temporal_importance::{
///     Advisor, Importance, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit,
/// };
///
/// let mut unit = StorageUnit::new(ByteSize::from_mib(100));
/// unit.store(
///     ObjectSpec::new(
///         ObjectId::new(0),
///         ByteSize::from_mib(100),
///         ImportanceCurve::Fixed {
///             importance: Importance::new(0.6)?,
///             expiry: SimDuration::from_days(365),
///         },
///     ),
///     SimTime::ZERO,
/// )?;
///
/// let advisor = Advisor::from_snapshot(unit.density_snapshot(SimTime::ZERO));
/// // The disk is full of 0.6-importance data: a 10 MiB object must beat 0.6.
/// let threshold = advisor.admission_threshold_for(ByteSize::from_mib(10));
/// assert_eq!(threshold, Importance::new(0.6)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advisor {
    snapshot: DensitySnapshot,
}

impl Advisor {
    /// Builds an advisor from a point-in-time snapshot.
    pub fn from_snapshot(snapshot: DensitySnapshot) -> Self {
        Advisor { snapshot }
    }

    /// The snapshot this advice is based on.
    pub fn snapshot(&self) -> &DensitySnapshot {
        &self.snapshot
    }

    /// The admission threshold an object of `size` faces right now: the
    /// importance its annotation must *exceed* to be stored. Zero means
    /// free space (or freely-replaceable bytes) suffices.
    ///
    /// Computed by walking the byte-importance histogram from the least
    /// important bytes up, exactly how the preemption engine would
    /// consume victims: the threshold is the importance of the last byte
    /// that must be displaced.
    ///
    /// §5.1.2 reads this off Figure 7: "Objects with importance less than
    /// 0.25 cannot be stored."
    pub fn admission_threshold_for(&self, size: ByteSize) -> Importance {
        let free = self
            .snapshot
            .capacity
            .saturating_sub(self.snapshot.used)
            .as_bytes();
        let needed = size.as_bytes();
        if free >= needed {
            return Importance::ZERO;
        }
        let mut reclaimed = free;
        for &(importance, bytes) in &self.snapshot.histogram {
            reclaimed += bytes.as_bytes();
            if reclaimed >= needed {
                return importance;
            }
        }
        // Larger than the whole unit: nothing can admit it.
        Importance::FULL
    }

    /// The marginal admission threshold (for an infinitesimally small
    /// object): zero with any free space, else the least important stored
    /// byte.
    pub fn admission_threshold(&self) -> Importance {
        if self.snapshot.used < self.snapshot.capacity {
            return Importance::ZERO;
        }
        self.snapshot
            .min_stored_importance()
            .unwrap_or(Importance::ZERO)
    }

    /// Forecasts how an annotation on an object of `size` will fare if
    /// submitted now, assuming the storage pressure stays roughly
    /// constant — the paper's "average storage importance density... is a
    /// reasonable predictor of this state of the storage".
    pub fn forecast(&self, curve: &ImportanceCurve, size: ByteSize) -> Forecast {
        let threshold = self.admission_threshold_for(size);
        let initial = curve.initial_importance();
        if initial <= threshold && !threshold.is_zero() {
            return Forecast::Rejected { threshold };
        }
        Forecast::Admitted {
            expected_survival: survival_age(curve, threshold),
        }
    }

    /// The smallest plateau importance a creator should request so that a
    /// two-step annotation with the given `persist`/`wane` on an object
    /// of `size` survives at least `target` under current pressure — or
    /// `None` if even full importance cannot reach it.
    pub fn min_plateau_for(
        &self,
        size: ByteSize,
        persist: SimDuration,
        wane: SimDuration,
        target: SimDuration,
    ) -> Option<Importance> {
        let threshold = self.admission_threshold_for(size);
        // Scan plateau candidates from low to high at 1% granularity.
        for step in 0..=100u32 {
            let plateau = Importance::new_clamped(f64::from(step) / 100.0);
            if plateau <= threshold && !threshold.is_zero() {
                continue;
            }
            if plateau.is_zero() && !target.is_zero() {
                continue;
            }
            let curve = ImportanceCurve::two_step(plateau, persist, wane);
            match self.forecast(&curve, size) {
                Forecast::Admitted {
                    expected_survival: Some(age),
                } if age >= target => return Some(plateau),
                Forecast::Admitted {
                    expected_survival: None,
                } => return Some(plateau),
                _ => {}
            }
        }
        None
    }
}

/// The age at which `curve` decays to `threshold` (when the object
/// becomes preemptible by the marginal admitted object). `None` if it
/// never does before expiry.
fn survival_age(curve: &ImportanceCurve, threshold: Importance) -> Option<SimDuration> {
    let expiry = curve.expiry()?;
    if threshold.is_zero() {
        return Some(expiry);
    }
    if curve.initial_importance() <= threshold {
        return Some(SimDuration::ZERO);
    }
    // Binary search the monotone curve for the crossing age.
    let mut lo = 0u64; // importance > threshold here
    let mut hi = expiry.as_minutes(); // importance == 0 <= threshold here
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if curve.importance_at(SimDuration::from_minutes(mid)) > threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(SimDuration::from_minutes(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectId, ObjectSpec, StorageUnit};
    use sim_core::SimTime;

    fn imp(v: f64) -> Importance {
        Importance::new(v).unwrap()
    }

    fn mib(n: u64) -> ByteSize {
        ByteSize::from_mib(n)
    }

    fn unit_with(objects: &[(u64, f64)]) -> StorageUnit {
        let mut unit = StorageUnit::new(mib(100));
        for (i, &(size_mib, importance)) in objects.iter().enumerate() {
            unit.store(
                ObjectSpec::new(
                    ObjectId::new(i as u64),
                    mib(size_mib),
                    ImportanceCurve::Fixed {
                        importance: imp(importance),
                        expiry: SimDuration::from_days(3650),
                    },
                ),
                SimTime::ZERO,
            )
            .unwrap();
        }
        unit
    }

    fn advisor_for(objects: &[(u64, f64)]) -> Advisor {
        Advisor::from_snapshot(unit_with(objects).density_snapshot(SimTime::ZERO))
    }

    #[test]
    fn empty_storage_admits_everything() {
        let advisor = advisor_for(&[]);
        assert_eq!(advisor.admission_threshold(), Importance::ZERO);
        assert_eq!(advisor.admission_threshold_for(mib(100)), Importance::ZERO);
        assert!(advisor
            .forecast(&ImportanceCurve::Ephemeral, mib(1))
            .is_admitted());
    }

    #[test]
    fn threshold_is_size_aware() {
        // 40 MiB free, then bytes at 0.2 (30 MiB) and 0.7 (30 MiB).
        let advisor = advisor_for(&[(30, 0.2), (30, 0.7)]);
        // Fits in free space.
        assert_eq!(advisor.admission_threshold_for(mib(40)), Importance::ZERO);
        // Needs to displace some 0.2 bytes.
        assert_eq!(advisor.admission_threshold_for(mib(50)), imp(0.2));
        // Needs to reach into the 0.7 bytes.
        assert_eq!(advisor.admission_threshold_for(mib(80)), imp(0.7));
        // Larger than the unit: unstorable.
        assert_eq!(advisor.admission_threshold_for(mib(200)), Importance::FULL);
    }

    #[test]
    fn threshold_agrees_with_the_engine() {
        let unit = unit_with(&[(60, 0.3), (40, 0.8)]);
        let advisor = Advisor::from_snapshot(unit.density_snapshot(SimTime::ZERO));
        for size_mib in [10u64, 50, 70, 99] {
            let threshold = advisor.admission_threshold_for(mib(size_mib));
            // Just above the threshold: engine admits.
            let above = Importance::new_clamped(threshold.value() + 0.01);
            assert!(
                unit.peek_admission(mib(size_mib), above, SimTime::ZERO)
                    .is_admitted(),
                "size {size_mib} MiB at {above} should be admitted"
            );
            // At or below a positive threshold: engine rejects.
            if !threshold.is_zero() {
                assert!(
                    !unit
                        .peek_admission(mib(size_mib), threshold, SimTime::ZERO)
                        .is_admitted(),
                    "size {size_mib} MiB at {threshold} should be rejected"
                );
            }
        }
    }

    #[test]
    fn below_threshold_annotations_are_rejected() {
        let advisor = advisor_for(&[(100, 0.5)]);
        let low = ImportanceCurve::Fixed {
            importance: imp(0.3),
            expiry: SimDuration::from_days(10),
        };
        match advisor.forecast(&low, mib(10)) {
            Forecast::Rejected { threshold } => assert_eq!(threshold, imp(0.5)),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn survival_is_the_threshold_crossing_age() {
        let advisor = advisor_for(&[(100, 0.5)]);
        // Full for 10 days, wanes over 10: crosses 0.5 at day 15.
        let curve = ImportanceCurve::two_step(
            Importance::FULL,
            SimDuration::from_days(10),
            SimDuration::from_days(10),
        );
        match advisor.forecast(&curve, mib(10)) {
            Forecast::Admitted {
                expected_survival: Some(age),
            } => {
                let days = age.as_days_f64();
                assert!((14.9..15.1).contains(&days), "crossing at {days} days");
            }
            other => panic!("expected admitted-with-survival, got {other:?}"),
        }
    }

    #[test]
    fn zero_pressure_means_full_lifetime() {
        let advisor = advisor_for(&[]);
        let curve = ImportanceCurve::two_step(
            Importance::FULL,
            SimDuration::from_days(10),
            SimDuration::from_days(10),
        );
        match advisor.forecast(&curve, mib(10)) {
            Forecast::Admitted {
                expected_survival: Some(age),
            } => assert_eq!(age, SimDuration::from_days(20)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn persistent_curves_never_cross() {
        let advisor = advisor_for(&[(100, 0.5)]);
        match advisor.forecast(&ImportanceCurve::Persistent, mib(10)) {
            Forecast::Admitted { expected_survival } => {
                assert_eq!(expected_survival, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn min_plateau_scales_with_pressure() {
        let persist = SimDuration::from_days(10);
        let wane = SimDuration::from_days(10);
        // Against a 0.6 threshold, a plateau-p curve survives
        // 10 + 10·(1 − 0.6/p) days, so a 13-day target needs p ≥ ~0.857.
        let target = SimDuration::from_days(13);

        // No pressure: even a tiny plateau survives.
        let advisor = advisor_for(&[]);
        let plateau = advisor
            .min_plateau_for(mib(10), persist, wane, target)
            .unwrap();
        assert!(plateau <= imp(0.02));

        // Heavy pressure at 0.6.
        let advisor = advisor_for(&[(100, 0.6)]);
        let plateau = advisor
            .min_plateau_for(mib(10), persist, wane, target)
            .unwrap();
        assert!(plateau >= imp(0.85), "plateau {plateau}");
        // Verify the advice: the implied curve really survives 13 days.
        let curve = ImportanceCurve::two_step(plateau, persist, wane);
        assert!(curve.importance_at(SimDuration::from_days(13) - SimDuration::MINUTE) > imp(0.6));
    }

    #[test]
    fn impossible_targets_return_none() {
        let advisor = advisor_for(&[(100, 0.99)]);
        // Wane hits zero at day 20 but the threshold is 0.99: nothing
        // with this shape stays above 0.99 for 19+ days.
        let plateau = advisor.min_plateau_for(
            mib(10),
            SimDuration::from_days(10),
            SimDuration::from_days(10),
            SimDuration::from_days(19),
        );
        assert_eq!(plateau, None);
    }
}
