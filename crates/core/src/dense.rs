//! Dense, allocation-light index structures for the reclamation engine.
//!
//! The engine's hot indexes used to be `BTreeSet`s and `BTreeMap`s keyed
//! by `ObjectId` tuples: pointer-chasing node trees with an allocation per
//! insert. This module replaces them with two flat layouts over the
//! arena's dense `u32` slots:
//!
//! * [`SortedList`] — a struct-of-arrays sorted associative list (parallel
//!   key and payload vectors) with tombstone deletion, a dead-prefix head
//!   pointer, and amortized compaction. Iteration yields live entries in
//!   exactly the key order the old `BTreeSet`s produced, which the golden
//!   trace pins.
//! * [`TotalMap`] — a *total* map from arena slots to values: a dense
//!   vector plus one default value that stands in for every slot the
//!   vector has not materialized. Reads never miss and writes of the
//!   default beyond the materialized tail cost nothing.

/// Payload value marking a deleted [`SortedList`] entry.
///
/// Payloads are arena slots (at most `u32::MAX`) optionally packed with a
/// small tag, so `u64::MAX` is never a live payload.
pub const TOMBSTONE: u64 = u64::MAX;

/// A sorted associative list `K -> u64` in struct-of-arrays layout.
///
/// Keys are kept sorted and unique in one vector with payloads in a
/// parallel vector. Removal tombstones the payload in place (no memmove);
/// re-inserting an exact tombstoned key resurrects the entry in place,
/// which makes the engine's unregister/register cycles on an unchanged
/// eviction key O(log n) with no element shifting. A head pointer skips
/// the dead prefix that queue-like pop-front usage produces, and the list
/// compacts once dead entries outnumber live ones, so space stays O(live)
/// amortized.
///
/// # Examples
///
/// ```
/// use temporal_importance::dense::SortedList;
///
/// let mut list = SortedList::new();
/// list.insert((5u64, 1u64), 50);
/// list.insert((3, 2), 30);
/// list.insert((9, 0), 90);
/// list.remove(&(3, 2));
/// assert_eq!(list.first(), Some(((5, 1), 50)));
/// let keys: Vec<_> = list.iter().map(|(k, _)| k).collect();
/// assert_eq!(keys, vec![(5, 1), (9, 0)]);
/// ```
#[derive(Debug, Clone)]
pub struct SortedList<K> {
    keys: Vec<K>,
    payloads: Vec<u64>,
    /// Index of the first live entry (== `keys.len()` when empty); every
    /// position before it is a tombstone.
    head: usize,
    live: usize,
}

impl<K> Default for SortedList<K> {
    fn default() -> Self {
        SortedList {
            keys: Vec::new(),
            payloads: Vec::new(),
            head: 0,
            live: 0,
        }
    }
}

impl<K: Ord + Copy> SortedList<K> {
    /// An empty list.
    pub fn new() -> Self {
        SortedList::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `key -> payload`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `key` is already live or `payload` is
    /// [`TOMBSTONE`]. Keys must be unique among live entries.
    pub fn insert(&mut self, key: K, payload: u64) {
        debug_assert_ne!(payload, TOMBSTONE, "TOMBSTONE is reserved");
        // Fast path: engine keys are largely time-monotone, so most
        // inserts append past the current maximum.
        match self.keys.last() {
            None => {
                self.keys.push(key);
                self.payloads.push(payload);
                self.head = 0;
                self.live = 1;
                return;
            }
            Some(&last) if key > last => {
                self.keys.push(key);
                self.payloads.push(payload);
                self.live += 1;
                return;
            }
            Some(_) => {}
        }
        match self.keys.binary_search(&key) {
            Ok(pos) => {
                debug_assert_eq!(self.payloads[pos], TOMBSTONE, "duplicate live key");
                self.payloads[pos] = payload;
                self.live += 1;
                if pos < self.head {
                    self.head = pos;
                }
            }
            Err(pos) => {
                self.keys.insert(pos, key);
                self.payloads.insert(pos, payload);
                self.live += 1;
                if pos < self.head {
                    self.head = pos;
                }
            }
        }
    }

    /// Removes `key`, returning its payload if it was live.
    pub fn remove(&mut self, key: &K) -> Option<u64> {
        // Fast path: evictions overwhelmingly take a stream's head (plans
        // pop global minima from the merge), and the head is always live.
        if self.head < self.keys.len() && self.keys[self.head] == *key {
            let payload = self.payloads[self.head];
            self.payloads[self.head] = TOMBSTONE;
            self.live -= 1;
            if self.live == 0 {
                self.keys.clear();
                self.payloads.clear();
                self.head = 0;
                return Some(payload);
            }
            self.head += 1;
            while self.payloads[self.head] == TOMBSTONE {
                self.head += 1;
            }
            self.maybe_compact();
            return Some(payload);
        }
        let pos = self.keys.binary_search(key).ok()?;
        let payload = self.payloads[pos];
        if payload == TOMBSTONE {
            return None;
        }
        self.payloads[pos] = TOMBSTONE;
        self.live -= 1;
        if self.live == 0 {
            self.keys.clear();
            self.payloads.clear();
            self.head = 0;
            return Some(payload);
        }
        if pos == self.head {
            while self.payloads[self.head] == TOMBSTONE {
                self.head += 1;
            }
        }
        self.maybe_compact();
        Some(payload)
    }

    /// The minimum live entry.
    pub fn first(&self) -> Option<(K, u64)> {
        (self.head < self.keys.len()).then(|| (self.keys[self.head], self.payloads[self.head]))
    }

    /// Removes and returns the minimum live entry.
    pub fn pop_first(&mut self) -> Option<(K, u64)> {
        let (key, payload) = self.first()?;
        self.payloads[self.head] = TOMBSTONE;
        self.live -= 1;
        if self.live == 0 {
            self.keys.clear();
            self.payloads.clear();
            self.head = 0;
        } else {
            self.head += 1;
            while self.payloads[self.head] == TOMBSTONE {
                self.head += 1;
            }
            self.maybe_compact();
        }
        Some((key, payload))
    }

    /// Live entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.keys[self.head..]
            .iter()
            .zip(&self.payloads[self.head..])
            .filter(|&(_, &payload)| payload != TOMBSTONE)
            .map(|(&key, &payload)| (key, payload))
    }

    /// Live entries with key `>= from`, in ascending key order.
    pub fn iter_from(&self, from: K) -> impl Iterator<Item = (K, u64)> + '_ {
        let start = self.keys.partition_point(|k| *k < from).max(self.head);
        self.keys[start..]
            .iter()
            .zip(&self.payloads[start..])
            .filter(|&(_, &payload)| payload != TOMBSTONE)
            .map(|(&key, &payload)| (key, payload))
    }

    /// The cursor position of the first (possibly dead) stored entry —
    /// feed it to [`next_live`](SortedList::next_live) to stream payloads
    /// in key order without borrowing the key vector.
    pub fn start(&self) -> usize {
        self.head
    }

    /// The first live payload at a position `>= pos`, paired with the
    /// position to resume from. Together with
    /// [`start`](SortedList::start), this is a heap-friendly cursor: plan
    /// merges keep `(payload, resume)` pairs in their binary heap instead
    /// of boxed iterators.
    pub fn next_live(&self, mut pos: usize) -> Option<(u64, usize)> {
        while let Some(&payload) = self.payloads.get(pos) {
            pos += 1;
            if payload != TOMBSTONE {
                return Some((payload, pos));
            }
        }
        None
    }

    /// [`next_live`](SortedList::next_live) with the entry's key included —
    /// for cursors whose consumers derive ordering information from the
    /// key itself rather than the payload's referent.
    pub fn next_live_kv(&self, mut pos: usize) -> Option<(K, u64, usize)> {
        while let Some(&payload) = self.payloads.get(pos) {
            pos += 1;
            if payload != TOMBSTONE {
                return Some((self.keys[pos - 1], payload, pos));
            }
        }
        None
    }

    /// Drops tombstones once they outnumber live entries, keeping storage
    /// O(live) with amortized O(1) cost per removal.
    fn maybe_compact(&mut self) {
        let dead = self.keys.len() - self.live;
        if dead <= self.live || self.keys.len() < 64 {
            return;
        }
        let mut write = 0;
        for read in 0..self.keys.len() {
            if self.payloads[read] != TOMBSTONE {
                self.keys[write] = self.keys[read];
                self.payloads[write] = self.payloads[read];
                write += 1;
            }
        }
        self.keys.truncate(write);
        self.payloads.truncate(write);
        self.head = 0;
    }
}

/// A total map from dense `u32` indices to values.
///
/// Backed by a vector that only materializes up to the highest index
/// actually written with a non-default value; every index beyond the tail
/// reads as the shared default. This is the "commonality" idiom for
/// sparse per-object metadata: the common value is stored once, and only
/// uncommon values occupy memory.
///
/// # Examples
///
/// ```
/// use temporal_importance::dense::TotalMap;
///
/// let mut ages = TotalMap::new(0u64);
/// assert_eq!(*ages.get(1_000_000), 0); // never materialized
/// ages.set(3, 7);
/// assert_eq!(*ages.get(3), 7);
/// assert_eq!(*ages.get(4), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TotalMap<V> {
    default: V,
    dense: Vec<V>,
}

impl<V: Clone + PartialEq> TotalMap<V> {
    /// A total map where every index currently reads as `default`.
    pub fn new(default: V) -> Self {
        TotalMap {
            default,
            dense: Vec::new(),
        }
    }

    /// The value at `index` (the default if unmaterialized).
    #[inline]
    pub fn get(&self, index: u32) -> &V {
        self.dense.get(index as usize).unwrap_or(&self.default)
    }

    /// Sets the value at `index`. Writing the default past the
    /// materialized tail is free.
    pub fn set(&mut self, index: u32, value: V) {
        let index = index as usize;
        if index >= self.dense.len() {
            if value == self.default {
                return;
            }
            self.dense.resize(index + 1, self.default.clone());
        }
        self.dense[index] = value;
    }

    /// Replaces the value at `index` with the default, returning the old
    /// value.
    pub fn take(&mut self, index: u32) -> V {
        let index = index as usize;
        if index >= self.dense.len() {
            return self.default.clone();
        }
        std::mem::replace(&mut self.dense[index], self.default.clone())
    }

    /// Number of materialized (dense) entries.
    pub fn materialized(&self) -> usize {
        self.dense.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_remove_first_matches_btree_order() {
        let mut list = SortedList::new();
        let mut model = BTreeMap::new();
        for key in [5u64, 1, 9, 3, 7, 2, 8] {
            list.insert(key, key * 10);
            model.insert(key, key * 10);
        }
        list.remove(&1);
        model.remove(&1);
        list.remove(&9);
        model.remove(&9);
        assert_eq!(list.len(), model.len());
        let flat: Vec<_> = list.iter().collect();
        let expected: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(flat, expected);
        assert_eq!(list.first(), Some((2, 20)));
    }

    #[test]
    fn tombstone_resurrection_reuses_the_slot() {
        let mut list = SortedList::new();
        list.insert(4u64, 1);
        list.insert(6, 2);
        list.remove(&4);
        assert_eq!(list.len(), 1);
        list.insert(4, 3); // exact-key reinsert: no shifting
        assert_eq!(list.len(), 2);
        assert_eq!(list.first(), Some((4, 3)));
    }

    #[test]
    fn pop_first_drains_in_order() {
        let mut list = SortedList::new();
        for key in [3u64, 1, 2] {
            list.insert(key, key);
        }
        assert_eq!(list.pop_first(), Some((1, 1)));
        assert_eq!(list.pop_first(), Some((2, 2)));
        assert_eq!(list.pop_first(), Some((3, 3)));
        assert_eq!(list.pop_first(), None);
        assert!(list.is_empty());
    }

    #[test]
    fn iter_from_starts_at_the_bound() {
        let mut list = SortedList::new();
        for key in [10u64, 20, 30, 40] {
            list.insert(key, key);
        }
        list.remove(&20);
        let tail: Vec<_> = list.iter_from(20).map(|(k, _)| k).collect();
        assert_eq!(tail, vec![30, 40]);
        assert!(list.iter_from(41).next().is_none());
    }

    #[test]
    fn cursor_streams_payloads_in_key_order() {
        let mut list = SortedList::new();
        for key in [2u64, 4, 6, 8] {
            list.insert(key, key * 100);
        }
        list.remove(&4);
        let mut pos = list.start();
        let mut seen = Vec::new();
        while let Some((payload, next)) = list.next_live(pos) {
            seen.push(payload);
            pos = next;
        }
        assert_eq!(seen, vec![200, 600, 800]);
    }

    #[test]
    fn compaction_bounds_storage() {
        let mut list = SortedList::new();
        for key in 0..200u64 {
            list.insert(key, key);
        }
        for key in 0..150u64 {
            list.remove(&key);
        }
        assert_eq!(list.len(), 50);
        // After compaction the dead cannot outnumber the live (for lists
        // past the small-size threshold).
        let stored = list.iter().count();
        assert_eq!(stored, 50);
        let remaining: Vec<_> = list.iter().map(|(k, _)| k).collect();
        assert_eq!(remaining, (150..200).collect::<Vec<_>>());
    }

    #[test]
    fn emptied_lists_reset_storage() {
        let mut list = SortedList::new();
        list.insert(1u64, 1);
        list.insert(2, 2);
        list.remove(&2);
        list.remove(&1);
        assert!(list.is_empty());
        assert_eq!(list.first(), None);
        list.insert(5, 5);
        assert_eq!(list.first(), Some((5, 5)));
    }

    #[test]
    fn total_map_defaults_and_materialization() {
        let mut map = TotalMap::new(0u32);
        map.set(10, 0); // default past the tail: free
        assert_eq!(map.materialized(), 0);
        map.set(2, 9);
        assert_eq!(map.materialized(), 3);
        assert_eq!(*map.get(2), 9);
        assert_eq!(*map.get(1), 0);
        assert_eq!(*map.get(100), 0);
        assert_eq!(map.take(2), 9);
        assert_eq!(*map.get(2), 0);
        assert_eq!(map.take(50), 0);
    }
}
