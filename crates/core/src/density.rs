//! The storage importance density metric and byte-importance distributions.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimTime};

use crate::{Importance, StorageUnit};

/// A point-in-time summary of a unit's importance state.
///
/// Figures 6, 7 and 12 of the paper are drawn from this data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensitySnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// The average storage importance density in `[0, 1]`.
    pub density: f64,
    /// Bytes currently stored.
    pub used: ByteSize,
    /// The unit's capacity.
    pub capacity: ByteSize,
    /// Stored bytes grouped by current importance, ascending by importance.
    pub histogram: Vec<(Importance, ByteSize)>,
}

impl DensitySnapshot {
    /// The cumulative distribution of stored-byte importance: for each
    /// distinct importance value `v` (ascending), the fraction of *stored*
    /// bytes with importance `<= v`. This is exactly Figure 7's y-axis.
    ///
    /// Returns an empty vector if nothing is stored.
    pub fn byte_cdf(&self) -> Vec<(Importance, f64)> {
        let total = self.used.as_bytes();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.histogram
            .iter()
            .map(|&(imp, bytes)| {
                acc += bytes.as_bytes();
                (imp, acc as f64 / total as f64)
            })
            .collect()
    }

    /// Fraction of stored bytes at exactly full importance (the paper
    /// reads "57% of the bytes have storage importance one" off Fig. 7).
    pub fn fraction_at_full(&self) -> f64 {
        let total = self.used.as_bytes();
        if total == 0 {
            return 0.0;
        }
        self.histogram
            .iter()
            .filter(|(imp, _)| imp.is_full())
            .map(|(_, b)| b.as_bytes())
            .sum::<u64>() as f64
            / total as f64
    }

    /// The lowest importance present among stored bytes, if any — the
    /// paper's "objects with importance less than X cannot be stored"
    /// admission threshold reads directly off this.
    pub fn min_stored_importance(&self) -> Option<Importance> {
        self.histogram.first().map(|&(imp, _)| imp)
    }
}

impl StorageUnit {
    /// The instantaneous average storage importance density (§5.1.2):
    /// every stored byte scaled by its current importance, normalized by
    /// capacity. Expired objects and unallocated space contribute zero.
    ///
    /// The result is in `[0, 1]`: `1.0` means the disk is full of
    /// non-preemptible data (full for all incoming objects); lower values
    /// mean progressively less important objects could still be displaced.
    ///
    /// # Examples
    ///
    /// ```
    /// use sim_core::{ByteSize, SimTime};
    /// use temporal_importance::StorageUnit;
    ///
    /// let unit = StorageUnit::new(ByteSize::from_gib(80));
    /// assert_eq!(unit.importance_density(SimTime::ZERO), 0.0);
    /// ```
    pub fn importance_density(&self, now: SimTime) -> f64 {
        self.obs().counter("engine.density_samples", 1);
        if self.capacity().is_zero() {
            return 0.0;
        }
        // O(1) when the incremental accumulators are current for `now`
        // (see [`advance`](StorageUnit::advance)); clamped because the
        // extrapolated sum can undershoot zero by a rounding error where
        // the exact sum is non-negative.
        if let Some(weighted) = self.weighted_importance_fast(now) {
            self.obs().counter("engine.density_fast_path", 1);
            return (weighted / self.capacity().as_bytes() as f64).clamp(0.0, 1.0);
        }
        self.obs().counter("engine.density_full_scan", 1);
        let weighted: f64 = self
            .iter()
            .map(|o| o.size().as_bytes() as f64 * o.current_importance(now).value())
            .sum();
        weighted / self.capacity().as_bytes() as f64
    }

    /// Stored bytes grouped by current importance, ascending.
    ///
    /// Bytes of objects sharing an importance value are merged. Expired
    /// objects appear in the zero bucket.
    pub fn byte_importance_histogram(&self, now: SimTime) -> Vec<(Importance, ByteSize)> {
        let mut pairs: Vec<(Importance, ByteSize)> = self
            .iter()
            .map(|o| (o.current_importance(now), o.size()))
            .collect();
        pairs.sort_by_key(|&(imp, _)| imp);
        let mut merged: Vec<(Importance, ByteSize)> = Vec::new();
        for (imp, bytes) in pairs {
            match merged.last_mut() {
                Some((last, acc)) if *last == imp => *acc += bytes,
                _ => merged.push((imp, bytes)),
            }
        }
        merged
    }

    /// Takes a full [`DensitySnapshot`] at `now`.
    pub fn density_snapshot(&self, now: SimTime) -> DensitySnapshot {
        DensitySnapshot {
            at: now,
            density: self.importance_density(now),
            used: self.used(),
            capacity: self.capacity(),
            histogram: self.byte_importance_histogram(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ImportanceCurve, ObjectId, ObjectSpec};
    use sim_core::SimDuration;

    fn imp(v: f64) -> Importance {
        Importance::new(v).unwrap()
    }

    fn store_fixed(unit: &mut StorageUnit, id: u64, mib: u64, importance: f64, expiry_days: u64) {
        unit.store(
            ObjectSpec::new(
                ObjectId::new(id),
                ByteSize::from_mib(mib),
                ImportanceCurve::Fixed {
                    importance: imp(importance),
                    expiry: SimDuration::from_days(expiry_days),
                },
            ),
            SimTime::ZERO,
        )
        .unwrap();
    }

    #[test]
    fn empty_unit_has_zero_density() {
        let unit = StorageUnit::new(ByteSize::from_gib(1));
        assert_eq!(unit.importance_density(SimTime::ZERO), 0.0);
        let snap = unit.density_snapshot(SimTime::ZERO);
        assert!(snap.byte_cdf().is_empty());
        assert_eq!(snap.fraction_at_full(), 0.0);
        assert_eq!(snap.min_stored_importance(), None);
    }

    #[test]
    fn density_weights_bytes_by_importance() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(100));
        store_fixed(&mut unit, 1, 50, 1.0, 365); // contributes 0.5
        store_fixed(&mut unit, 2, 25, 0.4, 365); // contributes 0.1
        let d = unit.importance_density(SimTime::ZERO);
        assert!((d - 0.6).abs() < 1e-12, "density {d}");
    }

    #[test]
    fn expired_bytes_contribute_zero() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(100));
        store_fixed(&mut unit, 1, 100, 1.0, 10);
        assert_eq!(unit.importance_density(SimTime::ZERO), 1.0);
        assert_eq!(unit.importance_density(SimTime::from_days(20)), 0.0);
        // The expired object still occupies space.
        assert_eq!(unit.used(), ByteSize::from_mib(100));
    }

    #[test]
    fn density_is_always_in_unit_interval() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(64));
        for i in 0..32 {
            store_fixed(&mut unit, i, 2, (i % 11) as f64 / 10.0, 30);
        }
        for d in 0..60 {
            let v = unit.importance_density(SimTime::from_days(d));
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn histogram_merges_equal_importance_and_sorts() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(100));
        store_fixed(&mut unit, 1, 10, 1.0, 365);
        store_fixed(&mut unit, 2, 20, 0.5, 365);
        store_fixed(&mut unit, 3, 30, 1.0, 365);
        let hist = unit.byte_importance_histogram(SimTime::ZERO);
        assert_eq!(
            hist,
            vec![
                (imp(0.5), ByteSize::from_mib(20)),
                (Importance::FULL, ByteSize::from_mib(40)),
            ]
        );
    }

    #[test]
    fn cdf_reaches_one_and_reports_full_fraction() {
        let mut unit = StorageUnit::new(ByteSize::from_mib(100));
        store_fixed(&mut unit, 1, 57, 1.0, 365);
        store_fixed(&mut unit, 2, 30, 0.5, 365);
        store_fixed(&mut unit, 3, 13, 0.25, 365);
        let snap = unit.density_snapshot(SimTime::ZERO);
        let cdf = snap.byte_cdf();
        assert_eq!(cdf.len(), 3);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!((snap.fraction_at_full() - 0.57).abs() < 1e-12);
        assert_eq!(snap.min_stored_importance(), Some(imp(0.25)));
        // CDF is non-decreasing.
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn zero_capacity_unit_reports_zero_density() {
        let unit = StorageUnit::new(ByteSize::ZERO);
        assert_eq!(unit.importance_density(SimTime::ZERO), 0.0);
    }
}
