//! Reclamation policies.

use serde::{Deserialize, Serialize};

/// How a [`StorageUnit`](crate::StorageUnit) selects victims and decides
/// admission under storage pressure.
///
/// The paper's §5.1 comparison uses three configurations. Two of them —
/// *no temporal importance* (`L(t)=1`, hard 30-day expiry) and the
/// *two-step temporal importance* function — are the **same engine**
/// ([`EvictionPolicy::Preemptive`]) with different curve annotations; only
/// Palimpsest-style FIFO needs a genuinely different engine, because web
/// caches "are allowed to discard any objects, whether they have expired or
/// not" (§3), which violates the strict preemption rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EvictionPolicy {
    /// The paper's policy: an incoming object may evict only objects whose
    /// *current* importance is strictly lower than its own. Victims are
    /// consumed in increasing (current importance, remaining lifetime,
    /// arrival) order — the sort described in §5.3. If preempting every
    /// eligible victim still leaves too little room, the unit is *full for
    /// this object* and the store is rejected.
    #[default]
    Preemptive,
    /// Palimpsest / web-cache behaviour: admission never fails (for objects
    /// that fit in the unit at all); victims are evicted strictly in
    /// arrival order (FIFO), ignoring importance entirely.
    Fifo,
}

impl EvictionPolicy {
    /// A short human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Preemptive => "preemptive",
            EvictionPolicy::Fifo => "fifo",
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_policy() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Preemptive);
    }

    #[test]
    fn labels() {
        assert_eq!(EvictionPolicy::Preemptive.to_string(), "preemptive");
        assert_eq!(EvictionPolicy::Fifo.to_string(), "fifo");
    }
}
