//! A generational slab arena assigning dense `u32` slots to stored objects.
//!
//! The engine's per-object bookkeeping used to live in `ObjectId`-keyed
//! maps; every hot-path touch paid a hash or tree lookup. The arena gives
//! each resident object a dense `u32` slot at admission, so the engine's
//! indexes ([`dense`](crate::dense)) can address per-object metadata with
//! a plain vector index. Slots are recycled through a free list, and each
//! slot carries a generation counter bumped on removal: a stale
//! [`ArenaIdx`] held across a recycle can never alias the new occupant
//! (the ABA guard the arena property tests pin down).
//!
//! Serialization round-trips through exactly the same content tree as the
//! `BTreeMap<ObjectId, StoredObject>` it replaced — an id-keyed object map
//! in ascending id order — so persisted units remain byte-identical.

use serde::{Content, Deserialize, Error, Serialize};
use sim_core::fx::FxHashMap;

use crate::{ObjectId, StoredObject};

/// A generation-checked handle to an arena slot.
///
/// Resolving a handle after its object was removed (and even after the
/// slot was recycled for a different object) yields `None` rather than
/// the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaIdx {
    slot: u32,
    generation: u32,
}

impl ArenaIdx {
    /// The dense slot index (valid only while the generation matches).
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// The slot generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    object: Option<StoredObject>,
}

/// A generational arena of [`StoredObject`]s with dense `u32` slots.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimTime};
/// use temporal_importance::arena::ObjectArena;
/// use temporal_importance::{ImportanceCurve, ObjectId, ObjectSpec, StoredObject};
///
/// let mut arena = ObjectArena::new();
/// let spec = ObjectSpec::new(ObjectId::new(7), ByteSize::from_mib(1), ImportanceCurve::Persistent);
/// let idx = arena.insert(StoredObject::from_spec(spec, SimTime::ZERO));
/// assert_eq!(arena.resolve(idx).unwrap().id(), ObjectId::new(7));
/// arena.remove(ObjectId::new(7));
/// assert!(arena.resolve(idx).is_none(), "stale handles never alias");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    by_id: FxHashMap<ObjectId, u32>,
    len: usize,
}

impl ObjectArena {
    /// An empty arena.
    pub fn new() -> Self {
        ObjectArena::default()
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no objects are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if an object with this id is resident.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Admits an object, assigning it a dense slot (recycled if any are
    /// free, fresh otherwise).
    ///
    /// # Panics
    ///
    /// Panics if an object with the same id is already resident; callers
    /// check [`contains`](ObjectArena::contains) first.
    pub fn insert(&mut self, object: StoredObject) -> ArenaIdx {
        let id = object.id();
        let slot = match self.free.pop() {
            Some(slot) => {
                let entry = &mut self.slots[slot as usize];
                debug_assert!(entry.object.is_none(), "free-listed slot is occupied");
                entry.object = Some(object);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena slot overflow");
                self.slots.push(Slot {
                    generation: 0,
                    object: Some(object),
                });
                slot
            }
        };
        // One hash probe covers both the duplicate check and the mapping.
        let previous = self.by_id.insert(id, slot);
        assert!(previous.is_none(), "duplicate object id {id}");
        self.len += 1;
        ArenaIdx {
            slot,
            generation: self.slots[slot as usize].generation,
        }
    }

    /// Removes an object by id, returning it.
    pub fn remove(&mut self, id: ObjectId) -> Option<StoredObject> {
        self.remove_entry(id).map(|(_, object)| object)
    }

    /// Removes an object by id, returning its slot and the object. The
    /// slot's generation is bumped so existing handles go stale before the
    /// slot is recycled.
    pub(crate) fn remove_entry(&mut self, id: ObjectId) -> Option<(u32, StoredObject)> {
        let slot = self.by_id.remove(&id)?;
        let entry = &mut self.slots[slot as usize];
        let object = entry.object.take().expect("mapped slot is occupied");
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
        Some((slot, object))
    }

    /// The current handle for a resident id.
    pub fn lookup(&self, id: ObjectId) -> Option<ArenaIdx> {
        let slot = *self.by_id.get(&id)?;
        Some(ArenaIdx {
            slot,
            generation: self.slots[slot as usize].generation,
        })
    }

    /// Resolves a handle, failing if the object was removed since the
    /// handle was issued — even if the slot has been recycled.
    pub fn resolve(&self, idx: ArenaIdx) -> Option<&StoredObject> {
        let entry = self.slots.get(idx.slot as usize)?;
        if entry.generation != idx.generation {
            return None;
        }
        entry.object.as_ref()
    }

    /// Looks up a resident object by id.
    pub fn get(&self, id: ObjectId) -> Option<&StoredObject> {
        let slot = *self.by_id.get(&id)?;
        self.slots[slot as usize].object.as_ref()
    }

    /// Mutable access by id, paired with the object's slot.
    pub(crate) fn get_mut(&mut self, id: ObjectId) -> Option<(u32, &mut StoredObject)> {
        let slot = *self.by_id.get(&id)?;
        self.slots[slot as usize]
            .object
            .as_mut()
            .map(|object| (slot, object))
    }

    /// The object occupying `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant — callers hold slots obtained from the
    /// live index, which is kept in lockstep with the arena.
    #[inline]
    pub(crate) fn at(&self, slot: u32) -> &StoredObject {
        self.slots[slot as usize]
            .object
            .as_ref()
            .expect("indexed slot is vacant")
    }

    /// Resident objects in unspecified (slot) order.
    pub(crate) fn values(&self) -> impl Iterator<Item = &StoredObject> {
        self.slots.iter().filter_map(|slot| slot.object.as_ref())
    }

    /// Resident objects in ascending id order — the iteration order of the
    /// `BTreeMap` this arena replaced, which ordered float accumulations
    /// and trace output depend on. Sorts on demand: O(n log n), for
    /// scan/rebuild paths only, never per-operation.
    pub fn iter(&self) -> impl Iterator<Item = &StoredObject> {
        let mut refs: Vec<&StoredObject> = self.values().collect();
        refs.sort_unstable_by_key(|object| object.id());
        refs.into_iter()
    }

    /// Resident `(slot, object)` pairs in ascending id order (the rebuild
    /// path, matching the insertion order of a fresh index).
    pub(crate) fn entries_by_id(&self) -> impl Iterator<Item = (u32, &StoredObject)> {
        let mut refs: Vec<(u32, &StoredObject)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, entry)| entry.object.as_ref().map(|o| (slot as u32, o)))
            .collect();
        refs.sort_unstable_by_key(|&(_, object)| object.id());
        refs.into_iter()
    }
}

impl Serialize for ObjectArena {
    fn to_content(&self) -> Content {
        // Identical to BTreeMap<ObjectId, StoredObject>: an object map
        // keyed by decimal id in ascending order.
        Content::Map(
            self.iter()
                .map(|object| (object.id().raw().to_string(), object.to_content()))
                .collect(),
        )
    }
}

impl Deserialize for ObjectArena {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let entries = match content {
            Content::Map(entries) => entries,
            other => {
                return Err(Error::custom(format!(
                    "invalid type: expected object, got {}",
                    other.kind()
                )))
            }
        };
        let mut arena = ObjectArena::new();
        for (key, value) in entries {
            key.parse::<u64>()
                .map_err(|_| Error::custom(format!("invalid object id key `{key}`")))?;
            let object = StoredObject::deserialize(value)?;
            if arena.contains(object.id()) {
                return Err(Error::custom(format!(
                    "duplicate object id {}",
                    object.id()
                )));
            }
            arena.insert(object);
        }
        Ok(arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ImportanceCurve, ObjectSpec};
    use sim_core::{ByteSize, SimTime};
    use std::collections::BTreeMap;

    fn object(id: u64) -> StoredObject {
        let spec = ObjectSpec::new(
            ObjectId::new(id),
            ByteSize::from_mib(1),
            ImportanceCurve::Persistent,
        );
        StoredObject::from_spec(spec, SimTime::ZERO)
    }

    #[test]
    fn slots_are_dense_and_recycled() {
        let mut arena = ObjectArena::new();
        let a = arena.insert(object(10));
        let b = arena.insert(object(20));
        assert_eq!((a.slot(), b.slot()), (0, 1));
        arena.remove(ObjectId::new(10));
        let c = arena.insert(object(30));
        assert_eq!(c.slot(), 0, "freed slot is recycled");
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn stale_handles_never_alias_recycled_slots() {
        let mut arena = ObjectArena::new();
        let a = arena.insert(object(10));
        arena.remove(ObjectId::new(10));
        assert!(arena.resolve(a).is_none());
        let b = arena.insert(object(30));
        assert_eq!(b.slot(), a.slot());
        assert_ne!(b.generation(), a.generation());
        assert!(arena.resolve(a).is_none(), "stale generation rejected");
        assert_eq!(arena.resolve(b).unwrap().id(), ObjectId::new(30));
    }

    #[test]
    fn iter_is_in_id_order_regardless_of_slot_order() {
        let mut arena = ObjectArena::new();
        arena.insert(object(5));
        arena.insert(object(1));
        arena.remove(ObjectId::new(5));
        arena.insert(object(3)); // recycles slot 0
        let ids: Vec<u64> = arena.iter().map(|o| o.id().raw()).collect();
        assert_eq!(ids, vec![1, 3]);
        let slots: Vec<u32> = arena.entries_by_id().map(|(slot, _)| slot).collect();
        assert_eq!(slots, vec![1, 0]);
    }

    #[test]
    fn serde_matches_the_btreemap_format() {
        let mut arena = ObjectArena::new();
        arena.insert(object(7));
        arena.insert(object(2));
        let mut map = BTreeMap::new();
        map.insert(ObjectId::new(7), object(7));
        map.insert(ObjectId::new(2), object(2));
        assert_eq!(arena.to_content(), map.to_content());

        let back = ObjectArena::deserialize(&arena.to_content()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(ObjectId::new(7)).unwrap().id(), ObjectId::new(7));
    }

    #[test]
    fn deserialize_rejects_bad_keys_and_duplicates() {
        let bad_key = Content::Map(vec![("x".into(), object(1).to_content())]);
        assert!(ObjectArena::deserialize(&bad_key).is_err());
        let dup = Content::Map(vec![
            ("1".into(), object(1).to_content()),
            ("1".into(), object(1).to_content()),
        ]);
        assert!(ObjectArena::deserialize(&dup).is_err());
        assert!(ObjectArena::deserialize(&Content::Null).is_err());
    }
}
